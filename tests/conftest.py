"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.dataframe import Table
from repro.sql import Database


@pytest.fixture
def people_table() -> Table:
    """A small mixed-type table used across SQL and dataframe tests."""
    return Table.from_dict(
        "people",
        {
            "name": ["Ann", "Bob", "ann", None, "Eve"],
            "age": [30, 41, 30, 5, 27],
            "city": ["NY", "New York", "NY", "LA", "LA"],
            "score": [1.5, 2.5, 3.5, None, 0.5],
        },
    )


@pytest.fixture
def db(people_table: Table) -> Database:
    database = Database()
    database.register(people_table)
    return database


@pytest.fixture
def dirty_language_table() -> Table:
    """A miniature Rayyan-style table with the paper's Example 1 error."""
    languages = ["eng"] * 8 + ["English", "English"] + ["fre"] * 4 + ["French"] + ["ger"] * 3 + ["German", "chi"]
    return Table.from_dict(
        "articles",
        {
            "article_id": [str(i) for i in range(1, 21)],
            "article_language": languages,
            "notes": ["ok"] * 15 + ["N/A"] * 3 + ["--"] * 2,
            "included": ["yes"] * 12 + ["no"] * 8,
            "score": ["5", "3", "4", "2", "1", "5", "4", "3", "2", "1",
                      "5", "4", "999", "2", "1", "5", "4", "3", "2", "1"],
        },
    )
