"""Property tests: sqlite-lowered expressions agree with the in-process engine.

For randomly generated value maps, NULL lists, and numeric thresholds, the
SQL rendered by :class:`SqliteDialect` and executed by stdlib ``sqlite3``
must produce the same cells as the SQL rendered by :class:`ReproDialect`
and executed by the in-process engine — the per-expression version of the
end-to-end differential suite.
"""

import sqlite3

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dialects import ReproDialect, SqliteDialect
from repro.core.sqlgen import case_when_mapping, case_when_null, case_when_threshold
from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.sql.database import Database
from repro.sql.functions import SCALAR_FUNCTIONS

# Cells as the cleaning pipeline actually sees them: messy strings, numbers,
# NULLs.  Text is drawn from a small alphabet so mapping keys collide with
# column values often enough to exercise the CASE branches.
cell_text = st.text(alphabet="abx 019.-", min_size=0, max_size=5)
cells = st.one_of(
    st.none(),
    cell_text,
    st.integers(min_value=-1000, max_value=1000),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
)
finite = st.floats(allow_nan=False, allow_infinity=False, min_value=-100, max_value=100)


def run_both(expr_repro, expr_sqlite, values):
    db = Database()
    db.register(Table.from_rows("t", ["v"], [[v] for v in values]), replace=True)
    in_process = db.column_values(f"SELECT {expr_repro} AS r FROM t")

    conn = sqlite3.connect(":memory:")
    try:
        conn.execute("CREATE TABLE t (v)")
        conn.executemany("INSERT INTO t VALUES (?)", [(v,) for v in values])
        from_sqlite = [row[0] for row in conn.execute(f"SELECT {expr_sqlite} FROM t")]
    finally:
        conn.close()
    return in_process, from_sqlite


def assert_cells_agree(in_process, from_sqlite):
    for a, b in zip(in_process, from_sqlite):
        if is_null(a) or is_null(b):
            assert is_null(a) and is_null(b), f"{a!r} vs {b!r}"
        else:
            assert str(a) == str(b) or float(a) == float(b), f"{a!r} vs {b!r}"


class TestMappingParity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.dictionaries(cell_text.filter(bool), cell_text, min_size=1, max_size=4),
        st.lists(cells, min_size=1, max_size=8),
    )
    def test_value_map(self, mapping, values):
        repro_expr = case_when_mapping("v", mapping, dialect=ReproDialect())
        sqlite_expr = case_when_mapping("v", mapping, dialect=SqliteDialect())
        assert_cells_agree(*run_both(repro_expr, sqlite_expr, values))

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(cell_text.filter(bool), min_size=1, max_size=4, unique=True),
        st.lists(cells, min_size=1, max_size=8),
    )
    def test_null_values(self, null_tokens, values):
        repro_expr = case_when_null("v", null_tokens, dialect=ReproDialect())
        sqlite_expr = case_when_null("v", null_tokens, dialect=SqliteDialect())
        assert_cells_agree(*run_both(repro_expr, sqlite_expr, values))


class TestThresholdParity:
    @settings(max_examples=60, deadline=None)
    @given(finite, finite, st.lists(st.one_of(st.none(), finite), min_size=1, max_size=8))
    def test_numeric_columns(self, low, high, values):
        low, high = min(low, high), max(low, high)
        repro_expr = case_when_threshold("v", low, high, dialect=ReproDialect())
        sqlite_expr = case_when_threshold("v", low, high, dialect=SqliteDialect())
        assert_cells_agree(*run_both(repro_expr, sqlite_expr, values))

    @settings(max_examples=40, deadline=None)
    @given(finite, st.lists(cell_text, min_size=1, max_size=6))
    def test_text_columns_agree(self, bound, values):
        # In-process, non-numeric text compares textually against str(bound);
        # the sqlite lowering must branch on storage class to reproduce that
        # (its native ordering puts every TEXT above every number).
        repro_expr = case_when_threshold("v", bound, None, dialect=ReproDialect())
        sqlite_expr = case_when_threshold("v", bound, None, dialect=SqliteDialect())
        assert_cells_agree(*run_both(repro_expr, sqlite_expr, values))


class TestPadProperties:
    pad_text = st.text(alphabet="ab-0 ", min_size=0, max_size=6)

    @settings(max_examples=100, deadline=None)
    @given(pad_text, st.integers(min_value=-3, max_value=12), pad_text)
    def test_spec(self, text, length, fill):
        for name, left in (("LPAD", True), ("RPAD", False)):
            out = SCALAR_FUNCTIONS[name](text, length, fill)
            want = max(length, 0)
            if len(text) >= want:
                assert out == text[:want]
            elif not fill:
                assert out == text
            else:
                assert len(out) == want
                body = out[want - len(text):] if left else out[: len(text)]
                pad = out[: want - len(text)] if left else out[len(text):]
                assert body == text
                cycle = (fill * (want // len(fill) + 1))[: want - len(text)]
                assert pad == cycle

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet="abc1", max_size=8), st.integers(min_value=0, max_value=12))
    def test_space_lpad_matches_sqlite_printf(self, text, length):
        # With the default single-space pad, LPAD must match sqlite's
        # right-aligned printf — an independent reference implementation.
        if len(text) > length:
            return  # printf never truncates; that case is covered above
        conn = sqlite3.connect(":memory:")
        try:
            reference = conn.execute(
                "SELECT printf('%*s', ?, ?)", (length, text)
            ).fetchone()[0]
        finally:
            conn.close()
        assert SCALAR_FUNCTIONS["LPAD"](text, length, " ") == reference
