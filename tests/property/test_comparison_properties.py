"""Property tests for the executor's comparison and sort-key semantics.

The regression behind these: ``_compare`` answered 0 for NaN against
anything (all three probes False), so ``>=`` and ``<=`` both held and ORDER
BY treated NaN as equal to every value.  The properties pin the repaired
contract: ``_compare`` is a deterministic *total order* over floats
(including NaN and the infinities, with NaN greatest) and ``_sort_key``
produces keys that are always mutually comparable, with NaN/NULL last.
"""

import functools
import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe.schema import is_null
from repro.sql.executor import _compare, _sort_key

all_floats = st.floats(allow_nan=True, allow_infinity=True)
finite_floats = st.floats(allow_nan=False, allow_infinity=False)


def _rank(value: float):
    """Reference total order: every real number, then NaN."""
    return (1, 0.0) if math.isnan(value) else (0, value)


class TestCompareTrichotomy:
    @given(all_floats, all_floats)
    def test_exactly_one_outcome(self, a, b):
        cmp = _compare(a, b)
        assert cmp in (-1, 0, 1)

    @given(all_floats, all_floats)
    def test_antisymmetry(self, a, b):
        assert _compare(a, b) == -_compare(b, a)

    @given(all_floats)
    def test_reflexive_equality(self, a):
        assert _compare(a, a) == 0

    @given(all_floats, all_floats)
    def test_matches_reference_order(self, a, b):
        cmp = _compare(a, b)
        ra, rb = _rank(a), _rank(b)
        expected = -1 if ra < rb else (1 if ra > rb else 0)
        assert cmp == expected

    @settings(max_examples=200)
    @given(st.lists(all_floats, min_size=2, max_size=20))
    def test_sorting_with_compare_is_deterministic(self, values):
        ordered = sorted(values, key=functools.cmp_to_key(_compare))
        # A total order must sort identically regardless of input order.
        again = sorted(reversed(values), key=functools.cmp_to_key(_compare))
        assert [_rank(v) for v in ordered] == [_rank(v) for v in again]
        # NaNs all land at the end.
        nan_seen = False
        for v in ordered:
            if math.isnan(v):
                nan_seen = True
            else:
                assert not nan_seen, "a real value sorted after NaN"

    @given(all_floats, st.text(max_size=12))
    def test_float_versus_string_stays_total(self, number, text):
        # Mixed comparisons fall back to text, but must never raise and must
        # remain antisymmetric.
        assert _compare(number, text) in (-1, 0, 1)
        assert _compare(number, text) == -_compare(text, number)


class TestSortKeyTotality:
    @given(st.lists(all_floats, max_size=30))
    def test_keys_are_mutually_comparable(self, values):
        keys = [_sort_key(v, False) for v in values]
        sorted(keys)  # must not raise: totality over floats incl. NaN/inf

    @given(st.lists(all_floats, max_size=30))
    def test_ascending_order_with_nan_last(self, values):
        ordered = sorted(values, key=lambda v: _sort_key(v, False))
        reals = [v for v in ordered if not math.isnan(v)]
        assert reals == sorted(reals)
        tail = ordered[len(reals):]
        assert all(math.isnan(v) for v in tail)

    @given(st.lists(all_floats, max_size=30))
    def test_descending_order_with_nan_still_last(self, values):
        ordered = sorted(values, key=lambda v: _sort_key(v, True))
        reals = [v for v in ordered if not math.isnan(v)]
        assert reals == sorted(reals, reverse=True)
        assert all(math.isnan(v) for v in ordered[len(reals):])

    @given(all_floats)
    def test_nan_and_null_share_the_last_bucket(self, value):
        key = _sort_key(value, False)
        if is_null(value):
            assert key == (1, "")
        else:
            assert key[0] == 0
