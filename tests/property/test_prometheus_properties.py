"""Property tests for the Prometheus histogram exposition.

Whatever gets observed, the rendered text must be a coherent histogram:
per-series ``le`` bucket values cumulative and monotone non-decreasing, the
``+Inf`` bucket equal to ``_count``, ``_count`` equal to the number of
observations, and ``_sum`` their exact sum.  Scrapers (and recording rules
like ``histogram_quantile``) silently misbehave on any violation, so this
is pinned as an invariant rather than as example cases.
"""

from __future__ import annotations

import math
import re

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry

FINITE = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)
#: The occasional positive infinity is legal (lands in +Inf only).
VALUES = st.one_of(FINITE, st.just(math.inf))

BUCKET_EDGES = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=8,
    unique=True,
).map(sorted)

LABELS = st.sampled_from(["alpha", "beta", "gamma"])

_SERIES = re.compile(
    r"^(?P<name>[a-z_]+)_(?P<suffix>bucket|sum|count)(?:\{(?P<labels>[^}]*)\})? (?P<value>\S+)$"
)


def parse_histogram(text: str, name: str):
    """Per-label-series view of one rendered histogram family."""
    series: dict = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.startswith(name):
            continue
        match = _SERIES.match(line)
        assert match, f"unparseable exposition line: {line!r}"
        labels = match.group("labels") or ""
        pairs = dict(
            item.split("=", 1) for item in labels.split(",") if item
        )
        le = pairs.pop("le", None)
        key = tuple(sorted(pairs.items()))
        entry = series.setdefault(key, {"buckets": [], "sum": None, "count": None})
        value = float(match.group("value").replace("+Inf", "inf"))
        if match.group("suffix") == "bucket":
            assert le is not None, f"bucket line without le: {line!r}"
            entry["buckets"].append((float(le.strip('"').replace("+Inf", "inf")), value))
        else:
            entry[match.group("suffix")] = value
    return series


class TestHistogramExposition:
    @given(
        values=st.lists(st.tuples(VALUES, LABELS), min_size=1, max_size=60),
        edges=BUCKET_EDGES,
    )
    @settings(max_examples=80, deadline=None)
    def test_buckets_cumulative_and_consistent(self, values, edges):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_prop_seconds", "property probe", ["kind"], buckets=edges
        )
        for value, label in values:
            histogram.observe(value, kind=label)

        series = parse_histogram(registry.render_prometheus(), "repro_prop_seconds")
        observed_by_label: dict = {}
        for value, label in values:
            observed_by_label.setdefault(label, []).append(value)

        assert set(series) == {
            (("kind", f'"{label}"'),) for label in observed_by_label
        }
        for key, entry in series.items():
            label = key[0][1].strip('"')
            observations = observed_by_label[label]

            buckets = entry["buckets"]  # rendered order == ascending le
            les = [le for le, _ in buckets]
            assert les == sorted(les)
            assert les[-1] == math.inf
            assert len(les) == len(edges) + 1
            for rendered, edge in zip(les[:-1], edges):
                # The exposition may shorten the edge's textual form, but
                # never by more than formatting precision.
                assert math.isclose(rendered, edge, rel_tol=1e-6, abs_tol=1e-6)

            counts = [c for _, c in buckets]
            assert counts == sorted(counts), "bucket counts must be monotone"
            # Membership is defined by the true edges, not their rendering.
            for edge, (_, cumulative) in zip(edges, buckets):
                expected = sum(1 for v in observations if v <= edge)
                assert cumulative == expected, (edge, cumulative, expected)

            assert entry["count"] == len(observations)
            assert buckets[-1][1] == entry["count"], "+Inf bucket must equal _count"
            assert entry["sum"] == float(sum(observations)) or math.isclose(
                entry["sum"], sum(observations), rel_tol=1e-9, abs_tol=1e-9
            )

    @given(values=st.lists(FINITE, min_size=1, max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_unlabelled_default_buckets(self, values):
        registry = MetricsRegistry()
        histogram = registry.histogram("repro_plain_seconds", "unlabelled probe")
        for value in values:
            histogram.observe(value)
        series = parse_histogram(registry.render_prometheus(), "repro_plain_seconds")
        assert set(series) == {()}
        entry = series[()]
        counts = [c for _, c in entry["buckets"]]
        assert counts == sorted(counts)
        assert entry["buckets"][-1][1] == entry["count"] == len(values)
        assert math.isclose(entry["sum"], sum(values), rel_tol=1e-9, abs_tol=1e-9)
