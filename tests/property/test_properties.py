"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.dataframe import Table, read_csv_text, to_csv_text
from repro.evaluation import EvaluationConventions, evaluate_repairs, values_equivalent
from repro.evaluation.metrics import error_cells
from repro.llm import parsing
from repro.llm.semantic import edit_distance, value_shape
from repro.profiling.fd import fd_entropy_score
from repro.sql import Database

# -- strategies -------------------------------------------------------------------
cell_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .-_'",
    min_size=0,
    max_size=12,
)
cell_value = st.one_of(st.none(), cell_text)


@st.composite
def small_tables(draw):
    n_rows = draw(st.integers(min_value=1, max_value=8))
    n_cols = draw(st.integers(min_value=1, max_value=4))
    names = [f"c{i}" for i in range(n_cols)]
    data = {name: draw(st.lists(cell_value, min_size=n_rows, max_size=n_rows)) for name in names}
    return Table.from_dict("t", data)


# -- CSV round trip ------------------------------------------------------------------
class TestCsvRoundTrip:
    @given(small_tables())
    @settings(max_examples=60, deadline=None)
    def test_round_trip_preserves_cells(self, table):
        parsed = read_csv_text(to_csv_text(table), infer_types=False)
        assert parsed.num_rows == table.num_rows
        for column in table.column_names:
            original = ["" if v is None else str(v) for v in table.column(column).values]
            loaded = ["" if v is None else str(v) for v in parsed.column(column).values]
            assert original == loaded


# -- SQL engine vs python oracle --------------------------------------------------------
class TestSqlOracle:
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_aggregates_match_python(self, values):
        db = Database()
        db.register(Table.from_dict("t", {"v": values}))
        assert db.scalar("SELECT COUNT(*) FROM t") == len(values)
        assert db.scalar("SELECT SUM(v) FROM t") == sum(values)
        assert db.scalar("SELECT MIN(v) FROM t") == min(values)
        assert db.scalar("SELECT MAX(v) FROM t") == max(values)

    @given(
        st.lists(st.integers(min_value=-50, max_value=50), min_size=1, max_size=30),
        st.integers(min_value=-50, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_where_filter_matches_python(self, values, threshold):
        db = Database()
        db.register(Table.from_dict("t", {"v": values}))
        result = db.sql(f"SELECT v FROM t WHERE v > {threshold}")
        assert sorted(result.column("v").values) == sorted(v for v in values if v > threshold)

    @given(st.lists(cell_text, min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_distinct_matches_python(self, values):
        db = Database()
        db.register(Table.from_dict("t", {"v": values}))
        result = db.sql("SELECT DISTINCT v FROM t")
        assert result.num_rows == len(set(values))


# -- metric identities -----------------------------------------------------------------
class TestMetricProperties:
    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_perfect_repair_yields_perfect_recall(self, clean):
        # Corrupt the first column deterministically, then repair it exactly.
        if clean.num_rows == 0:
            return
        column = clean.column_names[0]
        dirty = clean.set_cell(0, column, "###corrupted###")
        errors = error_cells(dirty, clean)
        repairs = {cell: clean.cell(cell[0], cell[1]) for cell in errors}
        scores = evaluate_repairs(dirty, clean, repairs)
        if errors:
            assert scores.recall == 1.0
            assert scores.precision == 1.0
        assert 0.0 <= scores.f1 <= 1.0

    @given(small_tables())
    @settings(max_examples=40, deadline=None)
    def test_scores_always_bounded(self, table):
        repairs = {(0, table.column_names[0]): "x"}
        scores = evaluate_repairs(table, table, repairs)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f1 <= 1.0

    @given(cell_value, cell_value)
    @settings(max_examples=100, deadline=None)
    def test_equivalence_is_symmetric(self, a, b):
        conv = EvaluationConventions.paper_main()
        assert values_equivalent(a, b, conv) == values_equivalent(b, a, conv)

    @given(cell_value)
    @settings(max_examples=100, deadline=None)
    def test_equivalence_is_reflexive(self, a):
        assert values_equivalent(a, a)


# -- semantic engine invariants ---------------------------------------------------------
class TestSemanticProperties:
    @given(cell_text, cell_text)
    @settings(max_examples=100, deadline=None)
    def test_edit_distance_symmetry_and_identity(self, a, b):
        assert edit_distance(a, a, 3) == 0
        assert edit_distance(a, b, 3) == edit_distance(b, a, 3)

    @given(cell_text)
    @settings(max_examples=100, deadline=None)
    def test_value_shape_fullmatches_its_value(self, text):
        import re

        shape = value_shape(text)
        assert re.fullmatch(shape, text) is not None

    @given(st.dictionaries(cell_text.filter(bool), cell_text, max_size=6))
    @settings(max_examples=60, deadline=None)
    def test_mapping_yaml_round_trip(self, mapping):
        rendered = parsing.render_mapping_yaml("explanation", mapping)
        _, parsed = parsing.parse_mapping_yaml(rendered)
        cleaned = {k.strip(): v.strip() for k, v in mapping.items() if k.strip()}
        parsed_cmp = {k.strip(): v.strip() for k, v in parsed.items()}
        assert parsed_cmp == cleaned


# -- FD scoring invariants ----------------------------------------------------------------
class TestFdProperties:
    @given(st.lists(st.tuples(st.sampled_from("abc"), st.sampled_from("xyz")), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_score_bounded(self, pairs):
        table = Table.from_dict("t", {"l": [p[0] for p in pairs], "r": [p[1] for p in pairs]})
        score = fd_entropy_score(table, "l", "r")
        assert 0.0 <= score <= 1.0

    @given(st.lists(st.sampled_from("abc"), min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_exact_dependency_scores_one(self, lhs):
        rhs = [value.upper() for value in lhs]
        table = Table.from_dict("t", {"l": lhs, "r": rhs})
        assert fd_entropy_score(table, "l", "r") == 1.0
