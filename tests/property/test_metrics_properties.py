"""Property tests for ``repro.evaluation.metrics``: the scoring invariants.

Whatever a system outputs, the metrics must stay well-defined: precision and
recall live in [0, 1], F1 is exactly the harmonic mean, and the documented
edge cases (no repairs, perfect repairs, repairs outside the dirty-cell set,
repairs on removed or out-of-range rows) never divide by zero.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.dataframe import Table
from repro.evaluation.conventions import EvaluationConventions, values_equivalent
from repro.evaluation.metrics import Scores, error_cells, evaluate_repairs

#: Values distinct under every convention (no case/boolean/null aliasing).
VALUES = st.sampled_from(["alpha", "beta", "gamma", "delta", "42", "x1"])
STRICT = EvaluationConventions(
    case_insensitive=False, boolean_equivalence=False, dmv_as_null=False,
    numeric_equivalence=False, duration_equivalence=False, date_equivalence=False,
    strip_whitespace=False,
)


@st.composite
def benchmark_case(draw):
    """A (dirty, clean, repairs) triple over a small random table."""
    n_rows = draw(st.integers(min_value=1, max_value=6))
    n_cols = draw(st.integers(min_value=1, max_value=3))
    columns = [f"c{i}" for i in range(n_cols)]
    clean = {c: [draw(VALUES) for _ in range(n_rows)] for c in columns}
    dirty = {
        c: [draw(VALUES) if draw(st.booleans()) else clean[c][i] for i in range(n_rows)]
        for c in columns
    }
    repairs = {}
    for _ in range(draw(st.integers(min_value=0, max_value=8))):
        row = draw(st.integers(min_value=0, max_value=n_rows + 2))  # may be out of range
        column = draw(st.sampled_from(columns))
        repairs[(row, column)] = draw(VALUES)
    return (
        Table.from_dict("dirty", dirty),
        Table.from_dict("clean", clean),
        repairs,
    )


def harmonic_mean(p: float, r: float) -> float:
    return 2 * p * r / (p + r) if p + r else 0.0


class TestScoreInvariants:
    @given(case=benchmark_case())
    @settings(max_examples=60, deadline=None)
    def test_bounds_and_harmonic_mean(self, case):
        dirty, clean, repairs = case
        scores = evaluate_repairs(dirty, clean, repairs, STRICT)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0
        assert 0.0 <= scores.f1 <= 1.0
        assert math.isclose(scores.f1, harmonic_mean(scores.precision, scores.recall))
        assert scores.correct_repairs <= scores.total_repairs
        assert scores.correct_repairs <= scores.total_errors

    @given(case=benchmark_case(), removed=st.sets(st.integers(min_value=0, max_value=8)))
    @settings(max_examples=40, deadline=None)
    def test_removed_rows_never_break_scoring(self, case, removed):
        dirty, clean, repairs = case
        scores = evaluate_repairs(dirty, clean, repairs, STRICT, removed_rows=removed)
        assert 0.0 <= scores.precision <= 1.0
        assert 0.0 <= scores.recall <= 1.0

    @given(case=benchmark_case())
    @settings(max_examples=40, deadline=None)
    def test_counts_match_error_cells(self, case):
        dirty, clean, repairs = case
        scores = evaluate_repairs(dirty, clean, repairs, STRICT)
        assert scores.total_errors == len(error_cells(dirty, clean, STRICT))


class TestEdgeCases:
    @given(case=benchmark_case())
    @settings(max_examples=30, deadline=None)
    def test_no_repairs_scores_zero_without_dividing(self, case):
        dirty, clean, _ = case
        scores = evaluate_repairs(dirty, clean, {}, STRICT)
        assert scores == Scores(
            precision=0.0, recall=0.0, f1=0.0,
            correct_repairs=0, total_repairs=0,
            total_errors=len(error_cells(dirty, clean, STRICT)),
        )

    @given(case=benchmark_case())
    @settings(max_examples=30, deadline=None)
    def test_perfect_repairs_score_perfectly(self, case):
        dirty, clean, _ = case
        perfect = {
            cell: clean.cell(cell[0], cell[1])
            for cell in error_cells(dirty, clean, STRICT)
        }
        scores = evaluate_repairs(dirty, clean, perfect, STRICT)
        if perfect:
            assert scores.precision == 1.0
            assert scores.recall == 1.0
            assert scores.f1 == 1.0
        else:
            # A clean table with no repairs: all-zero, not a ZeroDivisionError.
            assert scores.f1 == 0.0

    @given(case=benchmark_case())
    @settings(max_examples=30, deadline=None)
    def test_repairs_outside_dirty_cells_hurt_precision_not_crash(self, case):
        dirty, clean, _ = case
        errors = error_cells(dirty, clean, STRICT)
        # Repair a non-error cell to a wrong value: a false positive.
        target = next(
            ((r, c) for r in range(dirty.num_rows) for c in dirty.column_names
             if (r, c) not in errors),
            None,
        )
        if target is None:
            return
        current = dirty.cell(target[0], target[1])
        wrong = next(v for v in ("alpha", "beta", "gamma") if not values_equivalent(v, current, STRICT))
        scores = evaluate_repairs(dirty, clean, {target: wrong}, STRICT)
        assert scores.precision == 0.0
        assert scores.total_repairs == 1
        assert scores.correct_repairs == 0

    def test_identical_tables_have_no_errors(self):
        table = Table.from_dict("t", {"a": ["x", "y"], "b": ["1", "2"]})
        scores = evaluate_repairs(table, table, {}, STRICT)
        assert scores.total_errors == 0
        assert scores.f1 == 0.0
