"""Property tests: mergeable/incremental profiling equals batch profiling.

The streaming layer's correctness rests on one invariant: folding a column
(or table) into the incremental accumulators batch by batch — in row order,
under *any* partitioning — produces exactly what the batch profilers compute
on the whole input.  Hypothesis drives arbitrary values and arbitrary split
points through both paths and requires bit-identical results, including
float means and frequency tie-break order.
"""

from __future__ import annotations

import string

from hypothesis import given, settings, strategies as st

from repro.dataframe import Column, ColumnType, Table
from repro.profiling import (
    IncrementalDuplicateState,
    IncrementalFDState,
    MergeableColumnProfile,
    discover_fds,
    duplicate_row_count,
    duplicate_row_samples,
    profile_column,
)

cell_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .-_'",
    min_size=0,
    max_size=8,
)
mixed_value = st.one_of(
    st.none(),
    cell_text,
    st.integers(min_value=-10_000, max_value=10_000),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False),
    st.booleans(),
)
# Small alphabets so duplicates and near-FDs actually occur.
categorical_value = st.one_of(st.none(), st.sampled_from(["a", "b", "c", "aa", "B"]))


@st.composite
def values_and_cuts(draw, value=mixed_value, max_size=30):
    values = draw(st.lists(value, min_size=0, max_size=max_size))
    n_cuts = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=len(values)),
                                min_size=n_cuts, max_size=n_cuts)))
    return values, cuts


def partitions(values, cuts):
    bounds = [0] + list(cuts) + [len(values)]
    return [values[a:b] for a, b in zip(bounds, bounds[1:])]


class TestMergeableColumnProfile:
    @given(values_and_cuts())
    @settings(max_examples=120, deadline=None)
    def test_update_over_any_partitioning_equals_batch(self, data):
        values, cuts = data
        column = Column("c", values, ColumnType.VARCHAR)
        incremental = MergeableColumnProfile("c", column.dtype)
        for part in partitions(values, cuts):
            incremental.update(part)
        assert incremental.profile(max_values=1000) == profile_column(column, max_values=1000)

    @given(values_and_cuts())
    @settings(max_examples=120, deadline=None)
    def test_merge_of_per_batch_profiles_equals_batch(self, data):
        values, cuts = data
        column = Column("c", values, ColumnType.VARCHAR)
        parts = partitions(values, cuts)
        profiles = [MergeableColumnProfile("c", column.dtype).update(p) for p in parts]
        merged = profiles[0]
        for nxt in profiles[1:]:
            merged = merged.merge(nxt)
        assert merged.profile(max_values=1000) == profile_column(column, max_values=1000)

    @given(values_and_cuts(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_top_values_truncation_matches(self, data, max_values):
        values, cuts = data
        column = Column("c", values, ColumnType.VARCHAR)
        incremental = MergeableColumnProfile("c", column.dtype)
        for part in partitions(values, cuts):
            incremental.update(part)
        assert (
            incremental.profile(max_values=max_values).top_values
            == profile_column(column, max_values=max_values).top_values
        )


@st.composite
def small_tables_and_cuts(draw):
    n_rows = draw(st.integers(min_value=0, max_value=20))
    n_cols = draw(st.integers(min_value=1, max_value=3))
    names = [f"c{i}" for i in range(n_cols)]
    data = {
        name: draw(st.lists(categorical_value, min_size=n_rows, max_size=n_rows))
        for name in names
    }
    table = Table.from_dict("t", data)
    n_cuts = draw(st.integers(min_value=0, max_value=3))
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=n_rows),
                                min_size=n_cuts, max_size=n_cuts)))
    return table, cuts


def table_partitions(table, cuts):
    bounds = [0] + list(cuts) + [table.num_rows]
    return [table.take(list(range(a, b))) for a, b in zip(bounds, bounds[1:])]


class TestIncrementalTableState:
    @given(small_tables_and_cuts())
    @settings(max_examples=80, deadline=None)
    def test_fd_candidates_match_batch_discovery(self, data):
        table, cuts = data
        state = IncrementalFDState(table.column_names)
        for part in table_partitions(table, cuts):
            state.update(part)
        assert state.candidates(min_score=0.5) == discover_fds(table, min_score=0.5)

    @given(small_tables_and_cuts())
    @settings(max_examples=80, deadline=None)
    def test_duplicates_match_batch_counts_and_samples(self, data):
        table, cuts = data
        state = IncrementalDuplicateState()
        for part in table_partitions(table, cuts):
            state.update(part)
        assert state.duplicate_rows == duplicate_row_count(table)
        assert state.samples(limit=3) == duplicate_row_samples(table, limit=3)
