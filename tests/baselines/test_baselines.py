"""Tests for the baseline systems."""

import pytest

from repro.baselines import (
    CleanAgentSystem,
    HoloCleanSystem,
    RahaBaranSystem,
    RahaDetector,
    RetCleanSystem,
    SystemContext,
)
from repro.baselines.baran.models import DomainModel, ValueModel, VicinityModel
from repro.baselines.cleanagent import CleanAgentFileSizeError
from repro.baselines.holoclean.denial_constraints import FDConstraint, violating_cells
from repro.baselines.holoclean.system import HoloCleanMemoryError
from repro.dataframe import Table


@pytest.fixture
def fd_table() -> Table:
    """zip → city holds except for one typo'd row; one irrelevant column."""
    return Table.from_dict(
        "t",
        {
            "zip": ["10001"] * 6 + ["90210"] * 6,
            "city": ["New York"] * 5 + ["New Yrok"] + ["Los Angeles"] * 6,
            "note": [f"row {i}" for i in range(12)],
        },
    )


class TestHoloClean:
    def test_constraint_violation_detection(self, fd_table):
        cells = violating_cells(fd_table, FDConstraint("zip", "city"))
        assert (5, "city") in cells
        assert all(column == "city" for _, column in cells)

    def test_repairs_to_majority(self, fd_table):
        system = HoloCleanSystem()
        output = system.repair(fd_table, SystemContext(denial_constraints=[("zip", "city")]))
        assert output.repairs == {(5, "city"): "New York"}

    def test_without_constraints_nothing_is_found(self, fd_table):
        output = HoloCleanSystem().repair(fd_table, SystemContext())
        assert output.repairs == {}

    def test_memory_budget(self, fd_table):
        system = HoloCleanSystem(max_cells=10)
        with pytest.raises(HoloCleanMemoryError):
            system.repair(fd_table, SystemContext(denial_constraints=[("zip", "city")]))

    def test_low_confidence_groups_not_repaired(self):
        table = Table.from_dict("t", {"k": ["a"] * 4, "v": ["1", "2", "3", "4"]})
        output = HoloCleanSystem().repair(table, SystemContext(denial_constraints=[("k", "v")]))
        assert output.repairs == {}


class TestRahaBaran:
    def test_detector_finds_typo_cells(self, fd_table):
        detector = RahaDetector()
        detected = detector.detect(fd_table, SystemContext())
        assert (5, "city") in detected

    def test_labeled_sample_influences_clusters(self, fd_table):
        context = SystemContext(labeled_cells={(5, "city"): "New York", (0, "city"): "New York"})
        detected = RahaDetector().detect(fd_table, context)
        assert (5, "city") in detected

    def test_value_model_proposes_close_frequent_value(self, fd_table):
        model = ValueModel()
        model.fit(fd_table)
        proposals = model.propose(fd_table, (5, "city"))
        assert proposals and proposals[0][0] == "New York"

    def test_vicinity_model_uses_cooccurrence(self, fd_table):
        model = VicinityModel()
        model.fit(fd_table)
        proposals = model.propose(fd_table, (5, "city"))
        assert proposals and proposals[0][0] == "New York"

    def test_domain_model_only_for_dominant_columns(self):
        table = Table.from_dict("t", {"c": ["x"] * 19 + ["weird"]})
        model = DomainModel()
        model.fit(table)
        assert model.propose(table, (19, "c")) == [("x", 0.55)]
        assert model.propose(table, (0, "c")) == []

    def test_end_to_end_repair(self, fd_table):
        context = SystemContext(labeled_cells={(5, "city"): "New York"})
        output = RahaBaranSystem().repair(fd_table, context)
        assert output.repairs.get((5, "city")) == "New York"


class TestCleanAgent:
    def test_standardises_dates_only(self):
        table = Table.from_dict(
            "t",
            {"date": ["01/02/2020", "2020-03-04"], "name": ["alpha", "beta"]},
        )
        output = CleanAgentSystem().repair(table, SystemContext())
        assert all(column == "date" for _, column in output.repairs)
        assert output.repairs[(0, "date")] == "2020-01-02"

    def test_rejects_large_files(self):
        table = Table.from_dict("t", {"c": ["x" * 100] * 30000})
        with pytest.raises(CleanAgentFileSizeError):
            CleanAgentSystem().repair(table, SystemContext())

    def test_no_recognised_types_no_repairs(self):
        table = Table.from_dict("t", {"c": ["alpha", "beta"]})
        assert CleanAgentSystem().repair(table, SystemContext()).repairs == {}


class TestRetClean:
    def test_retrieval_from_reference_table(self):
        dirty = Table.from_dict("t", {"id": ["1", "2"], "city": ["New Yrok", "Boston"]})
        reference = Table.from_dict("ref", {"id": ["1", "2"], "city": ["New York", "Boston"]})
        output = RetCleanSystem().repair(dirty, SystemContext(reference_tables=[reference]))
        assert output.repairs == {(0, "city"): "New York"}

    def test_fallback_fixes_obvious_typos_in_text_columns(self):
        values = ["Journal of Clinical Medicine"] * 12 + ["Journal of Clinical MMedicine"]
        dirty = Table.from_dict("t", {"journal": values})
        output = RetCleanSystem().repair(dirty, SystemContext())
        assert output.repairs == {(12, "journal"): "Journal of Clinical Medicine"}

    def test_fallback_ignores_short_code_columns(self):
        dirty = Table.from_dict("t", {"code": ["AB1"] * 12 + ["AB2"]})
        assert RetCleanSystem().repair(dirty, SystemContext()).repairs == {}
