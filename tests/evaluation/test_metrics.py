"""Tests for evaluation conventions and repair metrics."""

import pytest

from repro.dataframe import Table
from repro.evaluation import EvaluationConventions, evaluate_repairs, values_equivalent
from repro.evaluation.metrics import diff_repairs, error_cells, evaluate_output_table


class TestConventions:
    def test_case_insensitive(self):
        assert values_equivalent("ENG", "eng")

    def test_boolean_equivalence(self):
        assert values_equivalent("yes", True)
        assert values_equivalent("no", "False")
        assert not values_equivalent("yes", False)

    def test_dmv_as_null(self):
        assert values_equivalent("N/A", None)
        assert values_equivalent("--", "")

    def test_numeric_equivalence(self):
        assert values_equivalent("42", 42.0)
        assert not values_equivalent("42", 43)

    def test_duration_equivalence(self):
        assert values_equivalent("90 min", 90.0)
        assert values_equivalent("1 hr. 30 min.", "90 min")
        assert not values_equivalent("91 min", 90.0)

    def test_date_equivalence(self):
        assert values_equivalent("01/07/2004", "2004-01-07")

    def test_whitespace_normalised(self):
        assert values_equivalent("New  York", "new york")

    def test_extended_conventions_are_strict(self):
        strict = EvaluationConventions.paper_extended()
        assert not values_equivalent("yes", True, strict)
        assert not values_equivalent("N/A", None, strict)
        # Case-insensitivity is kept even in the extended evaluation.
        assert values_equivalent("ENG", "eng", strict)


class TestMetrics:
    def _tables(self):
        dirty = Table.from_dict("t", {"a": ["x", "typo", "z"], "b": ["1", "2", "3"]})
        clean = Table.from_dict("t", {"a": ["x", "y", "z"], "b": ["1", "2", "30"]})
        return dirty, clean

    def test_error_cells(self):
        dirty, clean = self._tables()
        assert error_cells(dirty, clean) == {(1, "a"), (2, "b")}

    def test_perfect_repair(self):
        dirty, clean = self._tables()
        scores = evaluate_repairs(dirty, clean, {(1, "a"): "y", (2, "b"): "30"})
        assert scores.precision == 1.0 and scores.recall == 1.0 and scores.f1 == 1.0

    def test_no_repairs(self):
        dirty, clean = self._tables()
        scores = evaluate_repairs(dirty, clean, {})
        assert scores.precision == 0.0 and scores.recall == 0.0 and scores.f1 == 0.0

    def test_wrong_repair_hurts_precision(self):
        dirty, clean = self._tables()
        scores = evaluate_repairs(dirty, clean, {(1, "a"): "WRONG", (2, "b"): "30"})
        assert scores.precision == 0.5
        assert scores.recall == 0.5

    def test_repairing_clean_cell_hurts_precision(self):
        dirty, clean = self._tables()
        scores = evaluate_repairs(dirty, clean, {(0, "a"): "changed"})
        assert scores.precision == 0.0

    def test_noop_repair_under_conventions_ignored(self):
        dirty = Table.from_dict("t", {"flag": ["yes", "no"]})
        clean = Table.from_dict("t", {"flag": ["yes", "no"]})
        scores = evaluate_repairs(dirty, clean, {(0, "flag"): True})
        assert scores.total_repairs == 0

    def test_removed_rows_excluded_from_denominator(self):
        dirty, clean = self._tables()
        scores = evaluate_repairs(dirty, clean, {(2, "b"): "30"}, removed_rows=[1])
        assert scores.total_errors == 1
        assert scores.recall == 1.0

    def test_diff_repairs_and_output_table_scoring(self):
        dirty, clean = self._tables()
        output = Table.from_dict("t", {"a": ["x", "y", "z"], "b": ["1", "2", "3"]})
        repairs = diff_repairs(dirty, output)
        assert repairs == {(1, "a"): "y"}
        scores = evaluate_output_table(dirty, clean, output)
        assert scores.precision == 1.0
        assert scores.recall == 0.5

    def test_scores_counts_exposed(self):
        dirty, clean = self._tables()
        scores = evaluate_repairs(dirty, clean, {(1, "a"): "y"})
        assert scores.correct_repairs == 1
        assert scores.total_repairs == 1
        assert scores.total_errors == 2
