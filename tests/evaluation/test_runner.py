"""Direct coverage for ``repro.evaluation.runner`` (context, phases, fallback)."""

from __future__ import annotations

import pytest

from repro.baselines import CleaningSystem, SystemOutput
from repro.baselines.holoclean.system import HoloCleanMemoryError
from repro.datasets import load_dataset
from repro.evaluation.conventions import EvaluationConventions
from repro.evaluation.runner import (
    GROUND_TRUTH_CONSTRAINTS,
    LABELED_TUPLES,
    ExperimentRunner,
    SystemResult,
)

SCALE = 0.05
SEED = 3


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital", seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=SEED)


class TestBuildContext:
    def test_constraints_filtered_to_present_columns(self, runner, hospital):
        context = runner.build_context(hospital)
        for det, dep in context.denial_constraints:
            assert det in hospital.dirty.column_names
            assert dep in hospital.dirty.column_names
        assert set(context.denial_constraints) <= set(GROUND_TRUTH_CONSTRAINTS["hospital"])

    def test_labeled_cells_cover_at_most_20_tuples(self, runner, hospital):
        context = runner.build_context(hospital)
        rows = {row for row, _ in context.labeled_cells}
        assert 0 < len(rows) <= LABELED_TUPLES
        # Labels are the ground truth.
        for (row, column), value in context.labeled_cells.items():
            assert value == hospital.clean.cell(row, column)

    def test_seed_propagates(self, hospital):
        context = ExperimentRunner(seed=42).build_context(hospital)
        assert context.seed == 42


class TestPhases:
    def test_run_system_equals_repair_plus_score(self, runner, hospital):
        outcome = runner.run_repair("RetClean", hospital)
        split = runner.score_repair(outcome, hospital)
        direct = runner.run_system("RetClean", hospital)
        for field in ("system", "dataset", "sampled_rows", "notes", "detected", "repaired", "llm_calls"):
            assert getattr(split, field) == getattr(direct, field)
        assert split.scores == direct.scores

    def test_one_outcome_scored_under_two_conventions(self, runner, hospital):
        outcome = runner.run_repair("Cocoon", hospital)
        lenient = runner.score_repair(outcome, hospital, conventions=EvaluationConventions.paper_main())
        strict = runner.score_repair(
            outcome,
            hospital,
            clean_override=hospital.extended_clean,
            conventions=EvaluationConventions.paper_extended(),
        )
        # The strict evaluation counts column-type and DMV conversions as errors.
        assert strict.scores.total_errors > lenient.scores.total_errors
        assert lenient.llm_calls == strict.llm_calls > 0

    def test_unknown_system_raises_with_choices(self, runner, hospital):
        with pytest.raises(KeyError, match="Cocoon"):
            runner.run_repair("NoSuchSystem", hospital)


class _MemoryLimited(CleaningSystem):
    name = "MemoryLimited"

    def __init__(self):
        self.calls = 0

    def repair(self, dirty, context):
        self.calls += 1
        if dirty.num_rows > 10:
            raise HoloCleanMemoryError("table too large for the budget")
        return SystemOutput(repairs={}, notes=f"ran on {dirty.num_rows} rows")


class _AlwaysFailing(CleaningSystem):
    name = "AlwaysFailing"

    def repair(self, dirty, context):
        raise HoloCleanMemoryError("cannot run at any size")


class TestFallbackSampling:
    def test_oversized_system_reruns_on_head_sample(self, hospital, monkeypatch):
        import repro.evaluation.runner as runner_module

        monkeypatch.setattr(runner_module, "FALLBACK_SAMPLE_ROWS", 10)
        system = _MemoryLimited()
        runner = ExperimentRunner(systems={"MemoryLimited": lambda: system}, seed=SEED)
        result = runner.run_system("MemoryLimited", hospital)
        assert result.sampled_rows == 10
        assert system.calls == 2
        assert result.notes == "ran on 10 rows"

    def test_labeled_context_restricted_to_sample(self, hospital):
        captured = {}

        class Probe(CleaningSystem):
            name = "Probe"

            def repair(self, dirty, context):
                if dirty.num_rows > 5:
                    raise HoloCleanMemoryError("nope")
                captured["labeled"] = dict(context.labeled_cells)
                return SystemOutput()

        import repro.evaluation.runner as runner_module

        original = runner_module.FALLBACK_SAMPLE_ROWS
        runner_module.FALLBACK_SAMPLE_ROWS = 5
        try:
            runner = ExperimentRunner(systems={"Probe": Probe}, seed=SEED)
            result = runner.run_system("Probe", hospital)
        finally:
            runner_module.FALLBACK_SAMPLE_ROWS = original
        assert result.sampled_rows == 5
        assert all(row < 5 for row, _ in captured["labeled"])

    def test_failure_even_on_sample_scores_zero(self, hospital):
        runner = ExperimentRunner(systems={"AlwaysFailing": _AlwaysFailing}, seed=SEED)
        result = runner.run_system("AlwaysFailing", hospital)
        assert result.scores.f1 == 0.0
        assert "failed even on sample" in result.notes


class TestSerialisation:
    def test_to_dict_from_dict_roundtrip(self, runner, hospital):
        result = runner.run_system("Cocoon", hospital)
        record = result.to_dict()
        assert record["llm_calls"] == result.llm_calls > 0
        restored = SystemResult.from_dict(record)
        assert restored == result

    def test_runtime_is_the_only_nondeterministic_field(self, runner, hospital):
        first = runner.run_system("RetClean", hospital).to_dict()
        second = runner.run_system("RetClean", hospital).to_dict()
        first.pop("runtime_seconds")
        second.pop("runtime_seconds")
        assert first == second
