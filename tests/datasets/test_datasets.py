"""Tests for benchmark dataset generators and error injection."""

import pytest

from repro.datasets import BenchmarkDataset, ErrorType, dataset_names, load_dataset
from repro.datasets.errors import ErrorInjector
from repro.dataframe import Table

SCALE = 0.08


@pytest.fixture(scope="module")
def small_datasets():
    return {name: load_dataset(name, seed=1, scale=SCALE) for name in dataset_names()}


class TestErrorInjector:
    def _clean(self):
        return Table.from_dict(
            "t",
            {
                "key": [str(i % 5) for i in range(50)],
                "name": [f"value {i % 5}" for i in range(50)],
                "amount": [str(10 + i) for i in range(50)],
            },
        )

    def test_typos_recorded(self):
        injector = ErrorInjector(self._clean(), seed=1)
        injected = injector.inject_typos("name", 10)
        assert injected == 10
        dirty = injector.build_dirty()
        for error in injector.errors:
            assert dirty.cell(error.row, error.column) == error.dirty_value
            assert error.clean_value != error.dirty_value
            assert error.error_type is ErrorType.TYPO

    def test_no_cell_corrupted_twice(self):
        injector = ErrorInjector(self._clean(), seed=2)
        injector.inject_typos("name", 20)
        injector.inject_dmv("name", 20)
        cells = [(e.row, e.column) for e in injector.errors]
        assert len(cells) == len(set(cells))

    def test_fd_violations_change_dependent(self):
        injector = ErrorInjector(self._clean(), seed=3)
        injected = injector.inject_fd_violations("key", "name", 5)
        assert injected == 5
        assert all(e.error_type is ErrorType.FD_VIOLATION for e in injector.errors)

    def test_inconsistency_uses_variants(self):
        injector = ErrorInjector(self._clean(), seed=4)
        injector.inject_inconsistency("name", 5, {"value 1": ["VALUE ONE"]})
        assert all(e.dirty_value == "VALUE ONE" for e in injector.errors)

    def test_numeric_outliers_are_larger(self):
        injector = ErrorInjector(self._clean(), seed=5)
        injector.inject_numeric_outliers("amount", 3, factor=100)
        for error in injector.errors:
            assert float(error.dirty_value) > float(error.clean_value)

    def test_misplacement_takes_value_from_other_column(self):
        injector = ErrorInjector(self._clean(), seed=6)
        injector.inject_misplacement("key", "name", 3)
        source_values = set(self._clean().column("key").values)
        assert all(str(e.dirty_value) in source_values for e in injector.errors)

    def test_group_scatter_spreads_values(self):
        injector = ErrorInjector(self._clean(), seed=7)
        injected = injector.inject_group_scatter("key", "name", group_fraction=1.0, corrupt_fraction=0.5)
        assert injected > 0

    def test_reproducibility(self):
        a = ErrorInjector(self._clean(), seed=9)
        b = ErrorInjector(self._clean(), seed=9)
        a.inject_typos("name", 10)
        b.inject_typos("name", 10)
        assert a.errors == b.errors


class TestGenerators:
    def test_all_benchmarks_load(self, small_datasets):
        assert set(small_datasets) == {"hospital", "flights", "beers", "rayyan", "movies"}
        for dataset in small_datasets.values():
            assert isinstance(dataset, BenchmarkDataset)
            assert dataset.dirty.shape == dataset.clean.shape
            assert dataset.dirty.column_names == dataset.clean.column_names

    def test_error_cells_match_injections(self, small_datasets):
        for dataset in small_datasets.values():
            error_cells = dataset.error_cells()
            injected_cells = {(e.row, e.column) for e in dataset.injected_errors}
            assert injected_cells == error_cells

    def test_census_counts_type_and_dmv(self, small_datasets):
        hospital = small_datasets["hospital"]
        census = hospital.error_census()
        assert census[ErrorType.COLUMN_TYPE] > 0
        assert census[ErrorType.DMV] > 0
        assert census[ErrorType.TYPO] > 0

    def test_extended_clean_casts_and_nulls(self, small_datasets):
        hospital = small_datasets["hospital"]
        extended = hospital.extended_clean
        assert set(v for v in extended.column("EmergencyService").values if v is not None) <= {True, False}
        for row, column in hospital.dmv_cells:
            assert extended.cell(row, column) is None

    def test_hospital_dimensions(self):
        dataset = load_dataset("hospital", scale=0.1)
        assert dataset.dirty.num_columns == 19

    def test_movies_dimensions(self, small_datasets):
        assert small_datasets["movies"].dirty.num_columns == 17

    def test_flights_ambiguity_present(self, small_datasets):
        flights = small_datasets["flights"]
        actual_errors = [e for e in flights.injected_errors if "actual" in e.column]
        scheduled_errors = [e for e in flights.injected_errors if "scheduled" in e.column]
        assert actual_errors and scheduled_errors

    def test_rayyan_language_inconsistencies(self, small_datasets):
        rayyan = small_datasets["rayyan"]
        inconsistencies = [e for e in rayyan.injected_errors
                           if e.error_type is ErrorType.INCONSISTENCY and e.column == "article_language"]
        assert inconsistencies
        assert any(e.dirty_value == "English" for e in inconsistencies)

    def test_seed_reproducibility(self):
        a = load_dataset("beers", seed=3, scale=SCALE)
        b = load_dataset("beers", seed=3, scale=SCALE)
        assert a.dirty.to_dict() == b.dirty.to_dict()
        assert a.injected_errors == b.injected_errors

    def test_different_seed_changes_data(self):
        a = load_dataset("beers", seed=3, scale=SCALE)
        b = load_dataset("beers", seed=4, scale=SCALE)
        assert a.dirty.to_dict() != b.dirty.to_dict()

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError):
            load_dataset("enron")

    def test_summary_mentions_error_types(self, small_datasets):
        assert "typo" in small_datasets["hospital"].summary()
