"""Differential suite: compiled columnar engine vs row-dict interpreter.

Every query here runs twice — ``Executor(compiled=True)`` and
``Executor(compiled=False)`` over the same catalog — and the results must be
cell-identical: same column names, same row order, and per cell either both
NULL (``is_null``, which also covers NaN) or equal with the same type.
Errors must match too: same exception class, same message.

Two layers:

* a deterministic battery covering every expression node shape the compiler
  handles (plus the shapes that must raise, and the empty-table cases that
  must *not* raise);
* a hypothesis layer generating random SELECTs — filters, group-bys,
  windows, LIKE/ESCAPE, NaN and mixed-type columns — against randomly drawn
  tables.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.sql.catalog import Catalog
from repro.sql.errors import ExecutionError
from repro.sql.executor import Executor
from repro.sql.parser import parse


def make_catalog(tables):
    catalog = Catalog()
    for table in tables:
        catalog.register(table)
    return catalog


def mixed_table():
    return Table.from_dict(
        "t",
        {
            "k": [1, 2, 3, 4, 5, 6, 7, 8],
            "grp": ["a", "b", "a", None, "b", "a", "c", None],
            "val": [1.5, -2.0, float("nan"), 4.0, None, 1.5, 100.25, 0.0],
            "txt": ["5% off", "plain", None, "under_score", "PLAIN", "", "a%b", "x!y"],
            "mixed": [1, "1", 2.0, "two", None, True, "True", float("nan")],
        },
    )


def run_engine(catalog, sql, compiled):
    executor = Executor(catalog, compiled=compiled)
    try:
        result = executor.execute(parse(sql))
    except Exception as error:  # noqa: BLE001 - errors are part of the contract
        return ("error", type(error), str(error)), executor.last_execution_mode
    return ("table", result), executor.last_execution_mode


def assert_cell_identical(sql, compiled_result, interpreted_result):
    kind_c, kind_i = compiled_result[0], interpreted_result[0]
    assert kind_c == kind_i, (
        f"{sql!r}: compiled produced {compiled_result}, interpreter produced {interpreted_result}"
    )
    if kind_c == "error":
        assert compiled_result[1:] == interpreted_result[1:], (
            f"{sql!r}: error mismatch {compiled_result[1:]} vs {interpreted_result[1:]}"
        )
        return
    table_c, table_i = compiled_result[1], interpreted_result[1]
    assert table_c.column_names == table_i.column_names, sql
    assert table_c.num_rows == table_i.num_rows, sql
    for col_c, col_i in zip(table_c.columns, table_i.columns):
        for row, (a, b) in enumerate(zip(col_c.values, col_i.values)):
            if is_null(a) and is_null(b):
                continue
            assert type(a) is type(b) and a == b, (
                f"{sql!r}: cell ({row}, {col_c.name}) differs: {a!r} vs {b!r}"
            )


def check(catalog, sql):
    compiled_result, _ = run_engine(catalog, sql, compiled=True)
    interpreted_result, mode = run_engine(catalog, sql, compiled=False)
    assert mode == "rowdict" or mode is None
    assert_cell_identical(sql, compiled_result, interpreted_result)
    return compiled_result


DETERMINISTIC_QUERIES = [
    # scans and projection
    "SELECT * FROM t",
    "SELECT k, val FROM t",
    "SELECT k AS id, val * 2 AS doubled, -val AS neg FROM t",
    "SELECT k, k FROM t",  # duplicate output names get _1 suffixes
    "SELECT 'lit' AS tag, 42 AS n, k FROM t",
    # filters: comparison, 3VL AND/OR, arithmetic, division by zero
    "SELECT k FROM t WHERE val > 1",
    "SELECT k FROM t WHERE val >= 1.5 AND grp = 'a'",
    "SELECT k FROM t WHERE grp = 'a' OR val < 0",
    "SELECT k FROM t WHERE NOT (grp = 'a')",
    "SELECT k FROM t WHERE val + 1 > 2",
    "SELECT k, val / 0 AS dz, val % 0 AS mz FROM t",
    "SELECT k FROM t WHERE k % 2 = 0",
    "SELECT k, grp || '-' || txt AS joined FROM t",
    "SELECT k FROM t WHERE mixed = 1",
    "SELECT k FROM t WHERE mixed = 'True'",
    "SELECT k FROM t WHERE mixed <> 2",
    # IS NULL / IN / BETWEEN / CASE / CAST
    "SELECT k FROM t WHERE grp IS NULL",
    "SELECT k FROM t WHERE grp IS NOT NULL",
    "SELECT k FROM t WHERE grp IN ('a', 'c')",
    "SELECT k FROM t WHERE grp NOT IN ('a', 'c')",
    "SELECT k FROM t WHERE grp IN ('a', NULL)",
    "SELECT k FROM t WHERE k IN (1, 2, k + 1)",
    "SELECT k FROM t WHERE k BETWEEN 2 AND 5",
    "SELECT k FROM t WHERE k NOT BETWEEN 2 AND 5",
    "SELECT k, CASE grp WHEN 'a' THEN 'first' WHEN 'b' THEN 'second' ELSE 'other' END AS label FROM t",
    "SELECT k, CASE grp WHEN 'a' THEN 1 END AS partial FROM t",
    "SELECT k, CASE WHEN val > 1 THEN 'big' WHEN val < 0 THEN 'neg' ELSE 'small' END AS bucket FROM t",
    "SELECT k, CASE grp WHEN txt THEN 'match' ELSE 'no' END AS dynamic FROM t",
    "SELECT k, CAST(k AS TEXT) AS s, CAST(val AS INTEGER) AS i FROM t",
    # LIKE through every route: Like node, escape, null pattern
    "SELECT k FROM t WHERE txt LIKE '%plain%'",
    "SELECT k FROM t WHERE txt LIKE '5!% %' ESCAPE '!'",
    "SELECT k FROM t WHERE txt LIKE 'under!_s%' ESCAPE '!'",
    "SELECT k, txt LIKE 'p%' AS starts_p FROM t",
    "SELECT k FROM t WHERE txt LIKE grp",
    # scalar functions
    "SELECT k, UPPER(txt) AS u, LENGTH(txt) AS n, COALESCE(grp, 'none') AS g FROM t",
    "SELECT k, SUBSTR(txt, 1, 3) AS head, REPLACE(txt, '%', 'pct') AS r FROM t",
    "SELECT k, ROUND(val, 1) AS r, ABS(val) AS a FROM t",
    # aggregates: global, grouped, HAVING, DISTINCT, expression-of-aggregates
    "SELECT COUNT(*) FROM t",
    "SELECT COUNT(val), SUM(val), MIN(val), MAX(val), AVG(val) FROM t",
    "SELECT COUNT(DISTINCT grp) FROM t",
    "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp",
    "SELECT grp, SUM(val) AS total, AVG(val) AS mean FROM t GROUP BY grp",
    "SELECT grp, COUNT(*) AS n FROM t GROUP BY grp HAVING COUNT(*) > 1",
    "SELECT grp, SUM(val) - COUNT(*) AS adjusted FROM t GROUP BY grp",
    "SELECT grp, STRING_AGG(txt, '|') AS joined FROM t GROUP BY grp",
    "SELECT grp, val, COUNT(*) AS n FROM t GROUP BY grp, val",
    "SELECT UPPER(grp) AS g, COUNT(*) AS n FROM t GROUP BY UPPER(grp)",
    # windows and QUALIFY
    "SELECT k, ROW_NUMBER() OVER (PARTITION BY grp ORDER BY val DESC) AS rn FROM t",
    "SELECT k, RANK() OVER (ORDER BY val) AS r, DENSE_RANK() OVER (ORDER BY val) AS d FROM t",
    "SELECT k, SUM(val) OVER (PARTITION BY grp) AS group_total, COUNT(*) OVER () AS total FROM t",
    "SELECT k, grp FROM t QUALIFY ROW_NUMBER() OVER (PARTITION BY grp ORDER BY val DESC) = 1",
    "SELECT k, ROW_NUMBER() OVER (ORDER BY val) AS rn FROM t "
    "QUALIFY ROW_NUMBER() OVER (ORDER BY val) <= 3 ORDER BY k",
    # DISTINCT / ORDER BY / LIMIT / OFFSET
    "SELECT DISTINCT grp FROM t",
    "SELECT DISTINCT grp, val FROM t ORDER BY grp",
    "SELECT k, val FROM t ORDER BY val DESC, k",
    "SELECT grp FROM t ORDER BY val",  # order by unprojected source column
    "SELECT k FROM t ORDER BY 1 DESC",
    "SELECT k FROM t ORDER BY k + 0",
    "SELECT DISTINCT grp FROM t ORDER BY grp DESC",
    "SELECT k FROM t ORDER BY val LIMIT 3",
    "SELECT k FROM t ORDER BY k LIMIT 3 OFFSET 2",
    "SELECT k FROM t LIMIT 2",
    "SELECT k FROM t OFFSET 6",
    # subqueries in FROM (inner SELECT is itself columnar-eligible)
    "SELECT id FROM (SELECT k AS id, val FROM t WHERE val > 0) sub WHERE id > 2",
    "SELECT grp, n FROM (SELECT grp, COUNT(*) AS n FROM t GROUP BY grp) counts ORDER BY n DESC, grp",
    # NaN ordering exercises the total order (NULL/NaN last)
    "SELECT val FROM t ORDER BY val DESC",
]

# Legacy error behaviours the interpreter has always had (TypeError on
# uncomparable sort keys, aggregates inside CASE conditions, QUALIFY over an
# output alias): the compiled engine must reproduce them exactly, whatever
# the class and message.
LEGACY_ERROR_PARITY_QUERIES = [
    "SELECT mixed FROM t ORDER BY mixed",
    "SELECT grp, CASE WHEN COUNT(*) > 2 THEN 'big' ELSE 'small' END AS size_label FROM t GROUP BY grp",
    "SELECT k, ROW_NUMBER() OVER (ORDER BY val) AS rn FROM t QUALIFY rn <= 3",
]

ERROR_QUERIES = [
    "SELECT nope FROM t",
    "SELECT t2.nope FROM t",
    "SELECT k FROM t WHERE nope = 1",
    "SELECT k FROM t ORDER BY nope",
    "SELECT k FROM t WHERE COUNT(k) > 1",
    "SELECT k FROM t WHERE txt LIKE 'x!' ESCAPE '!'",
    "SELECT k FROM t WHERE txt LIKE 'x' ESCAPE '!!'",
    "SELECT k FROM t ORDER BY ROW_NUMBER() OVER (ORDER BY k)",
]


@pytest.fixture(scope="module")
def catalog():
    return make_catalog([mixed_table()])


@pytest.mark.parametrize("sql", DETERMINISTIC_QUERIES)
def test_battery_matches_interpreter(catalog, sql):
    result = check(catalog, sql)
    assert result[0] == "table", f"battery query unexpectedly failed: {result}"


@pytest.mark.parametrize("sql", ERROR_QUERIES)
def test_error_parity(catalog, sql):
    result = check(catalog, sql)
    assert result[0] == "error", f"expected an error from {sql!r}"
    assert result[1] is ExecutionError


@pytest.mark.parametrize("sql", LEGACY_ERROR_PARITY_QUERIES)
def test_legacy_error_parity(catalog, sql):
    result = check(catalog, sql)
    assert result[0] == "error", f"expected an error from {sql!r}"


# The compiler specialises `<expr> <op> <literal>` comparisons
# (_compile_const_compare); this matrix drives every operand type the
# engine stores against every literal shape the specialisation dispatches
# on, for all six comparison operators.
CONST_COMPARE_VALUES = [
    None, float("nan"), float("inf"), float("-inf"),
    0, 1, -3, 2 ** 53, 2 ** 53 + 1,
    2.5, True, False,
    "", "a", "A", "7", "7.0", " 7 ", "nan", "inf", "0", "True",
]
CONST_COMPARE_LITERALS = [
    "'a'", "'7'", "'7.0'", "''", "'nan'", "' 7 '",
    "0", "7", "2.5", "-1", "9007199254740992",
]


@pytest.mark.parametrize("op", ["=", "<>", "<", ">", "<=", ">="])
def test_constant_comparison_matrix(op):
    matrix_catalog = make_catalog(
        [Table.from_dict("t", {"v": CONST_COMPARE_VALUES})]
    )
    for lit in CONST_COMPARE_LITERALS:
        result = check(matrix_catalog, f"SELECT v, v {op} {lit} AS r FROM t")
        assert result[0] == "table", (lit, result)


class TestEngineSelection:
    def test_single_table_runs_columnar(self, catalog):
        executor = Executor(catalog, compiled=True)
        executor.execute(parse("SELECT k FROM t WHERE val > 1"))
        assert executor.last_execution_mode == "columnar"

    def test_compiled_false_runs_rowdict(self, catalog):
        executor = Executor(catalog, compiled=False)
        executor.execute(parse("SELECT k FROM t WHERE val > 1"))
        assert executor.last_execution_mode == "rowdict"

    def test_join_falls_back_to_rowdict(self, catalog):
        executor = Executor(catalog, compiled=True)
        executor.execute(parse("SELECT a.k FROM t a JOIN t b ON a.k = b.k"))
        assert executor.last_execution_mode == "rowdict"

    def test_no_from_falls_back_to_rowdict(self, catalog):
        executor = Executor(catalog, compiled=True)
        executor.execute(parse("SELECT 1 + 1"))
        assert executor.last_execution_mode == "rowdict"

    def test_env_var_escape_hatch(self, catalog, monkeypatch):
        monkeypatch.setenv("REPRO_SQL_COMPILED", "0")
        executor = Executor(catalog)
        assert executor.compiled is False
        monkeypatch.setenv("REPRO_SQL_COMPILED", "1")
        assert Executor(catalog).compiled is True
        monkeypatch.delenv("REPRO_SQL_COMPILED")
        assert Executor(catalog).compiled is True


class TestEmptyTableParity:
    """Compile-once must not turn eval-time errors into plan-time errors."""

    @pytest.fixture(scope="class")
    def empty_catalog(self):
        return make_catalog(
            [Table.from_dict("e", {"a": [], "b": []})]
        )

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT nope FROM e",                              # unknown column, zero rows
            "SELECT a FROM e WHERE nope = 1",
            "SELECT a FROM e WHERE b LIKE 'x!' ESCAPE '!'",    # malformed pattern, zero rows
            "SELECT a FROM e ORDER BY ROW_NUMBER() OVER (ORDER BY a)",
        ],
    )
    def test_would_raise_expressions_do_not_raise_on_empty(self, empty_catalog, sql):
        result = check(empty_catalog, sql)
        assert result[0] == "table"
        assert result[1].num_rows == 0

    def test_aggregates_over_empty_table(self, empty_catalog):
        check(empty_catalog, "SELECT COUNT(*), SUM(a), MIN(a) FROM e")
        check(empty_catalog, "SELECT a, COUNT(*) FROM e GROUP BY a")


# --------------------------------------------------------------------------
# hypothesis layer: random SELECTs over random tables
# --------------------------------------------------------------------------
GRP_VALUES = st.sampled_from(["a", "b", "c", "aa", "", None])
VAL_VALUES = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.integers(min_value=-5, max_value=10),
    st.floats(min_value=-5, max_value=10, allow_nan=False, allow_infinity=False),
)
TXT_VALUES = st.one_of(
    st.none(),
    st.text(alphabet="ab%_!X ", max_size=6),
)
MIXED_VALUES = st.one_of(
    st.none(),
    st.just(float("nan")),
    st.booleans(),
    st.integers(min_value=-3, max_value=3),
    st.sampled_from(["1", "2.0", "x", "True"]),
)


@st.composite
def tables(draw):
    n = draw(st.integers(min_value=0, max_value=12))
    return Table.from_dict(
        "t",
        {
            "k": list(range(n)),
            "grp": [draw(GRP_VALUES) for _ in range(n)],
            "val": [draw(VAL_VALUES) for _ in range(n)],
            "txt": [draw(TXT_VALUES) for _ in range(n)],
            "mixed": [draw(MIXED_VALUES) for _ in range(n)],
        },
    )


LITERALS = st.sampled_from(["0", "1", "2.5", "'a'", "'b'", "''", "'1'", "NULL"])
COLUMNS = st.sampled_from(["k", "grp", "val", "txt", "mixed"])
LIKE_PATTERNS = st.sampled_from(
    ["'%a%'", "'a%'", "'%b'", "'_'", "'a!%%' ESCAPE '!'", "'!_%' ESCAPE '!'", "''"]
)


@st.composite
def predicates(draw, depth=0):
    column = draw(COLUMNS)
    kind = draw(
        st.sampled_from(
            ["cmp", "like", "null", "in", "between", "and", "or", "not"]
            if depth < 2
            else ["cmp", "like", "null", "in", "between"]
        )
    )
    if kind == "cmp":
        op = draw(st.sampled_from(["=", "<>", "<", ">", "<=", ">="]))
        return f"{column} {op} {draw(LITERALS)}"
    if kind == "like":
        return f"{column} LIKE {draw(LIKE_PATTERNS)}"
    if kind == "null":
        return f"{column} IS {draw(st.sampled_from(['NULL', 'NOT NULL']))}"
    if kind == "in":
        items = ", ".join(draw(st.lists(LITERALS, min_size=1, max_size=3)))
        return f"{column} {draw(st.sampled_from(['IN', 'NOT IN']))} ({items})"
    if kind == "between":
        return f"{column} BETWEEN 0 AND {draw(st.sampled_from(['2', '5.5']))}"
    if kind == "not":
        return f"NOT ({draw(predicates(depth + 1))})"
    joiner = "AND" if kind == "and" else "OR"
    return f"({draw(predicates(depth + 1))} {joiner} {draw(predicates(depth + 1))})"


@st.composite
def select_queries(draw):
    shape = draw(st.sampled_from(["plain", "group", "window"]))
    where = f" WHERE {draw(predicates())}" if draw(st.booleans()) else ""
    if shape == "group":
        having = " HAVING COUNT(*) >= 1" if draw(st.booleans()) else ""
        order = " ORDER BY n DESC, grp" if draw(st.booleans()) else ""
        return (
            "SELECT grp, COUNT(*) AS n, SUM(val) AS total, MIN(txt) AS low "
            f"FROM t{where} GROUP BY grp{having}{order}"
        )
    if shape == "window":
        qualify = (
            " QUALIFY ROW_NUMBER() OVER (PARTITION BY grp ORDER BY val DESC, k) = 1"
            if draw(st.booleans())
            else ""
        )
        order = " ORDER BY k" if draw(st.booleans()) else ""
        return (
            "SELECT k, grp, RANK() OVER (PARTITION BY grp ORDER BY val) AS r "
            f"FROM t{where}{qualify}{order}"
        )
    distinct = "DISTINCT " if draw(st.booleans()) else ""
    items = draw(
        st.sampled_from(
            [
                "*",
                "k, grp, val",
                "grp, val * 2 AS v2",
                "COALESCE(grp, 'none') AS g, txt",
                "CASE WHEN val > 0 THEN 'pos' ELSE 'rest' END AS sign, k",
            ]
        )
    )
    order = draw(st.sampled_from(["", " ORDER BY k", " ORDER BY val DESC, k", " ORDER BY 1"]))
    if distinct and order == " ORDER BY 1":
        order = ""
    limit = draw(st.sampled_from(["", " LIMIT 3", " LIMIT 5 OFFSET 2"]))
    return f"SELECT {distinct}{items} FROM t{where}{order}{limit}"


@settings(max_examples=120, deadline=None)
@given(table=tables(), sql=select_queries())
def test_random_selects_match_interpreter(table, sql):
    catalog = make_catalog([table])
    compiled_result, _ = run_engine(catalog, sql, compiled=True)
    interpreted_result, _ = run_engine(catalog, sql, compiled=False)
    assert_cell_identical(sql, compiled_result, interpreted_result)


@settings(max_examples=60, deadline=None)
@given(table=tables(), predicate=predicates())
def test_random_predicates_match_interpreter(table, predicate):
    catalog = make_catalog([table])
    sql = f"SELECT k FROM t WHERE {predicate}"
    compiled_result, _ = run_engine(catalog, sql, compiled=True)
    interpreted_result, _ = run_engine(catalog, sql, compiled=False)
    assert_cell_identical(sql, compiled_result, interpreted_result)
