"""Regression tests for the semantics holes the differential suite exposed.

Each test class pins one bug that existed before this change: MIN/MAX raising
TypeError on mixed types, aggregates leaking raw TypeErrors, SUM and AVG
disagreeing on numeric coercion, ROUND using banker's rounding, and
LPAD/RPAD mishandling empty or multi-character pads.
"""

import pytest

from repro.dataframe.table import Table
from repro.sql.comparison import compare_values, numeric_pair, sql_equal
from repro.sql.database import Database
from repro.sql.errors import ExecutionError
from repro.sql.functions import SCALAR_FUNCTIONS, make_aggregate


def scalar(db, sql):
    return db.scalar(sql)


@pytest.fixture()
def db():
    database = Database()
    database.register(
        Table.from_rows(
            "mixed",
            ["v", "s"],
            [[3, "10"], ["12", "x"], [None, "2.5"], [1.5, "7"]],
        ),
        replace=True,
    )
    return database


class TestMinMaxMixedTypes:
    """MIN/MAX used raw < / > and raised TypeError on str-vs-int columns."""

    def test_min_over_mixed_column(self, db):
        # Numeric-looking strings compare numerically: min(3, '12', 1.5) == 1.5
        assert scalar(db, "SELECT MIN(v) FROM mixed") == 1.5

    def test_max_over_mixed_column(self, db):
        assert scalar(db, "SELECT MAX(v) FROM mixed") == "12"

    def test_all_text_column_compares_lexically(self, db):
        # No numeric operand on either side → plain string comparison.
        assert scalar(db, "SELECT MAX(s) FROM mixed") == "x"
        assert scalar(db, "SELECT MIN(s) FROM mixed") == "10"

    def test_compare_values_total_order(self):
        assert compare_values(3, "12") < 0
        assert compare_values("abc", 999) > 0  # text falls back to str vs str
        assert compare_values("abc", "abd") < 0
        assert compare_values(2, 2.0) == 0
        # NaN sorts after every real value, including +inf.
        assert compare_values(float("nan"), float("inf")) > 0
        assert compare_values(float("nan"), 1e300) > 0
        assert compare_values(float("nan"), float("nan")) == 0


class TestAggregateErrorWrapping:
    """Aggregate accumulation errors must surface as ExecutionError, not TypeError."""

    def test_sum_of_text_raises_execution_error(self, db):
        with pytest.raises(ExecutionError, match=r"SUM requires numeric input, got 'x'"):
            scalar(db, "SELECT SUM(s) FROM mixed")

    def test_avg_of_text_raises_execution_error(self, db):
        with pytest.raises(ExecutionError, match="AVG requires numeric input"):
            scalar(db, "SELECT AVG(s) FROM mixed")

    def test_add_checked_wraps_stray_type_errors(self):
        # Defensive path: any TypeError/ValueError escaping an accumulator is
        # re-raised as ExecutionError naming the aggregate and the value.
        from repro.sql.functions import Aggregate

        class Boom(Aggregate):
            name = "BOOM"

            def add(self, value):
                raise TypeError("no")

        with pytest.raises(ExecutionError, match=r"Error accumulating BOOM\(1\): no"):
            Boom().add_checked(1)


class TestSumAvgCoercionUnified:
    """SUM and AVG previously coerced differently; both now share one helper."""

    def test_sum_accepts_numeric_strings(self, db):
        assert scalar(db, "SELECT SUM(v) FROM mixed") == 16.5

    def test_avg_agrees_with_sum_over_count(self, db):
        assert scalar(db, "SELECT AVG(v) FROM mixed") == pytest.approx(16.5 / 3)

    def test_sum_of_ints_stays_int(self, db):
        db.register(Table.from_rows("ints", ["n"], [[1], [2], [3]]), replace=True)
        total = scalar(db, "SELECT SUM(n) FROM ints")
        assert total == 6 and isinstance(total, int)

    def test_sum_of_bools_counts(self, db):
        db.register(Table.from_rows("flags", ["b"], [[True], [False], [True]]), replace=True)
        assert scalar(db, "SELECT SUM(b) FROM flags") == 2

    def test_make_aggregate_names(self):
        agg = make_aggregate("SUM")
        assert agg.name == "SUM"
        with pytest.raises(ExecutionError, match="SUM requires numeric input"):
            agg.add_checked("oops")


class TestRoundHalfAwayFromZero:
    """ROUND followed Python banker's rounding; SQL rounds half away from zero."""

    def test_positive_half(self):
        assert SCALAR_FUNCTIONS["ROUND"](2.5) == 3
        assert SCALAR_FUNCTIONS["ROUND"](0.5) == 1

    def test_negative_half(self):
        assert SCALAR_FUNCTIONS["ROUND"](-2.5) == -3

    def test_digits(self):
        assert SCALAR_FUNCTIONS["ROUND"](2.345, 2) == 2.35
        assert SCALAR_FUNCTIONS["ROUND"](1.005, 2) == 1.01

    def test_nan_is_null(self):
        # NaN is NULL everywhere in the engine; _null_safe short-circuits it.
        assert SCALAR_FUNCTIONS["ROUND"](float("nan")) is None
        assert SCALAR_FUNCTIONS["ROUND"](float("inf"), 2) == float("inf")

    def test_through_executor(self, db):
        assert scalar(db, "SELECT ROUND(2.5) FROM mixed LIMIT 1") == 3


class TestPadFunctions:
    """LPAD/RPAD: empty pad raised IndexError, multi-char pads used only char 0,
    and over-long inputs were never truncated."""

    def test_empty_pad_returns_text(self):
        assert SCALAR_FUNCTIONS["LPAD"]("ab", 5, "") == "ab"
        assert SCALAR_FUNCTIONS["RPAD"]("ab", 5, "") == "ab"

    def test_multi_char_pad_cycles(self):
        assert SCALAR_FUNCTIONS["LPAD"]("7", 6, "xy") == "xyxyx7"
        assert SCALAR_FUNCTIONS["RPAD"]("7", 6, "xy") == "7xyxyx"

    def test_truncates_when_longer_than_target(self):
        assert SCALAR_FUNCTIONS["LPAD"]("abcdef", 3, "0") == "abc"
        assert SCALAR_FUNCTIONS["RPAD"]("abcdef", 3, "0") == "abc"

    def test_zero_and_negative_length(self):
        assert SCALAR_FUNCTIONS["LPAD"]("abc", 0, "0") == ""
        assert SCALAR_FUNCTIONS["LPAD"]("abc", -2, "0") == ""

    def test_default_space_pad(self, db):
        assert scalar(db, "SELECT LPAD('7', 3) FROM mixed LIMIT 1") == "  7"

    def test_null_passthrough(self, db):
        assert scalar(db, "SELECT LPAD(NULL, 3, '0') FROM mixed LIMIT 1") is None


class TestComparisonHelpers:
    def test_numeric_pair_rejects_nan_strings(self):
        # 'nan'/'inf' strings must compare as text, not poison numeric paths.
        assert numeric_pair("nan", 1) is None
        assert numeric_pair("inf", 1) is None
        assert numeric_pair("2.5", 1) == (2.5, 1.0)

    def test_sql_equal_numeric_text(self):
        assert sql_equal("2.50", 2.5)
        assert not sql_equal("abc", 0)
        assert sql_equal(True, 1)
