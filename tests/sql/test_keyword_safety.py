"""Regression tests: SQL-keyword column names survive generation and parsing.

``quote_identifier`` used to leave lowercase keywords (``select``, ``order``,
``group``, ``from``, …) unquoted, so any generated cleaning SQL touching such
a column failed to tokenize.  Every name in the tokenizer's ``KEYWORDS`` set
must now round-trip through the SQL generator and the parser.
"""

import pytest

from repro.core.sqlgen import (
    case_when_null,
    quote_identifier,
    select_with_replacements,
)
from repro.dataframe.table import Table
from repro.sql.ast_nodes import ColumnRef
from repro.sql.database import Database
from repro.sql.parser import parse, parse_expression
from repro.sql.tokenizer import KEYWORDS


class TestQuoteIdentifier:
    def test_plain_lowercase_names_stay_bare(self):
        assert quote_identifier("city") == "city"
        assert quote_identifier("zip_code") == "zip_code"

    def test_mixed_case_and_spaces_are_quoted(self):
        assert quote_identifier("City") == '"City"'
        assert quote_identifier("zip code") == '"zip code"'

    @pytest.mark.parametrize("keyword", sorted(KEYWORDS))
    def test_keywords_are_quoted_in_any_case(self, keyword):
        for spelling in (keyword.lower(), keyword.upper(), keyword.capitalize()):
            quoted = quote_identifier(spelling)
            assert quoted == f'"{spelling}"', (
                f"{spelling!r} collides with the {keyword} keyword and must be quoted"
            )


class TestKeywordRoundTrip:
    @pytest.mark.parametrize("keyword", sorted(KEYWORDS))
    def test_every_keyword_parses_back_as_a_column_reference(self, keyword):
        name = keyword.lower()
        expr = parse_expression(quote_identifier(name))
        assert isinstance(expr, ColumnRef)
        assert expr.name == name

    @pytest.mark.parametrize("keyword", sorted(KEYWORDS))
    def test_every_keyword_survives_a_generated_statement(self, keyword):
        name = keyword.lower()
        statement = select_with_replacements(
            source_table="src",
            target_table="dst",
            columns=[name, "plain"],
            replacements={name: case_when_null(name, ["N/A"])},
            comments=[f"clean the {name!r} column"],
        )
        parsed = parse(statement)
        assert parsed.name == "dst"

    def test_generated_statement_executes_on_keyword_columns(self):
        db = Database()
        db.register(
            Table.from_dict(
                "src",
                {"select": ["a", "N/A"], "order": [2, 1], "group": ["x", "y"]},
            )
        )
        statement = select_with_replacements(
            source_table="src",
            target_table="dst",
            columns=["select", "order", "group"],
            replacements={"select": case_when_null("select", ["N/A"])},
        )
        db.sql(statement)
        result = db.sql('SELECT "select", "group" FROM dst ORDER BY "order"')
        assert result.to_dict() == {"select": [None, "a"], "group": ["y", "x"]}
