"""The LIKE regex cache: one translate+compile per (pattern, escape)."""

import pytest

from repro.dataframe.table import Table
from repro.sql.catalog import Catalog
from repro.sql.errors import ExecutionError
from repro.sql.executor import Executor, _like_match, _like_regex
from repro.sql.parser import parse


@pytest.fixture(autouse=True)
def fresh_cache():
    _like_regex.cache_clear()
    yield
    _like_regex.cache_clear()


@pytest.fixture()
def db():
    catalog = Catalog()
    catalog.register(
        Table.from_dict(
            "t",
            {
                "s": ["apple", "APPLE", "banana", "50% off", "a_b", None, "axe"],
            },
        )
    )
    return catalog


def run(catalog, sql, compiled):
    return Executor(catalog, compiled=compiled).execute(parse(sql))


class TestCacheReuse:
    def test_one_compile_per_distinct_pattern(self, db):
        run(db, "SELECT s FROM t WHERE s LIKE 'a%'", compiled=False)
        info = _like_regex.cache_info()
        # 7 rows, 6 non-null evaluations, exactly one miss.
        assert info.misses == 1
        assert info.hits >= 5

    def test_compiled_engine_shares_the_same_cache(self, db):
        run(db, "SELECT s FROM t WHERE s LIKE 'a%'", compiled=True)
        assert _like_regex.cache_info().misses == 1
        # The interpreter re-running the same pattern only hits.
        run(db, "SELECT s FROM t WHERE s LIKE 'a%'", compiled=False)
        assert _like_regex.cache_info().misses == 1

    def test_distinct_escapes_are_distinct_entries(self, db):
        run(db, "SELECT s FROM t WHERE s LIKE '50!%%' ESCAPE '!'", compiled=False)
        run(db, "SELECT s FROM t WHERE s LIKE '50@%%' ESCAPE '@'", compiled=False)
        assert _like_regex.cache_info().misses == 2

    def test_binaryop_like_and_like_node_share_entries(self, db):
        # NOT LIKE parses to a different node shape but the same pattern.
        run(db, "SELECT s FROM t WHERE s LIKE 'a%'", compiled=False)
        run(db, "SELECT s FROM t WHERE s NOT LIKE 'a%'", compiled=False)
        assert _like_regex.cache_info().misses == 1


class TestSemanticsUnchanged:
    @pytest.mark.parametrize("compiled", [True, False])
    def test_case_insensitive(self, db, compiled):
        result = run(db, "SELECT s FROM t WHERE s LIKE 'apple'", compiled=compiled)
        assert result.column("s").values == ["apple", "APPLE"]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_escaped_percent_is_literal(self, db, compiled):
        result = run(
            db, "SELECT s FROM t WHERE s LIKE '50!% off' ESCAPE '!'", compiled=compiled
        )
        assert result.column("s").values == ["50% off"]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_escaped_underscore_is_literal(self, db, compiled):
        result = run(
            db, "SELECT s FROM t WHERE s LIKE 'a!_b' ESCAPE '!'", compiled=compiled
        )
        assert result.column("s").values == ["a_b"]

    @pytest.mark.parametrize("compiled", [True, False])
    def test_multi_char_escape_still_raises(self, db, compiled):
        with pytest.raises(ExecutionError, match="single character"):
            run(db, "SELECT s FROM t WHERE s LIKE 'a%' ESCAPE 'xy'", compiled=compiled)

    @pytest.mark.parametrize("compiled", [True, False])
    def test_dangling_escape_raises_every_time(self, db, compiled):
        # lru_cache does not cache exceptions: the malformed pattern must
        # raise on a second run too, not return a stale cached object.
        for _ in range(2):
            with pytest.raises(ExecutionError, match="ends with its ESCAPE"):
                run(
                    db,
                    "SELECT s FROM t WHERE s LIKE 'a!' ESCAPE '!'",
                    compiled=compiled,
                )


class TestDirectHelper:
    def test_match_and_cache(self):
        assert _like_match("Apple pie", "apple%") is True
        assert _like_match("pie", "apple%") is False
        info = _like_regex.cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_null_escape_means_no_escape(self):
        assert _like_match("50% off", "50%", None) is True
