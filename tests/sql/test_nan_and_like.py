"""Executor comparison semantics around non-finite values, plus LIKE ESCAPE.

Two regressions are pinned here:

* ``_numeric_pair`` used to accept ``'nan'``/``'inf'``/``'Infinity'`` strings
  as numbers, and ``_compare`` answered 0 for NaN against anything — so
  ``'nan' >= 5`` and ``'nan' <= 5`` were *both* true.  Non-finite string
  casts are now rejected (such strings compare textually, like any other
  non-numeric string) and ``_compare`` is a deterministic total order with
  NaN after every real value.
* ``LIKE`` had no way to match a literal ``%`` or ``_``; the standard
  ``ESCAPE`` clause is now supported end to end (tokenizer → parser →
  executor).
"""

import math

import pytest

from repro.dataframe.table import Table
from repro.sql.database import Database
from repro.sql.errors import ExecutionError
from repro.sql.executor import _compare, _like_to_regex, _sort_key
from repro.sql.parser import parse_expression
from repro.sql.ast_nodes import Like


@pytest.fixture
def db():
    database = Database()
    database.register(
        Table.from_dict(
            "t",
            {
                "label": ["a", "b", "c", "d"],
                "value": ["nan", "inf", "Infinity", "7"],
                "discount": ["5% off", "50 off", "under_score", "plain"],
            },
        )
    )
    return database


class TestNonFiniteStrings:
    def test_nan_string_is_not_a_number(self, db):
        # Before the fix both >= and <= were true (NaN probed equal to all).
        ge = db.scalar("SELECT 'nan' >= 5")
        le = db.scalar("SELECT 'nan' <= 5")
        eq = db.scalar("SELECT 'nan' = 5")
        assert not (ge and le and not eq), "NaN-string must not compare equal to everything"
        # Exactly one of <, =, > holds: a deterministic trichotomy.
        lt = db.scalar("SELECT 'nan' < 5")
        gt = db.scalar("SELECT 'nan' > 5")
        assert sum(bool(v) for v in (lt, eq, gt)) == 1

    @pytest.mark.parametrize("text", ["nan", "inf", "Infinity", "-inf", "NAN"])
    def test_non_finite_strings_filtered_like_text(self, db, text):
        # A numeric range predicate must not implicitly cast these strings.
        result = db.sql(f"SELECT label FROM t WHERE value = '{text}' AND value = {7}")
        assert result.num_rows == 0

    def test_numeric_strings_still_cast(self, db):
        assert db.scalar("SELECT '7' >= 5") is True
        assert db.scalar("SELECT ' 7 ' = 7") is True


class TestCompareTotalOrder:
    def test_nan_sorts_after_every_number(self):
        nan = float("nan")
        assert _compare(nan, 5.0) == 1
        assert _compare(5.0, nan) == -1
        assert _compare(nan, float("inf")) == 1
        assert _compare(float("-inf"), nan) == -1
        assert _compare(nan, nan) == 0

    def test_infinities_compare_numerically(self):
        assert _compare(float("inf"), 1e308) == 1
        assert _compare(float("-inf"), -1e308) == -1
        assert _compare(float("inf"), float("inf")) == 0

    def test_sort_key_puts_nan_last_in_both_directions(self):
        values = [3.0, float("nan"), 1.0, float("inf"), -2.0]
        ascending = sorted(values, key=lambda v: _sort_key(v, False))
        assert math.isnan(ascending[-1])
        assert ascending[:4] == [-2.0, 1.0, 3.0, float("inf")]
        descending = sorted(values, key=lambda v: _sort_key(v, True))
        assert math.isnan(descending[-1])
        assert descending[:4] == [float("inf"), 3.0, 1.0, -2.0]

    def test_order_by_sorts_nan_rows_last(self):
        db = Database()
        db.register(
            Table.from_dict("m", {"k": ["a", "b", "c"], "v": [2.0, float("nan"), 1.0]})
        )
        result = db.sql("SELECT k FROM m ORDER BY v")
        assert result.to_dict() == {"k": ["c", "a", "b"]}


class TestLikeEscape:
    def test_parser_produces_like_node_with_escape(self):
        expr = parse_expression("name LIKE '5!%' ESCAPE '!'")
        assert isinstance(expr, Like)
        assert expr.escape is not None

    def test_literal_percent(self, db):
        result = db.sql("SELECT label FROM t WHERE discount LIKE '5!% off' ESCAPE '!'")
        assert result.to_dict() == {"label": ["a"]}

    def test_literal_underscore(self, db):
        result = db.sql("SELECT label FROM t WHERE discount LIKE 'under!_score' ESCAPE '!'")
        assert result.to_dict() == {"label": ["c"]}

    def test_unescaped_wildcards_still_work_alongside_escape(self, db):
        result = db.sql("SELECT label FROM t WHERE discount LIKE '%!%%' ESCAPE '!'")
        assert result.to_dict() == {"label": ["a"]}

    def test_escape_character_escapes_itself(self, db):
        database = Database()
        database.register(Table.from_dict("s", {"x": ["a!b", "ab"]}))
        result = database.sql("SELECT x FROM s WHERE x LIKE 'a!!b' ESCAPE '!'")
        assert result.to_dict() == {"x": ["a!b"]}

    def test_not_like_with_escape(self, db):
        result = db.sql("SELECT label FROM t WHERE discount NOT LIKE '%!%%' ESCAPE '!'")
        assert result.to_dict() == {"label": ["b", "c", "d"]}

    def test_backslash_escape_supported(self, db):
        result = db.sql(r"SELECT label FROM t WHERE discount LIKE '5\% off' ESCAPE '\'")
        assert result.to_dict() == {"label": ["a"]}

    def test_null_escape_is_null(self, db):
        result = db.sql("SELECT label FROM t WHERE discount LIKE '5%' ESCAPE NULL")
        assert result.num_rows == 0

    def test_dangling_escape_raises(self, db):
        with pytest.raises(ExecutionError):
            db.sql("SELECT label FROM t WHERE discount LIKE '5%!' ESCAPE '!'")

    def test_multi_character_escape_raises(self, db):
        with pytest.raises(ExecutionError):
            db.sql("SELECT label FROM t WHERE discount LIKE '5%' ESCAPE '!!'")

    def test_like_without_escape_unchanged(self, db):
        result = db.sql("SELECT label FROM t WHERE discount LIKE '5%'")
        assert result.to_dict() == {"label": ["a", "b"]}

    def test_like_over_aggregates_in_grouped_queries(self, db):
        # Regression: the Like node must recurse through the aggregate
        # evaluator — HAVING MAX(...) LIKE used to work when LIKE was a
        # BinaryOp and must keep working.
        database = Database()
        database.register(
            Table.from_dict("g", {"city": ["ann", "ann", "bo"], "name": ["alpha", "axe", "beta"]})
        )
        result = database.sql(
            "SELECT city FROM g GROUP BY city HAVING MAX(name) LIKE 'a%'"
        )
        assert result.to_dict() == {"city": ["ann"]}
        result = database.sql(
            "SELECT city, MAX(name) LIKE 'a!%' ESCAPE '!' AS m FROM g GROUP BY city"
        )
        assert result.to_dict() == {"city": ["ann", "bo"], "m": [False, False]}

    def test_like_to_regex_plain_behaviour_preserved(self):
        assert _like_to_regex("a%b_c") == "^a.*b.c$"
        assert _like_to_regex("a!%b", "!") == "^a%b$"
        assert _like_to_regex("a!_b", "!") == "^a_b$"
