"""Tests for the SQL tokenizer and parser."""

import pytest

from repro.dataframe.schema import ColumnType
from repro.sql.ast_nodes import (
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    CreateTableAs,
    DropTable,
    FunctionCall,
    Literal,
    Select,
    Star,
    WindowFunction,
)
from repro.sql.errors import ParseError
from repro.sql.parser import parse, parse_expression
from repro.sql.tokenizer import TokenType, tokenize


class TestTokenizer:
    def test_keywords_uppercased(self):
        tokens = tokenize("select * from t")
        assert tokens[0].value == "SELECT"
        assert tokens[0].type is TokenType.KEYWORD

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT 'it''s'")
        assert tokens[1].value == "it's"

    def test_quoted_identifier(self):
        tokens = tokenize('SELECT "Weird Name"')
        assert tokens[1].type is TokenType.IDENTIFIER
        assert tokens[1].value == "Weird Name"

    def test_numbers(self):
        tokens = tokenize("SELECT 1, 2.5, 1e3")
        values = [t.value for t in tokens if t.type is TokenType.NUMBER]
        assert values == ["1", "2.5", "1e3"]

    def test_comments_skipped(self):
        tokens = tokenize("SELECT 1 -- comment\n, 2 /* block */")
        numbers = [t for t in tokens if t.type is TokenType.NUMBER]
        assert len(numbers) == 2

    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT 'oops")

    def test_unexpected_character_raises(self):
        with pytest.raises(ParseError):
            tokenize("SELECT @x")


class TestExpressionParsing:
    def test_precedence(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_case_when(self):
        expr = parse_expression("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, CaseWhen)
        assert len(expr.whens) == 1
        assert isinstance(expr.default, Literal)

    def test_case_with_operand(self):
        expr = parse_expression("CASE a WHEN 'old' THEN 'new' END")
        assert isinstance(expr, CaseWhen)
        assert isinstance(expr.operand, ColumnRef)

    def test_cast(self):
        expr = parse_expression("CAST(a AS INTEGER)")
        assert isinstance(expr, Cast)
        assert expr.target is ColumnType.INTEGER

    def test_function_call(self):
        expr = parse_expression("UPPER(name)")
        assert isinstance(expr, FunctionCall)
        assert expr.name == "UPPER"

    def test_window_function(self):
        expr = parse_expression("ROW_NUMBER() OVER (PARTITION BY a ORDER BY b DESC)")
        assert isinstance(expr, WindowFunction)
        assert len(expr.window.partition_by) == 1
        assert expr.window.order_by[0].descending is True

    def test_in_list_and_between(self):
        parse_expression("a IN (1, 2, 3)")
        parse_expression("a NOT IN ('x')")
        parse_expression("a BETWEEN 1 AND 10")

    def test_is_null(self):
        parse_expression("a IS NULL")
        parse_expression("a IS NOT NULL")

    def test_qualified_column(self):
        expr = parse_expression("t.col")
        assert isinstance(expr, ColumnRef)
        assert expr.table == "t"

    def test_trailing_garbage_raises(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra stuff (")


class TestStatementParsing:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t WHERE a > 1 ORDER BY b LIMIT 5")
        assert isinstance(stmt, Select)
        assert stmt.limit == 5
        assert len(stmt.items) == 2

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        assert isinstance(stmt.items[0].expression, Star)

    def test_select_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct is True

    def test_group_by_having(self):
        stmt = parse("SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1")
        assert len(stmt.group_by) == 1
        assert stmt.having is not None

    def test_subquery_in_from(self):
        stmt = parse("SELECT x FROM (SELECT a AS x FROM t) sub")
        assert stmt.from_table.subquery is not None
        assert stmt.from_table.alias == "sub"

    def test_join(self):
        stmt = parse("SELECT * FROM a JOIN b ON a.k = b.k")
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"

    def test_left_join(self):
        stmt = parse("SELECT * FROM a LEFT JOIN b ON a.k = b.k")
        assert stmt.joins[0].kind == "LEFT"

    def test_qualify(self):
        stmt = parse("SELECT * FROM t QUALIFY ROW_NUMBER() OVER (PARTITION BY a ORDER BY b) = 1")
        assert stmt.qualify is not None

    def test_create_table_as(self):
        stmt = parse("CREATE OR REPLACE TABLE t2 AS SELECT * FROM t")
        assert isinstance(stmt, CreateTableAs)
        assert stmt.or_replace is True
        assert stmt.name == "t2"

    def test_drop_table(self):
        stmt = parse("DROP TABLE IF EXISTS t")
        assert isinstance(stmt, DropTable)
        assert stmt.if_exists is True

    def test_unknown_statement_raises(self):
        with pytest.raises(ParseError):
            parse("UPDATE t SET a = 1")

    def test_trailing_tokens_raise(self):
        with pytest.raises(ParseError):
            parse("SELECT 1 SELECT 2")
