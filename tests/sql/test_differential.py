"""Tier-1 gate: every emitted sqlite script agrees with the in-process run.

Each registry dataset and each golden scenario is cleaned once, its plan is
emitted twice — ``ReproDialect`` (replayed through the in-process executor)
and ``SqliteDialect`` (run through stdlib ``sqlite3``) — and every cell of
the final tables must agree under ``strict_differs``.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.datasets.registry import dataset_names
from repro.scenarios.catalog import builtin_specs
from repro.sql.differential import run_dataset, run_scenario

REPO_ROOT = Path(__file__).resolve().parents[2]


def assert_clean(result):
    detail = "\n".join(
        f"  row={m.row_id} col={m.column}: in_process={m.in_process!r} "
        f"sqlite={m.sqlite!r} ({m.note})"
        for m in result.mismatches[:10]
    )
    assert result.ok, (
        f"{result.kind} {result.name}: {len(result.mismatches)} cell mismatches "
        f"across {result.cells_compared} cells\n{detail}"
    )
    assert result.cells_compared > 0


@pytest.mark.parametrize("name", dataset_names())
def test_dataset_differential(name):
    assert_clean(run_dataset(name, seed=0, scale=0.05))


@pytest.mark.parametrize("name", sorted(builtin_specs()))
def test_scenario_differential(name):
    assert_clean(run_scenario(name))


def test_cli_reports_success():
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(
        [sys.executable, "-m", "repro.sql.differential",
         "--datasets", "beers", "--scenarios", "--json"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env=env,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    payload = json.loads(proc.stdout)
    assert [r["name"] for r in payload["results"]] == ["beers"]
    assert all(r["ok"] and r["mismatches"] == [] for r in payload["results"])
