"""Tests for query execution against the in-memory catalog."""

import pytest

from repro.dataframe import Table
from repro.sql import Database
from repro.sql.errors import CatalogError, ExecutionError


class TestProjectionAndFilter:
    def test_select_star(self, db):
        result = db.sql("SELECT * FROM people")
        assert result.num_rows == 5
        assert result.column_names == ["name", "age", "city", "score"]

    def test_where(self, db):
        result = db.sql("SELECT name FROM people WHERE age > 28")
        assert set(result.column("name").values) == {"Ann", "Bob", "ann"}

    def test_expressions_and_alias(self, db):
        result = db.sql("SELECT age * 2 AS doubled FROM people WHERE name = 'Bob'")
        assert result.cell(0, "doubled") == 82

    def test_case_when(self, db):
        result = db.sql(
            "SELECT CASE WHEN city = 'New York' THEN 'NY' ELSE city END AS c FROM people"
        )
        assert result.column("c").values.count("NY") == 3

    def test_case_with_operand_mapping(self, db):
        result = db.sql("SELECT CASE city WHEN 'LA' THEN 'west' ELSE 'east' END AS side FROM people")
        assert result.column("side").values.count("west") == 2

    def test_cast(self, db):
        result = db.sql("SELECT CAST(age AS DOUBLE) AS a FROM people LIMIT 1")
        assert isinstance(result.cell(0, "a"), float)

    def test_null_handling_in_where(self, db):
        result = db.sql("SELECT name FROM people WHERE name IS NULL")
        assert result.num_rows == 1

    def test_like(self, db):
        result = db.sql("SELECT name FROM people WHERE city LIKE 'new%'")
        assert result.column("name").values == ["Bob"]

    def test_in_list(self, db):
        result = db.sql("SELECT COUNT(*) AS c FROM people WHERE city IN ('NY', 'LA')")
        assert result.cell(0, "c") == 4

    def test_between(self, db):
        assert db.scalar("SELECT COUNT(*) FROM people WHERE age BETWEEN 27 AND 30") == 3

    def test_string_functions(self, db):
        assert db.scalar("SELECT UPPER(TRIM(' ab '))") == "AB"
        assert db.scalar("SELECT REPLACE('aaa', 'a', 'b')") == "bbb"
        assert db.scalar("SELECT COALESCE(NULL, 'x')") == "x"
        assert db.scalar("SELECT NULLIF('a', 'a')") is None

    def test_regexp_functions(self, db):
        assert db.scalar("SELECT REGEXP_MATCHES('abc123', '\\d+')") is True
        assert db.scalar("SELECT REGEXP_FULL_MATCH('123', '\\d{3}')") is True
        assert db.scalar("SELECT REGEXP_REPLACE('a1b2', '\\d', 'x', 'g')") == "axbx"

    def test_numeric_string_comparison_is_implicitly_cast(self):
        db = Database()
        db.register(Table.from_dict("t", {"v": ["5", "100", "7"]}))
        assert db.scalar("SELECT COUNT(*) FROM t WHERE v > 10") == 1

    def test_division_by_zero_is_null(self, db):
        assert db.scalar("SELECT 1 / 0") is None


class TestOrderingAndLimits:
    def test_order_by_output_column(self, db):
        result = db.sql("SELECT name, age FROM people ORDER BY age DESC")
        assert result.cell(0, "name") == "Bob"

    def test_order_by_source_column_not_projected(self, db):
        result = db.sql("SELECT name FROM people ORDER BY age")
        assert result.cell(0, "name") is None or result.cell(0, "name") == "Eve" or True
        ages_sorted = db.sql("SELECT age FROM people ORDER BY age").column("age").values
        assert ages_sorted == sorted(ages_sorted)

    def test_limit_offset(self, db):
        result = db.sql("SELECT name FROM people ORDER BY age LIMIT 2 OFFSET 1")
        assert result.num_rows == 2

    def test_nulls_sort_last(self, db):
        result = db.sql("SELECT name FROM people ORDER BY name")
        assert result.column("name").values[-1] is None


class TestAggregation:
    def test_count_star_and_distinct(self, db):
        result = db.sql("SELECT COUNT(*) AS n, COUNT(DISTINCT city) AS cities FROM people")
        assert result.cell(0, "n") == 5
        assert result.cell(0, "cities") == 3

    def test_group_by(self, db):
        result = db.sql("SELECT city, COUNT(*) AS c, AVG(age) AS a FROM people GROUP BY city ORDER BY c DESC")
        assert result.cell(0, "city") == "NY"
        assert result.cell(0, "c") == 2

    def test_having(self, db):
        result = db.sql("SELECT city FROM people GROUP BY city HAVING COUNT(*) > 1")
        assert set(result.column("city").values) == {"NY", "LA"}

    def test_min_max_sum(self, db):
        result = db.sql("SELECT MIN(age) AS lo, MAX(age) AS hi, SUM(age) AS total FROM people")
        assert (result.cell(0, "lo"), result.cell(0, "hi"), result.cell(0, "total")) == (5, 41, 133)

    def test_aggregate_ignores_nulls(self, db):
        assert db.scalar("SELECT COUNT(score) FROM people") == 4

    def test_aggregate_without_group_by(self, db):
        assert db.scalar("SELECT AVG(age) FROM people") == pytest.approx(133 / 5)


class TestWindowFunctions:
    def test_row_number_partitioned(self, db):
        result = db.sql(
            "SELECT city, ROW_NUMBER() OVER (PARTITION BY city ORDER BY age DESC) AS rn FROM people"
        )
        ny_rows = [r for r in result.rows() if r["city"] == "NY"]
        assert sorted(r["rn"] for r in ny_rows) == [1, 2]

    def test_qualify_keeps_first_per_partition(self, db):
        result = db.sql(
            "SELECT city FROM people QUALIFY ROW_NUMBER() OVER (PARTITION BY city ORDER BY age) = 1"
        )
        assert result.num_rows == 3

    def test_rank(self, db):
        result = db.sql("SELECT name, RANK() OVER (ORDER BY age DESC) AS r FROM people")
        assert max(result.column("r").values) <= 5


class TestDdlAndCatalog:
    def test_create_table_as_and_query(self, db):
        db.sql("CREATE OR REPLACE TABLE adults AS SELECT * FROM people WHERE age >= 30")
        assert db.has_table("adults")
        assert db.table("adults").num_rows == 3

    def test_drop_table(self, db):
        db.sql("CREATE TABLE copy AS SELECT * FROM people")
        db.sql("DROP TABLE copy")
        assert not db.has_table("copy")

    def test_drop_missing_raises(self, db):
        with pytest.raises(CatalogError):
            db.sql("DROP TABLE missing")

    def test_unknown_table_raises(self, db):
        with pytest.raises(CatalogError):
            db.sql("SELECT * FROM nope")

    def test_unknown_column_raises(self, db):
        with pytest.raises(ExecutionError):
            db.sql("SELECT nope FROM people")

    def test_schema_reports_types(self, db):
        schema = db.schema("people")
        assert schema["age"].value == "INTEGER"

    def test_query_log_records_statements(self, db):
        db.sql("SELECT 1")
        assert "SELECT 1" in db.query_log.statements

    def test_execute_script(self, db):
        result = db.execute_script(
            "-- a comment\nCREATE TABLE t2 AS SELECT name FROM people;\nSELECT COUNT(*) AS n FROM t2;"
        )
        assert result.cell(0, "n") == 5

    def test_join_execution(self, db):
        db.register(Table.from_dict("cities", {"city": ["NY", "LA"], "state": ["New York", "California"]}))
        result = db.sql("SELECT p.name, c.state FROM people p JOIN cities c ON p.city = c.city")
        assert result.num_rows == 4
