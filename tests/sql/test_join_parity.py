"""Hash-join / predicate-pushdown parity against the nested-loop baseline.

Every query here runs twice — once with the optimised plan (hash join +
WHERE pushdown, the default) and once with both optimisations disabled via
the :class:`Executor` flags — and the two result tables must be identical,
including row order.  The cases cover the join surface the optimiser has to
preserve: INNER/LEFT equi-joins, non-equi joins, empty inputs, NULL join
keys, implicit numeric/string key coercion, residual predicates, and
multi-join chains.
"""

from __future__ import annotations

import random

import pytest

from repro.dataframe import Table
from repro.sql import Database
from repro.sql.errors import ExecutionError
from repro.sql.parser import parse


def _database(tables, optimised: bool) -> Database:
    db = Database()
    for table in tables:
        db.register(table)
    db.executor.hash_join = optimised
    db.executor.predicate_pushdown = optimised
    return db


def run_both(tables, query):
    """Run ``query`` with and without the join optimisations; assert parity."""
    fast = _database(tables, optimised=True).sql(query)
    slow = _database(tables, optimised=False).sql(query)
    assert fast.column_names == slow.column_names
    assert fast.to_dict() == slow.to_dict()
    return fast


@pytest.fixture
def orders():
    return Table.from_dict(
        "orders",
        {
            "order_id": [1, 2, 3, 4, 5, 6],
            "customer": ["ann", "bob", "ann", None, "eve", "dan"],
            "amount": [10, 25, 40, 5, 60, 15],
        },
    )


@pytest.fixture
def customers():
    return Table.from_dict(
        "customers",
        {
            "customer": ["ann", "bob", "cid", None],
            "city": ["NY", "LA", "SF", "XX"],
        },
    )


class TestEquiJoinParity:
    def test_inner_equi_join(self, orders, customers):
        result = run_both(
            [orders, customers],
            "SELECT o.order_id, o.customer, c.city FROM orders o JOIN customers c ON o.customer = c.customer",
        )
        assert result.num_rows == 3  # ann twice, bob once; NULL keys never match

    def test_left_equi_join(self, orders, customers):
        result = run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o LEFT JOIN customers c ON o.customer = c.customer",
        )
        assert result.num_rows == 6
        unmatched = [r for r in result.rows() if r["city"] is None]
        assert len(unmatched) == 3  # the NULL-key row, 'eve', and 'dan'

    def test_duplicate_keys_fan_out(self):
        left = Table.from_dict("l", {"k": ["a", "a", "b"], "lv": [1, 2, 3]})
        right = Table.from_dict("r", {"k": ["a", "a", "a", "b"], "rv": [10, 20, 30, 40]})
        result = run_both([left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k")
        assert result.num_rows == 7

    def test_build_side_smaller_left(self):
        # Left much smaller than right: the hash table is built on the left.
        left = Table.from_dict("l", {"k": [1, 2], "lv": ["x", "y"]})
        right = Table.from_dict(
            "r", {"k": [2, 1, 2, 3, 1, 1, 2, 9, 9, 9], "rv": list(range(10))}
        )
        result = run_both([left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k")
        assert result.num_rows == 6

    def test_numeric_string_key_coercion(self):
        # '=' implicitly casts number-vs-numeric-string; the hash join must too.
        left = Table.from_dict("l", {"k": [1, 2, 3, 4], "lv": ["a", "b", "c", "d"]})
        right = Table.from_dict("r", {"k": ["1.0", "2", "x", "04"], "rv": ["p", "q", "r", "s"]})
        result = run_both([left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k")
        assert result.num_rows == 3  # 1='1.0', 2='2', 4='04'

    def test_string_string_keys_stay_textual(self):
        # Two strings never compare numerically: '5' <> '5.0'.
        left = Table.from_dict("l", {"k": ["5", "6"], "lv": ["a", "b"]})
        right = Table.from_dict("r", {"k": ["5.0", "6"], "rv": ["p", "q"]})
        result = run_both([left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k")
        assert result.num_rows == 1

    def test_boolean_keys_match_numbers_and_their_text_form(self):
        # '=' matches a bool against 1/0, '1.0'/'0', AND 'True'/'False' (the
        # str() fallback); the hash join must find all of them.
        left = Table.from_dict("l", {"k": [True, False, True, False], "lv": [1, 2, 3, 4]})
        right = Table.from_dict(
            "r", {"k": ["True", "False", 1, 0, "1.0", "x", True], "rv": list(range(7))}
        )
        result = run_both([left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k")
        # Each True row matches 'True', 1, '1.0', True; each False row
        # matches 'False', 0 — (4 + 2) matches x 2 rows per bool.
        assert result.num_rows == 12

    def test_null_keys_never_match(self):
        left = Table.from_dict("l", {"k": [None, None, 1], "lv": [1, 2, 3]})
        right = Table.from_dict("r", {"k": [None, 1], "rv": ["a", "b"]})
        inner = run_both([left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.k = r.k")
        assert inner.num_rows == 1
        outer = run_both([left, right], "SELECT l.lv, r.rv FROM l LEFT JOIN r ON l.k = r.k")
        assert outer.num_rows == 3


class TestResidualAndNonEquiParity:
    def test_equi_plus_residual_predicate(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o JOIN customers c "
            "ON o.customer = c.customer AND o.amount > 20",
        )

    def test_two_equalities_second_is_residual(self):
        left = Table.from_dict("l", {"a": [1, 1, 2], "b": ["x", "y", "x"], "lv": [1, 2, 3]})
        right = Table.from_dict("r", {"a": [1, 1, 2], "b": ["x", "x", "z"], "rv": [7, 8, 9]})
        result = run_both(
            [left, right], "SELECT l.lv, r.rv FROM l JOIN r ON l.a = r.a AND l.b = r.b"
        )
        assert result.num_rows == 2

    def test_left_join_residual_null_pads(self):
        left = Table.from_dict("l", {"k": [1, 2], "lv": ["a", "b"]})
        right = Table.from_dict("r", {"k": [1, 2], "rv": [5, 50]})
        result = run_both(
            [left, right],
            "SELECT l.lv, r.rv FROM l LEFT JOIN r ON l.k = r.k AND r.rv > 10",
        )
        assert result.num_rows == 2
        assert result.to_dict()["rv"] == [None, 50]

    def test_pure_non_equi_join_falls_back(self):
        left = Table.from_dict("l", {"v": [1, 5, 9]})
        right = Table.from_dict("r", {"w": [2, 6]})
        result = run_both([left, right], "SELECT l.v, r.w FROM l JOIN r ON l.v < r.w")
        assert result.num_rows == 3

    def test_or_condition_is_not_hashed(self):
        left = Table.from_dict("l", {"k": [1, 2], "v": [2, 9]})
        right = Table.from_dict("r", {"k": [1, 3], "w": [9, 2]})
        run_both([left, right], "SELECT * FROM l JOIN r ON l.k = r.k OR l.v = r.w")

    def test_same_side_equality_is_residual_not_hash_key(self):
        # l.k = l.v references only the left input; it must filter, not hash.
        left = Table.from_dict("l", {"k": [1, 2], "v": [1, 9]})
        right = Table.from_dict("r", {"k": [1, 2], "w": ["a", "b"]})
        result = run_both(
            [left, right], "SELECT l.k, r.w FROM l JOIN r ON l.k = r.k AND l.k = l.v"
        )
        assert result.num_rows == 1


class TestEmptyInputParity:
    def test_empty_right_inner(self, orders):
        empty = Table.from_dict("customers", {"customer": [], "city": []})
        result = run_both([orders, empty], "SELECT o.order_id, c.city FROM orders o JOIN customers c ON o.customer = c.customer")
        assert result.num_rows == 0
        assert result.column_names == ["order_id", "city"]

    def test_empty_right_left_join_keeps_right_schema(self, orders):
        # The pre-overhaul executor dropped the right side's columns entirely
        # when the right table was empty; they must null-pad instead.
        empty = Table.from_dict("customers", {"customer": [], "city": []})
        result = run_both(
            [orders, empty],
            "SELECT o.order_id, c.city FROM orders o LEFT JOIN customers c ON o.customer = c.customer",
        )
        assert result.num_rows == 6
        assert result.to_dict()["city"] == [None] * 6

    def test_empty_input_never_evaluates_key_expressions(self, customers):
        # The nested loop never evaluates the ON condition when either side
        # is empty; the hash join must not evaluate its key expressions
        # either — `-city` would raise on the string column.
        empty = Table.from_dict("orders", {"customer": [], "amount": []})
        result = run_both(
            [empty, customers],
            "SELECT o.amount FROM orders o JOIN customers c ON o.amount = -c.city",
        )
        assert result.num_rows == 0
        empty_right = Table.from_dict("r", {"city": [], "rid": []})
        result = run_both(
            [customers, empty_right],
            "SELECT c.customer, r.rid FROM customers c LEFT JOIN r ON -c.city = r.rid",
        )
        assert result.num_rows == 4
        assert result.to_dict()["rid"] == [None] * 4

    def test_empty_left(self, customers):
        empty = Table.from_dict("orders", {"customer": [], "amount": []})
        for kind in ("JOIN", "LEFT JOIN"):
            result = run_both(
                [empty, customers],
                f"SELECT o.amount, c.city FROM orders o {kind} customers c ON o.customer = c.customer",
            )
            assert result.num_rows == 0


class TestPushdownParity:
    def test_left_side_where_pushdown(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o JOIN customers c "
            "ON o.customer = c.customer WHERE o.amount > 20",
        )

    def test_right_side_where_pushdown_inner(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o JOIN customers c "
            "ON o.customer = c.customer WHERE c.city = 'NY'",
        )

    def test_right_side_where_not_pushed_below_left_join(self, orders, customers):
        # WHERE on the right side of a LEFT JOIN filters null-padded rows; a
        # naive pushdown would keep them.
        result = run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.customer WHERE c.city = 'NY'",
        )
        assert result.num_rows == 2

    def test_is_null_probe_survives_left_join(self, orders, customers):
        # The anti-join idiom: IS NULL on the right side references the padded
        # value, so it must never be pushed below the LEFT join.
        result = run_both(
            [orders, customers],
            "SELECT o.order_id FROM orders o LEFT JOIN customers c "
            "ON o.customer = c.customer WHERE c.city IS NULL",
        )
        assert result.num_rows == 3  # the NULL-key row, 'eve', and 'dan'

    def test_mixed_where_splits_by_side(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o JOIN customers c "
            "ON o.customer = c.customer "
            "WHERE o.amount > 5 AND c.city <> 'SF' AND o.order_id < c.order_id + 100",
        )

    def test_ambiguous_unqualified_column_stays_post_join(self):
        # 'customer' exists on both sides; the merged row resolves it to the
        # left value, and pushdown must not change that.
        left = Table.from_dict("l", {"customer": ["a", "b"], "v": [1, 2]})
        right = Table.from_dict("r", {"customer": ["b", "B"], "w": [8, 9]})
        run_both(
            [left, right],
            "SELECT * FROM l JOIN r ON l.v < r.w WHERE customer = 'b'",
        )


class TestMultiJoinParity:
    def test_three_way_chain(self):
        a = Table.from_dict("a", {"id": [1, 2, 3], "av": ["x", "y", "z"]})
        b = Table.from_dict("b", {"id": [2, 3, 4], "bv": ["p", "q", "r"]})
        c = Table.from_dict("c", {"id": [3, 4], "cv": ["m", "n"]})
        result = run_both(
            [a, b, c],
            "SELECT a.av, b.bv, c.cv FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.id = c.id",
        )
        assert result.num_rows == 2

    def test_chain_with_where_on_middle_table(self):
        a = Table.from_dict("a", {"id": [1, 2, 3, 4], "av": ["w", "x", "y", "z"]})
        b = Table.from_dict("b", {"id": [1, 2, 3], "bv": [10, 20, 30]})
        c = Table.from_dict("c", {"id": [1, 3], "cv": ["m", "n"]})
        run_both(
            [a, b, c],
            "SELECT a.av, b.bv, c.cv FROM a JOIN b ON a.id = b.id "
            "JOIN c ON a.id = c.id WHERE b.bv >= 20",
        )

    def test_subquery_join_input(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT o.order_id, c.city FROM orders o "
            "JOIN (SELECT customer, city FROM customers WHERE city <> 'XX') c "
            "ON o.customer = c.customer",
        )


class TestRandomisedParity:
    def test_randomised_equi_joins(self):
        rng = random.Random(7)
        for trial in range(5):
            n_left, n_right = rng.randint(0, 40), rng.randint(0, 40)
            key_pool = [None, 1, 2, 3, "3", "3.0", 4.0, "x", ""]
            left = Table.from_dict(
                "l",
                {
                    "k": [rng.choice(key_pool) for _ in range(n_left)],
                    "lv": list(range(n_left)),
                },
            )
            right = Table.from_dict(
                "r",
                {
                    "k": [rng.choice(key_pool) for _ in range(n_right)],
                    "rv": list(range(n_right)),
                },
            )
            for kind in ("JOIN", "LEFT JOIN"):
                run_both(
                    [left, right],
                    f"SELECT l.k, l.lv, r.rv FROM l {kind} r ON l.k = r.k",
                )

    def test_projection_star_after_join(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT * FROM orders o JOIN customers c ON o.customer = c.customer",
        )

    def test_aggregation_over_join(self, orders, customers):
        run_both(
            [orders, customers],
            "SELECT c.city, COUNT(*) AS n, SUM(o.amount) AS total "
            "FROM orders o JOIN customers c ON o.customer = c.customer "
            "GROUP BY c.city ORDER BY n DESC, c.city",
        )


class TestScanKeyHygiene:
    def test_single_table_scan_has_no_qualified_duplicates(self, orders):
        db = _database([orders], optimised=True)
        rows, columns, where = db.executor._resolve_from(parse("SELECT * FROM orders o"))
        assert columns == ["order_id", "customer", "amount"]
        assert all(set(row) == set(columns) for row in rows)

    def test_qualified_reference_still_resolves_without_join(self, orders):
        db = _database([orders], optimised=True)
        result = db.sql("SELECT o.amount FROM orders o WHERE o.order_id = 2")
        assert result.to_dict() == {"amount": [25]}

    def test_unknown_column_still_raises(self, orders):
        db = _database([orders], optimised=True)
        with pytest.raises(ExecutionError):
            db.sql("SELECT missing FROM orders")
