"""The plan phase: stage pipelines, engine eligibility, description."""

from repro.sql.parser import parse
from repro.sql.planner import plan_select


def stages_of(sql: str):
    plan = plan_select(parse(sql))
    return plan, [type(stage).__name__ for stage in plan.stages()]


class TestStagePipelines:
    def test_plain_scan_project(self):
        plan, stages = stages_of("SELECT name FROM people")
        assert stages == ["ScanNode", "ProjectNode"]
        assert plan.columnar_eligible

    def test_full_single_table_pipeline(self):
        plan, stages = stages_of(
            "SELECT DISTINCT name FROM people WHERE age > 10 "
            "QUALIFY ROW_NUMBER() OVER (PARTITION BY city ORDER BY age) = 1 "
            "ORDER BY name LIMIT 3 OFFSET 1"
        )
        assert stages == [
            "ScanNode",
            "FilterNode",
            "WindowNode",
            "ProjectNode",
            "QualifyNode",
            "DistinctNode",
            "OrderNode",
            "LimitNode",
        ]
        assert plan.columnar_eligible

    def test_group_by_replaces_window_project_qualify(self):
        plan, stages = stages_of(
            "SELECT city, COUNT(*) FROM people GROUP BY city HAVING COUNT(*) > 1"
        )
        assert stages == ["ScanNode", "GroupNode"]
        assert plan.group is not None
        assert plan.group.having is not None

    def test_bare_aggregate_plans_a_group_stage(self):
        plan, _ = stages_of("SELECT COUNT(*) FROM people")
        assert plan.group is not None
        assert plan.group.keys == []

    def test_join_pipeline(self):
        plan, stages = stages_of(
            "SELECT a.name FROM people a JOIN people b ON a.name = b.name WHERE a.age > 1"
        )
        assert stages[:3] == ["ScanNode", "JoinNode", "FilterNode"]

    def test_windows_collected_from_items_and_qualify_once(self):
        plan, _ = stages_of(
            "SELECT name, ROW_NUMBER() OVER (ORDER BY age) AS rn FROM people "
            "QUALIFY RANK() OVER (ORDER BY age) = 1"
        )
        assert plan.window is not None
        assert len(plan.windows) == 2


class TestColumnarEligibility:
    def test_single_table_is_eligible(self):
        plan, _ = stages_of("SELECT name FROM people WHERE age > 1")
        assert plan.columnar_eligible
        assert plan.columnar_blocked_by is None

    def test_no_from_is_blocked(self):
        plan, _ = stages_of("SELECT 1 + 1")
        assert not plan.columnar_eligible
        assert plan.columnar_blocked_by == "no FROM clause"

    def test_joins_are_blocked(self):
        plan, _ = stages_of("SELECT * FROM a JOIN b ON a.x = b.x")
        assert not plan.columnar_eligible
        assert plan.columnar_blocked_by == "joins"

    def test_subquery_from_is_eligible(self):
        # The inner SELECT gets its own plan when it executes.
        plan, _ = stages_of("SELECT name FROM (SELECT name FROM people) sub")
        assert plan.columnar_eligible


class TestDescribe:
    def test_describe_lists_stages_in_order(self):
        plan, _ = stages_of("SELECT name FROM people WHERE age > 1 ORDER BY name")
        text = plan.describe()
        lines = text.splitlines()
        assert lines[0] == "SelectPlan engine=columnar"
        assert "Scan(people)" in lines[1]
        assert "Filter" in lines[2]
        assert "Project" in lines[3]
        assert "Order" in lines[4]

    def test_describe_names_the_blocker(self):
        plan, _ = stages_of("SELECT * FROM a JOIN b ON a.x = b.x")
        assert "blocked by: joins" in plan.describe().splitlines()[0]
