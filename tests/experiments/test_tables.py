"""Layout tests for the table formatters and figure helpers (no systems run)."""

from __future__ import annotations

import pytest

from repro.evaluation.metrics import Scores
from repro.evaluation.runner import SystemResult
from repro.experiments.figures import ascii_bar_chart, f1_series
from repro.experiments.matrix import UnknownNameError
from repro.experiments.table1 import PAPER_TABLE1, format_table1, run_table1
from repro.experiments.table2 import PAPER_TABLE2, format_table2
from repro.experiments.table3 import format_table3, run_table3


def result(system, dataset, p, r, f, sampled=None, notes=""):
    return SystemResult(
        system=system,
        dataset=dataset,
        scores=Scores(precision=p, recall=r, f1=f),
        sampled_rows=sampled,
        notes=notes,
    )


@pytest.fixture
def results():
    return [
        result("HoloClean", "hospital", 1.0, 0.46, 0.63),
        result("Cocoon", "hospital", 0.87, 0.93, 0.90),
        result("HoloClean", "movies", 0.0, 0.0, 0.0, sampled=1000),
        result("Cocoon", "movies", 0.91, 0.83, 0.87),
    ]


class TestFormatTable1:
    def test_layout(self, results):
        text = format_table1(results, include_paper=False)
        lines = text.splitlines()
        assert lines[0].startswith("Table 1")
        header = lines[1]
        assert header.startswith("System")
        assert header.index("hospital") < header.index("movies")
        # Systems appear in presentation order, one row each.
        holoclean_row = next(line for line in lines if line.startswith("HoloClean"))
        cocoon_row = next(line for line in lines if line.startswith("Cocoon"))
        assert lines.index(holoclean_row) < lines.index(cocoon_row)
        assert "0.63" in holoclean_row and "0.90" in cocoon_row

    def test_sampled_rows_annotated_with_star(self, results):
        text = format_table1(results, include_paper=False)
        holoclean_row = next(line for line in text.splitlines() if line.startswith("HoloClean"))
        assert "*" in holoclean_row
        cocoon_row = next(line for line in text.splitlines() if line.startswith("Cocoon"))
        assert "*" not in cocoon_row
        assert "first 1000 rows" in text

    def test_include_paper_appends_reference_f1(self, results):
        with_paper = format_table1(results, include_paper=True)
        without = format_table1(results, include_paper=False)
        assert "Paper-reported F1" in with_paper
        assert "Paper-reported F1" not in without
        paper_f1 = f"{PAPER_TABLE1['Cocoon']['hospital'][2]:.2f}"
        assert paper_f1 in with_paper.split("Paper-reported F1")[1]

    def test_missing_cells_leave_blanks(self):
        text = format_table1([result("Cocoon", "hospital", 0.9, 0.9, 0.9)], include_paper=False)
        assert "HoloClean" not in text

    def test_unknown_system_restriction_raises(self):
        with pytest.raises(UnknownNameError, match="Imaginary"):
            run_table1(scale=0.03, systems=["Imaginary"])


class TestFormatTable2:
    def test_layout_and_paper_reference(self):
        rows = {
            "hospital": {"size": "50 x 19", "typo": 6, "fd_violation": 10,
                         "column_type": 120, "inconsistency": 0, "dmv": 8, "misplacement": 0},
        }
        text = format_table2(rows, include_paper=True)
        lines = text.splitlines()
        assert lines[0].startswith("Table 2")
        assert lines[1].startswith("Dataset")
        assert "50 x 19" in text
        assert "Paper-reported counts" in text
        assert str(PAPER_TABLE2["movies"]["column_type"]) in text
        assert "Paper-reported" not in format_table2(rows, include_paper=False)


class TestFormatTable3:
    def test_layout_and_paper_reference(self, results):
        text = format_table3(results, include_paper=True)
        assert text.splitlines()[0].startswith("Table 3")
        assert "Approach" in text
        assert "Paper-reported F1" in text
        assert "Paper-reported" not in format_table3(results, include_paper=False)

    def test_unknown_system_restriction_raises(self):
        with pytest.raises(UnknownNameError, match="Imaginary"):
            run_table3(scale=0.03, systems=["Imaginary"])


class TestFigures:
    def test_f1_series_shape(self, results):
        series = f1_series(results)
        assert series["Cocoon"]["hospital"] == 0.90
        assert set(series) == {"HoloClean", "Cocoon"}
        assert set(series["Cocoon"]) == {"hospital", "movies"}

    def test_ascii_bar_chart_scales_bars(self, results):
        chart = ascii_bar_chart(f1_series(results), width=10)
        lines = chart.splitlines()
        assert lines[0] == "F1 comparison across systems"
        assert "hospital" in chart and "movies" in chart
        cocoon_line = next(
            line for line in lines if line.strip().startswith("Cocoon") and "0.90" in line
        )
        assert "#" * 9 in cocoon_line
        zero_line = next(line for line in lines if "0.00" in line)
        assert "#" not in zero_line

    def test_empty_series_renders_header_only(self):
        assert ascii_bar_chart({}) == "F1 comparison across systems"
