"""The experiment-matrix engine: grid building, dedup, resume, accounting."""

from __future__ import annotations

import json

import pytest

from repro.datasets import dataset_names
from repro.experiments.matrix import (
    CENSUS_SYSTEM,
    CellResult,
    CellSpec,
    ExperimentMatrix,
    MatrixJobError,
    ResultsStore,
    UnknownNameError,
    build_grid,
    canonical_json,
    diff_golden,
    golden_payload,
    validate_names,
)

SCALE = 0.04
SEED = 11


class TestGridBuilding:
    def test_full_grid_shape(self):
        cells = build_grid(seed=0, scale=1.0)
        # table1: 5 datasets x 5 systems; table2: 2 census cells; table3: 2 x 5.
        assert len(cells) == 25 + 2 + 10
        assert sum(1 for c in cells if c.table == "table2") == 2
        assert all(c.system == CENSUS_SYSTEM for c in cells if c.table == "table2")

    def test_tables23_default_to_paper_datasets(self):
        cells = build_grid(seed=0, scale=1.0)
        assert {c.dataset for c in cells if c.table == "table2"} == {"hospital", "movies"}
        assert {c.dataset for c in cells if c.table == "table3"} == {"hospital", "movies"}

    def test_explicit_datasets_are_honoured_verbatim_for_every_table(self):
        # A requested benchmark is never silently dropped, even for the
        # tables whose *default* is the paper pair.
        cells = build_grid(datasets=["beers"], seed=0, scale=1.0)
        assert {c.table for c in cells} == {"table1", "table2", "table3"}
        assert {c.dataset for c in cells} == {"beers"}

    def test_cell_ids_are_unique_and_scoped_by_seed_and_scale(self):
        a = CellSpec("table1", "hospital", "Cocoon", seed=0, scale=0.1)
        b = CellSpec("table1", "hospital", "Cocoon", seed=1, scale=0.1)
        c = CellSpec("table1", "hospital", "Cocoon", seed=0, scale=0.2)
        assert len({a.cell_id, b.cell_id, c.cell_id}) == 3
        cells = build_grid(seed=0, scale=1.0)
        assert len({cell.cell_id for cell in cells}) == len(cells)

    def test_table1_and_table3_share_repair_keys(self):
        one = CellSpec("table1", "hospital", "Cocoon", 0, 0.1)
        three = CellSpec("table3", "hospital", "Cocoon", 0, 0.1)
        assert one.repair_key == three.repair_key
        assert one.cell_id != three.cell_id

    def test_unknown_names_raise_with_choices(self):
        with pytest.raises(UnknownNameError) as excinfo:
            build_grid(datasets=["hospitals"])
        assert "hospitals" in str(excinfo.value)
        for valid in dataset_names():
            assert valid in str(excinfo.value)
        with pytest.raises(UnknownNameError):
            build_grid(systems=["GPT"])
        with pytest.raises(UnknownNameError):
            build_grid(tables=["table9"])

    def test_validate_names_passthrough(self):
        assert validate_names("dataset", None, ["a", "b"]) == ["a", "b"]
        assert validate_names("dataset", ["b"], ["a", "b"]) == ["b"]


class TestMatrixRun:
    @pytest.fixture(scope="class")
    def run(self):
        matrix = ExperimentMatrix(
            datasets=["hospital"], seed=SEED, scale=SCALE, workers=2
        )
        return matrix.run()

    def test_every_cell_completes(self, run):
        assert run.stats.cells_total == 5 + 1 + 5  # table1 + census + table3
        assert run.stats.cells_run == run.stats.cells_total
        assert run.stats.cells_resumed == 0
        assert [c.cell_id for c in run.cells] == [
            s.cell_id for s in build_grid(datasets=["hospital"], seed=SEED, scale=SCALE)
        ]

    def test_repair_dedup_groups_table1_and_table3(self, run):
        # 5 systems on hospital + 1 census job: the table3 cells piggyback.
        assert run.stats.repair_groups == 6

    def test_per_cell_accounting(self, run):
        cocoon = next(
            c for c in run.cells if c.system == "Cocoon" and c.table == "table1"
        )
        assert cocoon.deterministic["llm_calls"] > 0
        assert cocoon.deterministic["detected"] > 0
        assert cocoon.deterministic["repaired"] > 0
        assert cocoon.timing["runtime_seconds"] > 0
        assert run.stats.llm_calls >= cocoon.deterministic["llm_calls"]
        assert run.stats.job_seconds_total > 0
        assert run.stats.wall_seconds > 0

    def test_table3_scores_differ_from_table1_on_shared_repair(self, run):
        one = next(c for c in run.cells if c.system == "Cocoon" and c.table == "table1")
        three = next(c for c in run.cells if c.system == "Cocoon" and c.table == "table3")
        # Same repair, different conventions: the error denominators differ.
        assert one.deterministic["total_errors"] != three.deterministic["total_errors"]

    def test_as_system_result_roundtrip(self, run):
        results = run.results_for("table1")
        assert [r.system for r in results] == [
            "HoloClean", "Raha+Baran", "CleanAgent", "RetClean", "Cocoon"
        ]
        census = next(c for c in run.cells if c.table == "table2")
        assert census.as_system_result() is None
        assert census.deterministic["column_type"] > 0

    def test_golden_payload_has_no_timing(self, run):
        payload = run.golden_payload()
        text = canonical_json(payload)
        assert "runtime_seconds" not in text
        assert "job_seconds" not in text
        assert "wall" not in text
        assert set(payload["cells"]) == {c.cell_id for c in run.cells}


class TestResume:
    def test_interrupted_grid_resumes_from_store(self, tmp_path):
        path = tmp_path / "results.json"
        first = ExperimentMatrix(
            tables=["table1"], datasets=["hospital"], systems=["CleanAgent", "RetClean"],
            seed=SEED, scale=SCALE, results_path=path,
        ).run()
        assert first.stats.cells_run == 2
        second = ExperimentMatrix(
            tables=["table1"], datasets=["hospital"],
            systems=["CleanAgent", "RetClean", "HoloClean"],
            seed=SEED, scale=SCALE, results_path=path,
        ).run()
        assert second.stats.cells_resumed == 2
        assert second.stats.cells_run == 1
        resumed = [c for c in second.cells if c.resumed]
        assert {c.system for c in resumed} == {"CleanAgent", "RetClean"}
        # Resumed deterministic payloads are byte-identical to the originals.
        by_id = {c.cell_id: c for c in first.cells}
        for cell in resumed:
            assert cell.deterministic == by_id[cell.cell_id].deterministic

    def test_no_resume_recomputes(self, tmp_path):
        path = tmp_path / "results.json"
        config = dict(tables=["table1"], datasets=["hospital"], systems=["RetClean"],
                      seed=SEED, scale=SCALE, results_path=path)
        ExperimentMatrix(**config).run()
        rerun = ExperimentMatrix(resume=False, **config).run()
        assert rerun.stats.cells_resumed == 0
        assert rerun.stats.cells_run == 1

    def test_store_survives_and_orders_cells(self, tmp_path):
        path = tmp_path / "results.json"
        store = ResultsStore(path)
        store.configure({"seed": 1})
        store.record(CellResult("table1", "hospital", "Cocoon", 1, 0.1, {"f1": 0.5}))
        store.record(CellResult("table1", "beers", "Cocoon", 1, 0.1, {"f1": 0.25}))
        document = json.loads(path.read_text())
        assert document["schema_version"] == 1
        assert list(document["cells"]) == sorted(document["cells"])
        reloaded = ResultsStore(path)
        assert len(reloaded) == 2
        assert reloaded.get("table1/hospital/Cocoon/seed=1/scale=0.1")["deterministic"] == {"f1": 0.5}


class TestFailuresAndDiff:
    def test_failing_cell_raises_matrix_job_error(self, monkeypatch):
        matrix = ExperimentMatrix(
            tables=["table1"], datasets=["hospital"], systems=["RetClean"],
            seed=SEED, scale=SCALE,
        )

        def boom(*args, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(
            "repro.experiments.matrix.load_dataset", boom
        )
        with pytest.raises(MatrixJobError) as excinfo:
            matrix.run()
        assert "synthetic failure" in str(excinfo.value)

    def test_diff_golden_reports_field_level_changes(self):
        cells = [CellResult("table1", "hospital", "Cocoon", 0, 0.1, {"f1": 0.9, "notes": "x"})]
        expected = golden_payload(cells, {"seed": 0})
        changed = [CellResult("table1", "hospital", "Cocoon", 0, 0.1, {"f1": 0.8, "notes": "x"})]
        actual = golden_payload(changed, {"seed": 0})
        differences = diff_golden(expected, actual)
        assert len(differences) == 1
        assert "f1" in differences[0] and "0.9" in differences[0] and "0.8" in differences[0]
        assert diff_golden(expected, expected) == []
        missing = diff_golden(expected, golden_payload([], {"seed": 0}))
        assert any("missing from the run" in line for line in missing)
