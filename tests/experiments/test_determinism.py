"""Parallel grids must be byte-identical to sequential grids.

The engine's determinism argument (see ``repro/experiments/matrix.py``):
jobs are independent deterministic computations, and the shared prompt cache
is namespaced per repair unit so no cache entry ever crosses between jobs.
These tests check the conclusion empirically — the ``--workers 4`` grid
produces exactly the deterministic fields the ``--workers 1`` grid does,
repeated three times to give thread interleavings a chance to differ.
"""

from __future__ import annotations

import pytest

from repro.experiments.matrix import ExperimentMatrix, canonical_json
from repro.experiments.table1 import run_table1
from repro.experiments.table3 import run_table3

SCALE = 0.04
SEED = 5
DATASETS = ["hospital", "flights"]
REPEATS = 3


def _grid(workers: int) -> str:
    run = ExperimentMatrix(
        datasets=DATASETS, seed=SEED, scale=SCALE, workers=workers
    ).run()
    return canonical_json(run.golden_payload())


@pytest.fixture(scope="module")
def sequential_payload() -> str:
    return _grid(workers=1)


class TestParallelDeterminism:
    @pytest.mark.parametrize("attempt", range(REPEATS))
    def test_workers4_matches_sequential(self, sequential_payload, attempt):
        assert _grid(workers=4) == sequential_payload

    def test_worker_count_does_not_leak_into_the_payload(self, sequential_payload):
        assert _grid(workers=2) == sequential_payload


class TestMatrixMatchesLegacySequentialRunners:
    """The engine (with repair dedup and the shared cache) must score exactly
    what the plain sequential ``run_table1``/``run_table3`` loops score."""

    @pytest.fixture(scope="class")
    def run(self):
        return ExperimentMatrix(datasets=DATASETS, seed=SEED, scale=SCALE, workers=4).run()

    @staticmethod
    def _fields(results):
        return [
            (r.system, r.dataset, r.scores.as_row(), r.scores.correct_repairs,
             r.scores.total_repairs, r.scores.total_errors, r.sampled_rows, r.notes)
            for r in results
        ]

    def test_table1_parity(self, run):
        legacy = run_table1(scale=SCALE, seed=SEED, datasets=DATASETS)
        assert self._fields(run.results_for("table1")) == self._fields(legacy)

    def test_table3_parity(self, run):
        legacy = run_table3(scale=SCALE, seed=SEED, datasets=DATASETS)
        assert self._fields(run.results_for("table3")) == self._fields(legacy)
