"""``python -m repro.experiments`` argument handling and golden workflow."""

from __future__ import annotations

import json

import pytest

from repro.experiments.__main__ import build_parser, main

SCALE = "0.03"
ARGS_FAST = ["--datasets", "hospital", "--systems", "CleanAgent", "RetClean", "--scale", SCALE]


class TestArgumentValidation:
    def test_unknown_dataset_exits_nonzero_listing_choices(self, capsys):
        code = main(["table1", "--datasets", "hospitals", "--scale", SCALE])
        captured = capsys.readouterr()
        assert code == 2
        assert "hospitals" in captured.err
        assert "hospital" in captured.err and "movies" in captured.err
        assert captured.out == ""  # nothing ran

    def test_unknown_system_exits_nonzero_listing_choices(self, capsys):
        code = main(["table1", "--systems", "Cocoon", "ChatGPT", "--scale", SCALE])
        captured = capsys.readouterr()
        assert code == 2
        assert "ChatGPT" in captured.err
        assert "HoloClean" in captured.err and "Cocoon" in captured.err

    def test_unknown_artifact_rejected_by_argparse(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["table9"])
        assert excinfo.value.code == 2

    def test_refresh_requires_golden(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["matrix", "--refresh"])
        assert excinfo.value.code == 2

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["table1", "--workers", "0"])

    def test_parser_exposes_all_artifacts(self):
        parser = build_parser()
        text = parser.format_help()
        for artifact in ("table1", "table2", "table3", "figure-f1", "matrix", "all"):
            assert artifact in text


class TestArtifactOutput:
    def test_table1_prints_the_table(self, capsys):
        assert main(["table1"] + ARGS_FAST) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "CleanAgent" in out and "RetClean" in out
        assert "Cocoon" not in out.split("Paper-reported")[0]

    def test_figure_f1_prints_the_chart(self, capsys):
        assert main(["figure-f1"] + ARGS_FAST) == 0
        assert "F1 comparison across systems" in capsys.readouterr().out

    def test_matrix_prints_summary_and_writes_store(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        code = main(["matrix", "--workers", "2", "--out", str(out_path)] + ARGS_FAST)
        captured = capsys.readouterr()
        assert code == 0
        assert "matrix:" in captured.out
        document = json.loads(out_path.read_text())
        assert document["schema_version"] == 1
        assert len(document["cells"]) > 0

    def test_matrix_resumes_from_the_store(self, tmp_path, capsys):
        out_path = tmp_path / "results.json"
        assert main(["matrix", "--out", str(out_path)] + ARGS_FAST) == 0
        capsys.readouterr()
        assert main(["matrix", "--out", str(out_path)] + ARGS_FAST) == 0
        assert "0 run" in capsys.readouterr().out


class TestGoldenWorkflow:
    def test_refresh_then_check_then_tamper(self, tmp_path, capsys):
        golden_path = tmp_path / "GOLDEN.json"
        refresh = ["matrix", "--golden", "--refresh", "--golden-path", str(golden_path)] + ARGS_FAST
        assert main(refresh) == 0
        assert "refreshed" in capsys.readouterr().out

        # The check reruns the config recorded in the corpus, whatever the CLI says.
        check = ["matrix", "--golden", "--golden-path", str(golden_path), "--workers", "2"]
        assert main(check) == 0
        assert "passed" in capsys.readouterr().out

        document = json.loads(golden_path.read_text())
        cell_id = next(iter(document["cells"]))
        document["cells"][cell_id]["total_errors"] = 99999
        golden_path.write_text(json.dumps(document))
        assert main(check) == 1
        drift = capsys.readouterr().out
        assert "drift" in drift and "99999" in drift and cell_id in drift

    def test_check_without_corpus_exits_2(self, tmp_path, capsys):
        code = main(["matrix", "--golden", "--golden-path", str(tmp_path / "missing.json")])
        assert code == 2
        assert "not found" in capsys.readouterr().err

    def test_check_rejects_explicit_grid_flags(self, capsys):
        # A --golden check runs the corpus config; restricting it would
        # silently check something else, so the flags are rejected.
        with pytest.raises(SystemExit) as excinfo:
            main(["matrix", "--golden", "--scale", "0.5", "--datasets", "hospital"])
        assert excinfo.value.code == 2
