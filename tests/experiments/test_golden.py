"""The golden regression gate: every PR must reproduce the committed corpus.

``GOLDEN_experiments.json`` pins the deterministic fields (scores, counts,
notes — never wall-clock) of the full experiment grid at scale 0.05.  These
tests re-run that grid and assert byte-identical agreement, so a regression
in any operator, baseline, dataset generator or metric shows up as a failing
tier-1 test with a field-level diff.

The sanctioned way to change the corpus (after verifying the drift is an
intended improvement) is::

    python -m repro.experiments matrix --scale 0.05 --workers 4 --golden --refresh
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.experiments.matrix import (
    ExperimentMatrix,
    canonical_json,
    diff_golden,
    load_golden,
)

GOLDEN_PATH = Path(__file__).resolve().parents[2] / "GOLDEN_experiments.json"

#: The configuration the corpus is pinned at (None = the library default,
#: i.e. all five datasets for Table 1, the paper pair for Tables 2/3, all
#: five systems).  Refreshing the corpus at a different scale/seed or a
#: restricted grid (accidentally or not) fails this suite, not just CI.
PINNED_CONFIG = {
    "tables": ["table1", "table2", "table3"],
    "datasets": None,
    "systems": None,
    "seed": 0,
    "scale": 0.05,
}


@pytest.fixture(scope="module")
def golden():
    assert GOLDEN_PATH.exists(), (
        f"{GOLDEN_PATH} is missing; regenerate it with "
        "`python -m repro.experiments matrix --scale 0.05 --golden --refresh`"
    )
    return load_golden(GOLDEN_PATH)


@pytest.fixture(scope="module")
def fresh_run(golden):
    config = golden["config"]
    matrix = ExperimentMatrix(
        tables=config["tables"],
        datasets=config["datasets"],  # None round-trips to the library default
        systems=config["systems"],
        seed=config["seed"],
        scale=config["scale"],
        workers=2,
    )
    return matrix.run()


class TestGoldenCorpus:
    def test_committed_config_is_the_pinned_one(self, golden):
        assert golden["config"] == PINNED_CONFIG

    def test_corpus_covers_the_full_grid(self, golden):
        cells = golden["cells"]
        assert len(cells) == 25 + 2 + 10
        assert sum(1 for cell_id in cells if cell_id.startswith("table2/")) == 2

    def test_corpus_contains_no_wall_clock(self, golden):
        text = GOLDEN_PATH.read_text(encoding="utf-8")
        assert "runtime_seconds" not in text
        assert "job_seconds" not in text

    def test_fresh_run_matches_exactly(self, golden, fresh_run):
        differences = diff_golden(golden, fresh_run.golden_payload())
        assert differences == [], (
            "golden corpus drift:\n  " + "\n  ".join(differences) +
            "\nIf this change is intended, refresh the corpus with "
            "`python -m repro.experiments matrix --scale 0.05 --golden --refresh` "
            "and explain the drift in the PR."
        )

    def test_fresh_run_matches_byte_for_byte(self, golden, fresh_run):
        assert canonical_json(fresh_run.golden_payload()) == canonical_json(golden)

    def test_committed_file_is_canonical_json(self, golden):
        assert GOLDEN_PATH.read_text(encoding="utf-8") == canonical_json(golden)

    def test_paper_ordering_cocoon_wins_where_the_paper_says(self, golden):
        """Coarse sanity on top of exactness: the corpus should still tell the
        paper's story (Cocoon leads on hospital/beers/movies at this scale)."""
        cells = golden["cells"]

        def f1(table, dataset, system):
            return cells[f"{table}/{dataset}/{system}/seed=0/scale=0.05"]["f1"]

        for dataset in ("hospital", "beers", "movies"):
            competitors = ("HoloClean", "CleanAgent", "RetClean")
            assert all(f1("table1", dataset, "Cocoon") > f1("table1", dataset, s) for s in competitors)
        assert f1("table3", "hospital", "Cocoon") > f1("table3", "hospital", "HoloClean")
