"""Tests for CSV input/output."""

from repro.dataframe import ColumnType, Table, read_csv, read_csv_text, to_csv_text, write_csv


class TestReadCsvText:
    def test_basic_parse_with_types(self):
        table = read_csv_text("a,b\n1,x\n2,y\n")
        assert table.column("a").values == [1, 2]
        assert table.column("a").dtype is ColumnType.INTEGER
        assert table.column("b").values == ["x", "y"]

    def test_no_type_inference(self):
        table = read_csv_text("a\n1\n2\n", infer_types=False)
        assert table.column("a").values == ["1", "2"]
        assert table.column("a").dtype is ColumnType.VARCHAR

    def test_empty_string_is_null(self):
        table = read_csv_text("a,b\n1,\n2,z\n", infer_types=False)
        assert table.column("b").values == [None, "z"]

    def test_dmv_tokens_kept_by_default(self):
        table = read_csv_text("a\nN/A\nx\n", infer_types=False)
        assert table.column("a").values == ["N/A", "x"]

    def test_custom_null_tokens(self):
        table = read_csv_text("a\nN/A\nx\n", infer_types=False, null_tokens=["", "N/A"])
        assert table.column("a").values == [None, "x"]

    def test_short_rows_padded(self):
        table = read_csv_text("a,b\n1\n", infer_types=False)
        assert table.column("b").values == [None]

    def test_empty_input(self):
        assert read_csv_text("").num_rows == 0

    def test_quoted_values_with_commas(self):
        table = read_csv_text('a,b\n"x, y",2\n', infer_types=False)
        assert table.cell(0, "a") == "x, y"


class TestRoundTrip:
    def test_text_round_trip(self):
        original = Table.from_dict("t", {"a": ["x", None, "z"], "b": ["1", "2", "3"]})
        parsed = read_csv_text(to_csv_text(original), infer_types=False)
        assert parsed.to_dict() == original.to_dict()

    def test_file_round_trip(self, tmp_path):
        original = Table.from_dict("t", {"a": [1, 2], "b": ["x", "y"]})
        path = tmp_path / "table.csv"
        write_csv(original, path)
        loaded = read_csv(path)
        assert loaded.column("a").values == [1, 2]
        assert loaded.name == "table"

    def test_booleans_serialised_as_text(self):
        table = Table.from_dict("t", {"flag": [True, False]})
        assert "True" in to_csv_text(table)
