"""Columnar access paths: handles, vectors, masks and one-pass construction."""

import math

import pytest

from repro.dataframe.column import Column
from repro.dataframe.schema import ColumnType
from repro.dataframe.table import Table


@pytest.fixture()
def table():
    return Table.from_rows(
        "t",
        ["a", "b"],
        [(1, "x"), (2, "y"), (None, "z")],
    )


class TestFromRows:
    def test_single_pass_transpose(self, table):
        assert table.column_values("a") == [1, 2, None]
        assert table.column_values("b") == ["x", "y", "z"]
        assert table.shape == (3, 2)

    def test_accepts_a_generator(self):
        t = Table.from_rows("t", ["a"], ((i,) for i in range(4)))
        assert t.column_values("a") == [0, 1, 2, 3]

    def test_zero_rows_keeps_all_columns(self):
        t = Table.from_rows("t", ["a", "b"], [])
        assert t.column_names == ["a", "b"]
        assert t.num_rows == 0

    def test_width_mismatch_error_message(self):
        with pytest.raises(ValueError, match="Row width 3 does not match column count 2"):
            Table.from_rows("t", ["a", "b"], [(1, 2), (1, 2, 3)])

    def test_roundtrip_with_row_tuples(self, table):
        assert Table.from_rows("t2", table.column_names, table.row_tuples()).row_tuples() == table.row_tuples()


class TestColumnHandles:
    def test_itercolumns_yields_live_handles(self, table):
        handles = list(table.itercolumns())
        assert [h.name for h in handles] == ["a", "b"]
        assert handles[0] is table.columns[0]

    def test_column_values_is_the_live_vector(self, table):
        assert table.column_values("a") is table.column("a").values

    def test_column_values_unknown_column(self, table):
        with pytest.raises(KeyError):
            table.column_values("nope")


class TestColumnVectorHelpers:
    def test_null_mask(self):
        col = Column("x", [1, None, float("nan"), "v"])
        assert col.null_mask() == [False, True, True, False]

    def test_take_gathers_by_index(self):
        col = Column("x", [10, 20, 30, 40])
        taken = col.take([3, 1, 1])
        assert taken.values == [40, 20, 20]
        assert taken.name == "x"
        assert taken.dtype == col.dtype

    def test_append_values_keeps_declared_dtype(self):
        col = Column("x", [1, 2], ColumnType.INTEGER)
        grown = col.append_values(["3", None])
        # No re-inference: the batch does not widen INTEGER to TEXT.
        assert grown.dtype == ColumnType.INTEGER
        assert grown.values == [1, 2, "3", None]
        # The original column is untouched (immutable by convention).
        assert col.values == [1, 2]

    def test_append_values_accepts_any_iterable(self):
        col = Column("x", [1])
        assert col.append_values(iter([2, 3])).values == [1, 2, 3]


class TestRowTuples:
    def test_transposes_all_columns(self, table):
        assert table.row_tuples() == [(1, "x"), (2, "y"), (None, "z")]

    def test_no_columns_is_empty(self):
        assert Table("t", []).row_tuples() == []

    def test_nan_survives_the_transpose(self):
        t = Table.from_dict("t", {"v": [1.0, float("nan")]})
        rows = t.row_tuples()
        assert math.isnan(rows[1][0])
