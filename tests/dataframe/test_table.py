"""Tests for Column and Table operations."""

import pytest

from repro.dataframe import Column, ColumnType, Table


class TestColumn:
    def test_null_statistics(self):
        column = Column("c", ["a", None, "b", None])
        assert column.null_count() == 2
        assert column.null_fraction() == 0.5

    def test_distinct_preserves_order(self):
        column = Column("c", ["b", "a", "b", None, "a"])
        assert column.distinct() == ["b", "a", None]

    def test_unique_ratio(self):
        assert Column("c", ["a", "b", "c"]).unique_ratio() == 1.0
        assert Column("c", ["a", "a", "a", "a"]).unique_ratio() == 0.25

    def test_value_counts_excludes_nulls(self):
        counts = Column("c", ["x", "x", None, "y"]).value_counts()
        assert counts["x"] == 2
        assert counts["y"] == 1
        assert sum(counts.values()) == 3

    def test_cast(self):
        casted = Column("c", ["1", "2", "oops"]).cast(ColumnType.INTEGER)
        assert casted.values == [1, 2, None]
        assert casted.dtype is ColumnType.INTEGER

    def test_min_max_mean(self):
        column = Column("c", [3, 1, None, 2])
        assert column.min() == 1
        assert column.max() == 3
        assert column.mean() == 2.0


class TestTableConstruction:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", [1, 2]), Column("b", [1])])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            Table("t", [Column("a", [1]), Column("a", [2])])

    def test_from_rows_row_width_checked(self):
        with pytest.raises(ValueError):
            Table.from_rows("t", ["a", "b"], [[1]])

    def test_shape(self, people_table):
        assert people_table.shape == (5, 4)


class TestTableAccess:
    def test_cell_and_row(self, people_table):
        assert people_table.cell(0, "name") == "Ann"
        assert people_table.row(1)["city"] == "New York"

    def test_missing_column_raises(self, people_table):
        with pytest.raises(KeyError):
            people_table.column("nope")

    def test_contains(self, people_table):
        assert "name" in people_table
        assert "nope" not in people_table


class TestTableTransforms:
    def test_select_and_drop(self, people_table):
        assert people_table.select(["name", "age"]).column_names == ["name", "age"]
        assert "city" not in people_table.drop(["city"]).column_names

    def test_with_column_replaces(self, people_table):
        replaced = people_table.with_column(Column("age", [0, 0, 0, 0, 0]))
        assert replaced.column("age").values == [0, 0, 0, 0, 0]
        assert people_table.column("age").values != [0, 0, 0, 0, 0]

    def test_set_cell_returns_new_table(self, people_table):
        updated = people_table.set_cell(0, "name", "Zed")
        assert updated.cell(0, "name") == "Zed"
        assert people_table.cell(0, "name") == "Ann"

    def test_filter(self, people_table):
        adults = people_table.filter(lambda row: row["age"] >= 30)
        assert adults.num_rows == 3

    def test_sort_nulls_last(self, people_table):
        by_name = people_table.sort_by(["name"])
        assert by_name.column("name").values[-1] is None

    def test_sort_descending(self, people_table):
        ages = people_table.sort_by(["age"], descending=True).column("age").values
        assert ages[:4] == [41, 30, 30, 27]

    def test_distinct(self):
        table = Table.from_dict("t", {"a": [1, 1, 2], "b": ["x", "x", "y"]})
        assert table.distinct().num_rows == 2

    def test_group_by(self, people_table):
        groups = people_table.group_by(["city"])
        assert sorted(len(v) for v in groups.values()) == [1, 2, 2]

    def test_head_and_take(self, people_table):
        assert people_table.head(2).num_rows == 2
        assert people_table.take([4, 0]).column("name").values == ["Eve", "Ann"]

    def test_concat_rows(self, people_table):
        doubled = people_table.concat_rows(people_table)
        assert doubled.num_rows == 10

    def test_concat_rows_requires_same_columns(self, people_table):
        with pytest.raises(ValueError):
            people_table.concat_rows(people_table.drop(["city"]))

    def test_concat_preserves_types(self):
        a = Table("t", [Column("x", ["1", "2"], ColumnType.VARCHAR)])
        b = Table("t", [Column("x", ["3"], ColumnType.VARCHAR)])
        merged = a.concat(b)
        assert merged.column("x").values == ["1", "2", "3"]
        assert merged.column("x").dtype is ColumnType.VARCHAR

    def test_concat_rejects_type_mismatch(self):
        a = Table("t", [Column("x", [1, 2], ColumnType.INTEGER)])
        b = Table("t", [Column("x", ["3"], ColumnType.VARCHAR)])
        with pytest.raises(ValueError, match="mismatched column types"):
            a.concat(b)
        unchecked = a.concat(b, check_types=False)
        assert unchecked.num_rows == 3

    def test_concat_rejects_column_mismatch(self, people_table):
        with pytest.raises(ValueError, match="different columns"):
            people_table.concat(people_table.select(["age", "name", "city", "score"]))

    def test_append_rows_sequences(self, people_table):
        appended = people_table.append_rows([["Fay", 22, "SF", 4.5], ["Gil", None, "NY", None]])
        assert appended.num_rows == 7
        assert appended.cell(5, "name") == "Fay"
        assert appended.cell(6, "age") is None
        assert people_table.num_rows == 5  # original untouched
        for before, after in zip(people_table.columns, appended.columns):
            assert before.dtype is after.dtype

    def test_append_rows_mappings(self, people_table):
        appended = people_table.append_rows([{"name": "Hao", "age": 33}])
        assert appended.cell(5, "name") == "Hao"
        assert appended.cell(5, "city") is None

    def test_append_rows_rejects_bad_width_and_keys(self, people_table):
        with pytest.raises(ValueError, match="width"):
            people_table.append_rows([["only", "three", "cells"]])
        with pytest.raises(ValueError, match="keys"):
            people_table.append_rows([{"name": "x", "nope": 1}])

    def test_inner_join(self):
        left = Table.from_dict("l", {"k": [1, 2, 3], "v": ["a", "b", "c"]})
        right = Table.from_dict("r", {"k": [2, 3, 4], "w": ["x", "y", "z"]})
        joined = left.join(right, on=["k"])
        assert joined.num_rows == 2
        assert joined.column_names == ["k", "v", "w"]

    def test_left_join_keeps_unmatched(self):
        left = Table.from_dict("l", {"k": [1, 2], "v": ["a", "b"]})
        right = Table.from_dict("r", {"k": [2], "w": ["x"]})
        joined = left.join(right, on=["k"], how="left")
        assert joined.num_rows == 2
        assert joined.cell(0, "w") is None

    def test_to_display_contains_null_marker(self, people_table):
        assert "NULL" in people_table.to_display()
