"""Tests for the type system and value coercion."""

import datetime

import pytest

from repro.dataframe.schema import (
    ColumnType,
    coerce_value,
    infer_storage_type,
    infer_type,
    is_null,
    parse_date,
    parse_timestamp,
    parse_type,
)


class TestParseType:
    def test_basic_names(self):
        assert parse_type("VARCHAR") is ColumnType.VARCHAR
        assert parse_type("integer") is ColumnType.INTEGER
        assert parse_type("Double") is ColumnType.DOUBLE
        assert parse_type("BOOLEAN") is ColumnType.BOOLEAN
        assert parse_type("DATE") is ColumnType.DATE
        assert parse_type("TIMESTAMP") is ColumnType.TIMESTAMP

    def test_aliases(self):
        assert parse_type("TEXT") is ColumnType.VARCHAR
        assert parse_type("BIGINT") is ColumnType.INTEGER
        assert parse_type("FLOAT") is ColumnType.DOUBLE
        assert parse_type("BOOL") is ColumnType.BOOLEAN
        assert parse_type("DATETIME") is ColumnType.TIMESTAMP

    def test_parameterised_type(self):
        assert parse_type("VARCHAR(255)") is ColumnType.VARCHAR
        assert parse_type("DECIMAL(10, 2)") is ColumnType.DOUBLE

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            parse_type("GEOMETRY")


class TestIsNull:
    def test_none_is_null(self):
        assert is_null(None)

    def test_nan_is_null(self):
        assert is_null(float("nan"))

    def test_values_are_not_null(self):
        assert not is_null(0)
        assert not is_null("")
        assert not is_null(False)


class TestInferType:
    def test_integers_from_strings(self):
        assert infer_type(["1", "2", "3"]) is ColumnType.INTEGER

    def test_floats_from_strings(self):
        assert infer_type(["1.5", "2", "3.25"]) is ColumnType.DOUBLE

    def test_booleans_from_strings(self):
        assert infer_type(["yes", "no", "yes"]) is ColumnType.BOOLEAN

    def test_dates_from_strings(self):
        assert infer_type(["2020-01-01", "01/02/2020"]) is ColumnType.DATE

    def test_mixed_falls_back_to_varchar(self):
        assert infer_type(["1", "abc"]) is ColumnType.VARCHAR

    def test_empty_defaults_to_varchar(self):
        assert infer_type([]) is ColumnType.VARCHAR
        assert infer_type([None, None]) is ColumnType.VARCHAR


class TestInferStorageType:
    def test_digit_strings_stay_varchar(self):
        assert infer_storage_type(["1", "2"]) is ColumnType.VARCHAR

    def test_python_ints(self):
        assert infer_storage_type([1, 2, None]) is ColumnType.INTEGER

    def test_int_and_float_widen_to_double(self):
        assert infer_storage_type([1, 2.5]) is ColumnType.DOUBLE

    def test_bools(self):
        assert infer_storage_type([True, False]) is ColumnType.BOOLEAN

    def test_dates(self):
        assert infer_storage_type([datetime.date(2020, 1, 1)]) is ColumnType.DATE

    def test_mixed_types_are_varchar(self):
        assert infer_storage_type([1, "a"]) is ColumnType.VARCHAR


class TestParseDate:
    def test_iso(self):
        assert parse_date("2021-03-04") == datetime.date(2021, 3, 4)

    def test_us_format(self):
        assert parse_date("03/04/2021") == datetime.date(2021, 3, 4)

    def test_invalid_returns_none(self):
        assert parse_date("not a date") is None

    def test_timestamp(self):
        assert parse_timestamp("2021-03-04 10:30:00") == datetime.datetime(2021, 3, 4, 10, 30)


class TestCoerceValue:
    def test_to_integer(self):
        assert coerce_value("42", ColumnType.INTEGER) == 42
        assert coerce_value("42.7", ColumnType.INTEGER) == 42
        assert coerce_value(True, ColumnType.INTEGER) == 1

    def test_to_integer_failure_is_null(self):
        assert coerce_value("abc", ColumnType.INTEGER) is None

    def test_to_double(self):
        assert coerce_value("3.14", ColumnType.DOUBLE) == pytest.approx(3.14)
        assert coerce_value(2, ColumnType.DOUBLE) == 2.0

    def test_to_boolean(self):
        assert coerce_value("yes", ColumnType.BOOLEAN) is True
        assert coerce_value("No", ColumnType.BOOLEAN) is False
        assert coerce_value("maybe", ColumnType.BOOLEAN) is None

    def test_to_varchar(self):
        assert coerce_value(True, ColumnType.VARCHAR) == "True"
        assert coerce_value(5.0, ColumnType.VARCHAR) == "5"
        assert coerce_value("x", ColumnType.VARCHAR) == "x"

    def test_to_date(self):
        assert coerce_value("2020-05-06", ColumnType.DATE) == datetime.date(2020, 5, 6)
        assert coerce_value("garbage", ColumnType.DATE) is None

    def test_to_timestamp_from_date_string(self):
        assert coerce_value("2020-05-06", ColumnType.TIMESTAMP) == datetime.datetime(2020, 5, 6)

    def test_null_passthrough(self):
        assert coerce_value(None, ColumnType.INTEGER) is None
        assert coerce_value("", ColumnType.DOUBLE) is None
