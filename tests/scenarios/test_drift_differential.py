"""The drift differential: detector fires on drifting traffic, stays silent
on stationary traffic — asserted over the catalogue's declared expectations
and proven via ``repro.obs`` span names, not just counters."""

from __future__ import annotations

import pytest

from repro.scenarios import builtin_specs, get_scenario, replay_inprocess
from repro.scenarios.replay import PRIME_SPAN, REPLAN_SPAN, ReplayMismatch


def _traffic_scenarios():
    return [
        name for name, spec in sorted(builtin_specs().items())
        if spec.phases or spec.expect_drift or spec.batch_parity
    ]


@pytest.mark.parametrize("name", ["drift-mid-stream"])
def test_drifting_scenarios_trigger_the_replan_path(name: str) -> None:
    report = replay_inprocess(get_scenario(name))
    assert report.replans >= 1
    assert REPLAN_SPAN in report.span_names
    assert PRIME_SPAN in report.span_names
    assert report.drifted_columns == ["EmergencyService"]


@pytest.mark.parametrize("name", ["stationary-baseline"])
def test_stationary_scenarios_keep_the_detector_silent(name: str) -> None:
    report = replay_inprocess(get_scenario(name))
    assert report.replans == 0
    assert REPLAN_SPAN not in report.span_names
    assert report.drifted_columns == []


def test_expectations_are_checked_not_just_reported() -> None:
    """Flipping a drifting spec's expectation must raise ReplayMismatch."""
    spec = get_scenario("drift-mid-stream")
    spec.expect_drift = False
    with pytest.raises(ReplayMismatch, match="re-planned"):
        replay_inprocess(spec)


def test_every_traffic_scenario_has_a_declared_expectation() -> None:
    names = _traffic_scenarios()
    assert "drift-mid-stream" in names and "stationary-baseline" in names
    for name in names:
        spec = builtin_specs()[name]
        assert isinstance(spec.expect_drift, bool)
