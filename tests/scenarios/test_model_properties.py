"""Property tests: the error-model invariants the whole subsystem rests on.

Three laws, checked per model over fuzzed seeds and rates:

* **determinism** — the same seed yields byte-identical corrupted tables
  and identical edit lists;
* **rate zero is identity** — ``rate=0.0`` corrupts nothing and (for the
  duplicate model) adds nothing;
* **the diff is exact** — every reported edit really differs under
  :func:`~repro.datasets.base.strict_differs`, really appears in the dirty
  table, and every cell *not* in the diff is untouched.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataframe import Table
from repro.datasets.base import strict_differs
from repro.scenarios import (
    AdversarialValueModel,
    DuplicateStormModel,
    FDViolationModel,
    LocaleMixModel,
    NullSpikeModel,
    SchemaEvolutionModel,
    TypoModel,
    UnitDriftModel,
)
from repro.scenarios.spec import generate
from repro.scenarios.catalog import get_scenario


def _base() -> Table:
    return Table.from_dict(
        "prop",
        {
            "name": ["Mercy General", "Saint Luke", "City Hospital", "County Clinic",
                     "Valley Medical", "North Care", "Lakeside Lodge", "Hilltop House",
                     "Bayview", "Crestwood"],
            "flag": ["yes", "no", "yes", "yes", "no", "yes", "no", "no", "yes", "no"],
            "ratio": ["0.056", "0.041", "0.077", "0.065", "0.058",
                      "0.049", "0.051", "0.062", "0.044", "0.071"],
            "code": ["A1", "A1", "B2", "B2", "B2", "C3", "C3", "C3", "D4", "D4"],
            "dep": ["east", "east", "west", "west", "west",
                    "south", "south", "south", "north", "north"],
        },
    )


def _models(rate: float):
    return [
        TypoModel(rate=rate, columns=["name"], min_length=4),
        UnitDriftModel(rate=rate, columns=["ratio"]),
        SchemaEvolutionModel(rate=rate, columns=["flag"], mode="codes"),
        LocaleMixModel(rate=rate, columns=["ratio", "dep"]),
        FDViolationModel(rate=rate, determinant="code", dependent="dep"),
        DuplicateStormModel(rate=rate, near_typo_rate=0.5),
        AdversarialValueModel(rate=rate, columns=["ratio"]),
        NullSpikeModel(rate=rate, columns=["dep"]),
    ]


@settings(max_examples=40, deadline=None)
@given(
    model_index=st.integers(min_value=0, max_value=7),
    rate=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_models_are_deterministic_under_a_fixed_seed(model_index, rate, seed) -> None:
    base = _base()
    first = _models(rate)[model_index].apply(base, random.Random(seed))
    second = _models(rate)[model_index].apply(_base(), random.Random(seed))
    assert first.table == second.table
    assert first.cell_edits == second.cell_edits
    assert first.duplicated_rows == second.duplicated_rows
    assert first.renamed_columns == second.renamed_columns


@settings(max_examples=20, deadline=None)
@given(
    model_index=st.integers(min_value=0, max_value=7),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_rate_zero_is_identity(model_index, seed) -> None:
    base = _base()
    outcome = _models(0.0)[model_index].apply(base, random.Random(seed))
    assert outcome.table == base
    assert outcome.cell_edits == []
    assert outcome.duplicated_rows == []


@settings(max_examples=40, deadline=None)
@given(
    model_index=st.integers(min_value=0, max_value=7),
    rate=st.floats(min_value=0.05, max_value=1.0, allow_nan=False),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_diff_exactly_describes_the_corruption(model_index, rate, seed) -> None:
    base = _base()
    outcome = _models(rate)[model_index].apply(base, random.Random(seed))
    edited = set()
    for edit in outcome.cell_edits:
        edited.add((edit.row, edit.column))
        assert strict_differs(edit.dirty_value, edit.clean_value)
        assert outcome.table.column(edit.column).values[edit.row] == edit.dirty_value
    # cells outside the diff (and outside appended duplicates) are untouched
    duplicates = set(outcome.duplicated_rows)
    for column in base.column_names:
        before = base.column(column).values
        after = outcome.table.column(column).values
        for row in range(base.num_rows):
            if row in duplicates or (row, column) in edited:
                continue
            assert not strict_differs(after[row], before[row]), (row, column)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_generated_scenarios_agree_with_dataset_ground_truth(seed) -> None:
    """End-to-end: generate() at any seed keeps diff == dataset.error_cells()."""
    spec = get_scenario("unit-drift")
    spec.seed = seed
    generated = generate(spec)
    assert set(generated.cell_diff) == generated.dataset.error_cells()
