"""``python -m repro.scenarios`` CLI behaviour and exit codes."""

from __future__ import annotations

import json

import pytest

from repro.scenarios.cli import main


def test_list_prints_the_catalogue(capsys) -> None:
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "drift-mid-stream" in out and "typo-storm" in out


def test_generate_writes_artifacts(tmp_path, capsys) -> None:
    assert main(["generate", "typo-storm", "--out", str(tmp_path)]) == 0
    target = tmp_path / "typo-storm"
    for artifact in ("spec.json", "dirty.csv", "clean.csv", "diff.json"):
        assert (target / artifact).exists(), artifact
    diff = json.loads((target / "diff.json").read_text())
    assert diff and {"row", "column", "clean", "dirty"} <= set(diff[0])


def test_generate_round_trips_an_external_spec_file(tmp_path, capsys) -> None:
    assert main(["generate", "typo-storm", "--out", str(tmp_path)]) == 0
    capsys.readouterr()
    spec_path = tmp_path / "typo-storm" / "spec.json"
    assert main(["generate", "--spec", str(spec_path), "--json"]) == 0
    summaries = json.loads(capsys.readouterr().out)
    assert len(summaries) == 1 and summaries[0]["scenario"] == "typo-storm"


def test_golden_check_passes(capsys) -> None:
    assert main(["--golden"]) == 0
    assert "passed" in capsys.readouterr().out


def test_golden_refresh_is_idempotent(tmp_path, capsys) -> None:
    path = tmp_path / "golden.json"
    assert main(["--golden", "--refresh", "--golden-path", str(path)]) == 0
    first = path.read_text()
    assert main(["--golden", "--golden-path", str(path)]) == 0
    assert main(["--golden", "--refresh", "--golden-path", str(path)]) == 0
    assert path.read_text() == first


def test_golden_detects_drift(tmp_path, capsys) -> None:
    path = tmp_path / "golden.json"
    assert main(["--golden", "--refresh", "--golden-path", str(path)]) == 0
    doc = json.loads(path.read_text())
    doc["cells"]["typo-storm"]["cells_corrupted"] += 1
    path.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
    assert main(["--golden", "--golden-path", str(path)]) == 1
    assert "drift" in capsys.readouterr().out


def test_replay_inprocess_exit_codes(capsys) -> None:
    assert main(["replay", "drift-mid-stream", "stationary-baseline"]) == 0
    out = capsys.readouterr().out
    assert "ok drift-mid-stream" in out and "1 replans" in out


def test_unknown_scenario_is_exit_2(capsys) -> None:
    assert main(["generate", "not-a-scenario"]) == 2
    assert "valid scenarios" in capsys.readouterr().err


def test_bad_flag_combinations_are_parser_errors() -> None:
    with pytest.raises(SystemExit) as excinfo:
        main(["--refresh"])
    assert excinfo.value.code == 2
    with pytest.raises(SystemExit):
        main(["list", "--golden"])
    with pytest.raises(SystemExit):
        main([])
