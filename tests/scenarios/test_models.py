"""Unit tests for the composable error models."""

from __future__ import annotations

import random

import pytest

from repro.dataframe import Table
from repro.datasets.base import strict_differs
from repro.scenarios import (
    MODEL_TYPES,
    AdversarialValueModel,
    DuplicateStormModel,
    FDViolationModel,
    KeywordColumnModel,
    LocaleMixModel,
    NullSpikeModel,
    ScenarioError,
    SchemaEvolutionModel,
    TypoModel,
    UnitDriftModel,
    model_from_dict,
)
from repro.scenarios.models import DEFAULT_ADVERSARIAL_TOKENS, DEFAULT_KEYWORD_POOL


@pytest.fixture
def base() -> Table:
    return Table.from_dict(
        "base",
        {
            "name": ["Mercy General", "Saint Luke", "City Hospital", "County Clinic",
                     "Valley Medical", "North Care", "Lakeside", "Hilltop"],
            "flag": ["yes", "no", "yes", "yes", "no", "yes", "no", "no"],
            "ratio": ["0.056", "0.041", "0.077", "0.065", "0.058", "0.049", "0.051", "0.062"],
            "code": ["A1", "A1", "B2", "B2", "B2", "C3", "C3", "C3"],
            "dep": ["east", "east", "west", "west", "west", "south", "south", "south"],
        },
    )


def _rng() -> random.Random:
    return random.Random("test")


def test_typo_edits_differ_and_stay_in_columns(base: Table) -> None:
    outcome = TypoModel(rate=0.5, columns=["name"], min_length=4).apply(base, _rng())
    assert outcome.cell_edits
    for edit in outcome.cell_edits:
        assert edit.column == "name"
        assert strict_differs(edit.dirty_value, edit.clean_value)
        assert outcome.table.column("name").values[edit.row] == edit.dirty_value
    # untouched columns are identical
    assert outcome.table.column("flag").values == base.column("flag").values


def test_typo_min_length_excludes_short_strings(base: Table) -> None:
    outcome = TypoModel(rate=1.0, columns=["code"], min_length=3).apply(base, _rng())
    assert outcome.cell_edits == []


def test_unit_drift_multiplies(base: Table) -> None:
    outcome = UnitDriftModel(rate=1.0, columns=["ratio"], factor=1000.0).apply(base, _rng())
    assert len(outcome.cell_edits) == base.num_rows
    for edit in outcome.cell_edits:
        assert float(edit.dirty_value) == pytest.approx(float(edit.clean_value) * 1000.0)


def test_schema_evolution_codes(base: Table) -> None:
    outcome = SchemaEvolutionModel(rate=1.0, columns=["flag"], mode="codes").apply(base, _rng())
    assert {e.dirty_value for e in outcome.cell_edits} <= {"Y", "N"}
    assert len(outcome.cell_edits) == base.num_rows


def test_locale_mix_decimal_comma(base: Table) -> None:
    outcome = LocaleMixModel(rate=1.0, columns=["ratio"]).apply(base, _rng())
    assert outcome.cell_edits
    for edit in outcome.cell_edits:
        assert "," in edit.dirty_value


def test_fd_violations_are_correlated(base: Table) -> None:
    model = FDViolationModel(rate=0.5, determinant="code", dependent="dep", rows_fraction=1.0)
    outcome = model.apply(base, _rng())
    assert outcome.cell_edits
    # within one determinant group every edited row gets the SAME wrong value
    by_group = {}
    codes = base.column("code").values
    for edit in outcome.cell_edits:
        assert edit.column == "dep"
        by_group.setdefault(codes[edit.row], set()).add(edit.dirty_value)
    for group, values in by_group.items():
        assert len(values) == 1, f"group {group} got mixed replacements {values}"


def test_duplicate_storm_appends_rows(base: Table) -> None:
    outcome = DuplicateStormModel(rate=0.5, near_typo_rate=0.0).apply(base, _rng())
    added = outcome.table.num_rows - base.num_rows
    assert added == 4
    assert outcome.duplicated_rows == list(range(base.num_rows, base.num_rows + added))
    for duplicate, source in zip(outcome.duplicated_rows, outcome.duplicate_sources):
        assert outcome.table.row(duplicate) == base.row(source)


def test_adversarial_values_come_from_the_pool(base: Table) -> None:
    outcome = AdversarialValueModel(rate=1.0, columns=["ratio"]).apply(base, _rng())
    assert outcome.cell_edits
    assert {e.dirty_value for e in outcome.cell_edits} <= set(DEFAULT_ADVERSARIAL_TOKENS)


def test_keyword_columns_rename_only(base: Table) -> None:
    outcome = KeywordColumnModel(rate=0.5).apply(base, _rng())
    assert outcome.cell_edits == []
    assert outcome.renamed_columns
    for original, renamed in outcome.renamed_columns.items():
        assert renamed in DEFAULT_KEYWORD_POOL
        assert outcome.table.column(renamed).values == base.column(original).values


def test_null_spike_tokens_and_real_nulls(base: Table) -> None:
    tokens = NullSpikeModel(rate=1.0, columns=["dep"]).apply(base, _rng())
    assert {e.dirty_value for e in tokens.cell_edits} <= {"N/A", "null", "--", "unknown"}
    nulls = NullSpikeModel(rate=1.0, columns=["dep"], as_null=True).apply(base, _rng())
    assert all(e.dirty_value is None for e in nulls.cell_edits)


def test_missing_column_fails_loudly(base: Table) -> None:
    with pytest.raises(ScenarioError, match="nope"):
        TypoModel(rate=0.2, columns=["nope"]).apply(base, _rng())


def test_rate_validation() -> None:
    with pytest.raises(ScenarioError, match="rate"):
        TypoModel(rate=1.5)


def test_model_dict_round_trip() -> None:
    for name, model_type in MODEL_TYPES.items():
        if name == "fd_violations":
            model = model_type(determinant="code", dependent="dep")
        else:
            model = model_type()
        restored = model_from_dict(model.to_dict())
        assert restored == model, name


def test_model_from_dict_rejects_unknowns() -> None:
    with pytest.raises(ScenarioError, match="unknown"):
        model_from_dict({"model": "not-a-model"})
    with pytest.raises(ScenarioError):
        model_from_dict({"model": "typos", "bogus_param": 1})
