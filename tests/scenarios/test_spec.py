"""Scenario spec validation, JSON round-trip, and generation bookkeeping."""

from __future__ import annotations

import pytest

from repro.scenarios import (
    ScenarioError,
    ScenarioPhase,
    ScenarioSpec,
    TrafficSpec,
    TypoModel,
    generate,
    get_scenario,
    scenario_names,
)
from repro.scenarios.models import NullSpikeModel, SchemaEvolutionModel


def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="round-trip",
        base_dataset="hospital",
        seed=3,
        scale=0.05,
        models=[TypoModel(rate=0.1, columns=["City"], min_length=3)],
    )
    base.update(overrides)
    return ScenarioSpec(**base)


def test_json_round_trip_regenerates_identical_tables() -> None:
    spec = _spec()
    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec
    first, second = generate(spec), generate(restored)
    assert first.dataset.dirty == second.dataset.dirty
    assert first.dataset.clean == second.dataset.clean
    assert first.cell_diff == second.cell_diff


def test_phased_spec_round_trip() -> None:
    spec = _spec(
        models=[],
        phases=[
            ScenarioPhase(rows=20, models=[]),
            ScenarioPhase(rows=None, models=[NullSpikeModel(rate=0.3, columns=["City"])]),
        ],
        traffic=TrafficSpec(batch_rows=8, prime_rows=20),
        expect_drift=False,
    )
    restored = ScenarioSpec.from_json(spec.to_json())
    assert restored == spec
    assert generate(spec).dataset.dirty == generate(restored).dataset.dirty


def test_validation_rejects_bad_specs() -> None:
    with pytest.raises(ScenarioError):
        _spec(name="")
    with pytest.raises(ScenarioError):
        _spec(scale=0.0)
    with pytest.raises(ScenarioError):
        _spec(cleaning_issues=["not_an_issue"])
    with pytest.raises(ScenarioError):  # open-ended phase must come last
        _spec(models=[], phases=[ScenarioPhase(rows=None, models=[]),
                                 ScenarioPhase(rows=10, models=[])])
    with pytest.raises(ScenarioError):  # phases overflowing the table
        generate(_spec(models=[], phases=[ScenarioPhase(rows=10_000, models=[])]))


def test_unknown_base_dataset_fails_loudly() -> None:
    with pytest.raises(ScenarioError):
        generate(_spec(base_dataset="not-a-dataset"))


def test_prime_rows_defaults_to_first_phase_boundary() -> None:
    spec = _spec(
        models=[],
        phases=[ScenarioPhase(rows=30, models=[]),
                ScenarioPhase(rows=None, models=[])],
        traffic=TrafficSpec(batch_rows=10),
    )
    generated = generate(spec)
    assert generated.prime_rows == 30
    # batches never straddle a phase boundary
    sizes = [batch.num_rows for batch in generated.batches()]
    assert sum(sizes) == generated.dataset.dirty.num_rows
    assert sum(sizes[:3]) == 30


def test_table_name_is_sql_friendly() -> None:
    assert _spec(name="drift-mid-stream").table_name == "drift_mid_stream"


def test_catalog_covers_every_model_family() -> None:
    names = scenario_names()
    assert len(names) >= 8
    seen = set()
    for name in names:
        spec = get_scenario(name)
        for model in spec.models:
            seen.add(model.name)
        for phase in spec.phases:
            for model in phase.models:
                seen.add(model.name)
    assert {"typos", "unit_drift", "schema_evolution", "locale_mix", "fd_violations",
            "duplicate_storm", "adversarial_values", "keyword_columns",
            "null_spike"} <= seen


def test_drift_pair_shares_traffic_shape() -> None:
    drift = get_scenario("drift-mid-stream")
    baseline = get_scenario("stationary-baseline")
    assert drift.traffic == baseline.traffic
    assert drift.columns == baseline.columns
    assert drift.expect_drift and not baseline.expect_drift
    assert isinstance(drift.phases[1].models[0], SchemaEvolutionModel)
