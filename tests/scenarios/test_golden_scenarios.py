"""The scenario regression gate: reproduce ``GOLDEN_scenarios.json`` exactly.

Same contract as the experiment corpus: deterministic fields only, canonical
JSON on disk, byte-identical regeneration in tier-1.  The sanctioned way to
move the corpus (after verifying the drift is intended) is::

    python -m repro.scenarios --golden --refresh
"""

from __future__ import annotations

import json

from repro.experiments.matrix import canonical_json, diff_golden, load_golden
from repro.scenarios.corpus import GOLDEN_PATH, SCHEMA_VERSION, build_payload, check_golden


def test_golden_corpus_exists_and_is_big_enough() -> None:
    assert GOLDEN_PATH.exists(), "GOLDEN_scenarios.json is missing; run --golden --refresh"
    cells = load_golden(GOLDEN_PATH)["cells"]
    assert len(cells) >= 8


def test_golden_corpus_matches_byte_for_byte() -> None:
    expected = load_golden(GOLDEN_PATH)
    actual = build_payload()
    differences = diff_golden(expected, actual)
    assert not differences, "golden scenario drift:\n" + "\n".join(differences)
    assert canonical_json(actual) == GOLDEN_PATH.read_text(encoding="utf-8")


def test_committed_file_is_canonical() -> None:
    text = GOLDEN_PATH.read_text(encoding="utf-8")
    assert text == canonical_json(json.loads(text)), (
        "GOLDEN_scenarios.json was edited by hand; refresh it instead"
    )


def test_no_wall_clock_fields_in_the_corpus() -> None:
    payload = load_golden(GOLDEN_PATH)
    assert payload["schema_version"] == SCHEMA_VERSION

    def walk(node, path=""):
        if isinstance(node, dict):
            for key, value in node.items():
                assert key not in ("seconds", "runtime_seconds"), f"{path}.{key}"
                walk(value, f"{path}.{key}")
        elif isinstance(node, list):
            for index, value in enumerate(node):
                walk(value, f"{path}[{index}]")

    walk(payload)


def test_drift_cell_pins_the_replan_path() -> None:
    """The corpus itself asserts the acceptance behaviour: one replan,
    EmergencyService drifted, and zero replans on the stationary twin."""
    cells = load_golden(GOLDEN_PATH)["cells"]
    drift = cells["drift-mid-stream"]["stream"]
    assert drift["replans"] == 1
    assert drift["drifted_columns"] == ["EmergencyService"]
    baseline = cells["stationary-baseline"]["stream"]
    assert baseline["replans"] == 0
    assert baseline["drifted_columns"] == []


def test_check_golden_reports_clean() -> None:
    assert check_golden() == []
