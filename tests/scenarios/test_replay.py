"""Traffic-replay harness tests.

The HTTP drift replay is the PR's acceptance criterion: a scenario with
mid-stream drift, driven through a booted gateway as a mixed batch/stream
workload, must provably exercise the stream re-plan path (via ``repro.obs``
span names) while the cumulative stream output stays byte-identical to the
whole-table batch pipeline.  Full-catalogue HTTP replays are ``slow``.
"""

from __future__ import annotations

import pytest

from repro.obs import get_tracer
from repro.scenarios import (
    builtin_specs,
    get_scenario,
    replay_http,
    replay_inprocess,
    replay_scenario,
)
from repro.scenarios.models import ScenarioError
from repro.scenarios.replay import REPLAN_SPAN


def test_http_replay_of_drift_scenario_replans_and_keeps_parity() -> None:
    report = replay_http(get_scenario("drift-mid-stream"))
    assert report.replans == 1
    assert REPLAN_SPAN in report.span_names
    assert report.stream_parity is True
    assert report.job_parity is True
    assert report.batch_parity is True
    assert report.batches == 5 and report.rows_streamed == 50


def test_http_replay_of_stationary_scenario_never_replans() -> None:
    report = replay_http(get_scenario("stationary-baseline"))
    assert report.replans == 0
    assert REPLAN_SPAN not in report.span_names
    assert report.stream_parity is True and report.job_parity is True
    assert report.batch_parity is True


def test_http_replay_restores_the_tracer_switch() -> None:
    tracer = get_tracer()
    before = tracer.enabled
    try:
        tracer.enabled = False
        replay_http(get_scenario("stationary-baseline"))
        assert tracer.enabled is False
    finally:
        tracer.enabled = before


def test_inprocess_report_is_serialisable_and_complete() -> None:
    report = replay_inprocess(get_scenario("drift-mid-stream"))
    doc = report.to_dict()
    assert doc["scenario"] == "drift-mid-stream"
    assert doc["mode"] == "inprocess"
    assert doc["replans"] == 1
    assert REPLAN_SPAN in doc["span_names"]
    assert doc["batch_parity"] is True


def test_unknown_mode_is_rejected() -> None:
    with pytest.raises(ScenarioError, match="mode"):
        replay_scenario(get_scenario("typo-storm"), mode="quantum")


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(builtin_specs()))
def test_full_catalogue_replays_inprocess(name: str) -> None:
    report = replay_inprocess(get_scenario(name))
    assert report.batches >= 1
    assert report.rows_streamed > 0


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(builtin_specs()))
def test_full_catalogue_replays_over_http(name: str) -> None:
    report = replay_http(get_scenario(name))
    assert report.stream_parity is True
    assert report.job_parity is True
