"""Degenerate chunk shapes from scenario traffic: empty, one-row, all-null.

Scenario batching is the natural factory for the awkward shapes
``clean_chunked`` and ``Table.append_rows`` must survive — a ``NullSpikeModel``
at rate 1.0 produces all-null columns, ``batch_rows=1`` produces one-row
chunks, and ``take([])`` the empty chunk.
"""

from __future__ import annotations

import pytest

from repro.core.pipeline import CocoonCleaner
from repro.dataframe import Table
from repro.llm.simulated import SimulatedSemanticLLM
from repro.scenarios import ScenarioSpec, TrafficSpec, generate
from repro.scenarios.models import NullSpikeModel
from repro.service.chunking import clean_chunked


@pytest.fixture(scope="module")
def all_null_scenario():
    spec = ScenarioSpec(
        name="null-chunks",
        base_dataset="hospital",
        columns=["City", "State", "Score"],
        models=[NullSpikeModel(rate=1.0, as_null=True)],
        traffic=TrafficSpec(batch_rows=1),
    )
    return generate(spec)


def test_scenario_can_produce_fully_null_columns(all_null_scenario) -> None:
    dirty = all_null_scenario.dataset.dirty
    for column in dirty.columns:
        assert all(value is None for value in column.values), column.name


def test_one_row_batches_cover_the_table(all_null_scenario) -> None:
    batches = all_null_scenario.batches()
    dirty = all_null_scenario.dataset.dirty
    assert len(batches) == dirty.num_rows
    assert all(batch.num_rows == 1 for batch in batches)


def test_clean_chunked_on_empty_scenario_chunk(all_null_scenario) -> None:
    empty = all_null_scenario.dataset.dirty.take([])
    result = clean_chunked(empty, chunk_rows=8)
    assert result.cleaned_table.num_rows == 0
    assert result.chunk_count == 0
    assert result.llm_calls == 0
    assert result.cleaned_table.column_names == empty.column_names


def test_clean_chunked_on_one_row_scenario_chunk(all_null_scenario) -> None:
    one = all_null_scenario.dataset.dirty.take([0])
    result = clean_chunked(one, chunk_rows=64)
    assert result.cleaned_table.num_rows == 1
    assert result.cleaned_table.column_names == one.column_names


def test_clean_chunked_on_all_null_table(all_null_scenario) -> None:
    dirty = all_null_scenario.dataset.dirty
    result = clean_chunked(dirty, chunk_rows=64)
    # identical all-null rows collapse under the duplication operator; the
    # chunked path must agree with the whole-table pipeline on the outcome
    reference = CocoonCleaner(llm=SimulatedSemanticLLM()).clean(dirty)
    assert result.cleaned_table == reference.cleaned_table
    for column in result.cleaned_table.columns:
        assert all(value is None for value in column.values), column.name


def test_append_rows_rebuilds_a_table_from_scenario_batches(all_null_scenario) -> None:
    dirty = all_null_scenario.dataset.dirty
    rebuilt = dirty.take([])
    for batch in all_null_scenario.batches():
        rebuilt = rebuilt.append_rows(batch.rows())
    assert rebuilt == dirty


def test_append_rows_on_empty_chunk_accepts_mappings_and_checks_schema(all_null_scenario) -> None:
    empty = all_null_scenario.dataset.dirty.take([])
    grown = empty.append_rows([{"City": "X"}])  # missing keys -> NULL
    assert grown.num_rows == 1
    assert grown.column("State").values == [None]
    with pytest.raises(ValueError, match="not in table columns"):
        empty.append_rows([{"Bogus": 1}])
    with pytest.raises(ValueError, match="width"):
        empty.append_rows([("too", "short")])


def test_append_rows_keeps_declared_dtypes_on_all_null_batches(all_null_scenario) -> None:
    dirty = all_null_scenario.dataset.dirty
    grown = dirty.append_rows([[None] * len(dirty.column_names)])
    assert grown.num_rows == dirty.num_rows + 1
    for before, after in zip(dirty.columns, grown.columns):
        assert before.dtype == after.dtype
