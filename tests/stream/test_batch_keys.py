"""Column-major batch key building for the streaming QUALIFY replay."""

from repro.stream.state import _batch_step_keys


def row_major_keys(rows, key_indexes):
    from repro.sql.executor import _hashable

    return [
        [tuple(_hashable(row[i]) for i in key_idx) for row in rows]
        for key_idx in key_indexes
    ]


class TestBatchStepKeys:
    def test_matches_row_major_form(self):
        rows = [
            (1, "a", None),
            (2, "a", float("nan")),
            (1, "b", [1, 2]),
        ]
        key_indexes = [[0], [1, 2], [2, 0]]
        assert _batch_step_keys(rows, key_indexes) == row_major_keys(rows, key_indexes)

    def test_empty_batch(self):
        assert _batch_step_keys([], [[0], []]) == [[], []]

    def test_empty_key_index_yields_unit_keys(self):
        rows = [(1,), (2,), (3,)]
        assert _batch_step_keys(rows, [[]]) == [[(), (), ()]]

    def test_no_steps(self):
        assert _batch_step_keys([(1,), (2,)], []) == []

    def test_shared_column_normalised_once_consistently(self):
        # Two steps referencing the same column must observe identical
        # normalised values (NULL folds to the same sentinel in both).
        rows = [(None, "x"), (5, "y")]
        first, second = _batch_step_keys(rows, [[0], [0, 1]])
        assert first == [("\0null",), (5,)]
        assert second == [("\0null", "x"), (5, "y")]

    def test_keys_interoperate_with_cross_batch_storage(self):
        # Keys from two separate batches of the same stream must collide in
        # a dict exactly as if built row-by-row.
        batch_a = _batch_step_keys([(1, "g")], [[1]])[0]
        batch_b = _batch_step_keys([(2, "g")], [[1]])[0]
        assert batch_a[0] == batch_b[0]
        assert len({batch_a[0], batch_b[0]}) == 1
