"""StreamingCleaner mechanics: schema checks, buffering, stats, lifecycle."""

from __future__ import annotations

import pytest

from repro.core.context import ROW_ID_COLUMN
from repro.dataframe import Column, ColumnType, Table
from repro.stream import StreamingCleaner, iter_table_batches


def batch_of(cities, name="t"):
    return Table.from_dict(name, {"city": cities, "note": [f"n{i}" for i in range(len(cities))]})


SMALL = ["NY"] * 6 + ["New York"] * 2 + ["LA"] * 4


class TestSchemaAndLifecycle:
    def test_schema_mismatch_rejected(self):
        stream = StreamingCleaner("t")
        stream.process_batch(batch_of(SMALL))
        with pytest.raises(ValueError, match="does not match the stream schema"):
            stream.process_batch(Table.from_dict("t", {"city": ["X"]}))

    def test_row_id_column_rejected(self):
        stream = StreamingCleaner("t")
        bad = Table.from_dict("t", {ROW_ID_COLUMN: [1], "city": ["NY"]})
        with pytest.raises(ValueError, match="must not carry"):
            stream.process_batch(bad)

    def test_empty_first_batch_defers_priming(self):
        stream = StreamingCleaner("t", detect_drift=False)
        empty = Table("t", [Column("city", [], ColumnType.VARCHAR), Column("note", [], ColumnType.VARCHAR)])
        r0 = stream.process_batch(empty)
        assert not r0.primed and r0.llm_calls == 0
        r1 = stream.process_batch(batch_of(SMALL))
        assert r1.primed
        assert stream.cleaned_table().num_rows == len(SMALL)

    def test_empty_batch_after_priming_is_noop(self):
        stream = StreamingCleaner("t", detect_drift=False)
        stream.process_batch(batch_of(SMALL))
        empty = Table("t", [Column("city", [], ColumnType.VARCHAR), Column("note", [], ColumnType.VARCHAR)])
        result = stream.process_batch(empty)
        assert result.replayed and result.llm_calls == 0
        assert result.added == []

    def test_reset_reprimes(self):
        stream = StreamingCleaner("t", detect_drift=False)
        stream.process_batch(batch_of(SMALL))
        stream.reset()
        assert stream.plan is None
        result = stream.process_batch(batch_of(SMALL))
        assert result.primed

    def test_cleaned_table_empty_before_any_batch(self):
        assert StreamingCleaner("t").cleaned_table().num_rows == 0


class TestPrimeWindowBuffering:
    def test_buffers_until_prime_rows_then_emits_everything(self):
        whole = batch_of(SMALL)
        stream = StreamingCleaner("t", detect_drift=False, prime_rows=10)
        r0 = stream.process_batch(whole.take(list(range(0, 4))))
        assert r0.buffered and not r0.primed and r0.llm_calls == 0
        assert r0.added == []
        r1 = stream.process_batch(whole.take(list(range(4, 8))))
        assert r1.buffered
        r2 = stream.process_batch(whole.take(list(range(8, len(SMALL)))))
        assert r2.primed
        # All buffered rows surface once primed.
        assert stream.cleaned_table().num_rows == len(SMALL)

    def test_prime_plan_is_partitioning_invariant(self):
        whole = batch_of(SMALL)

        def run(batch_rows):
            stream = StreamingCleaner("t", detect_drift=False, prime_rows=8)
            for batch in iter_table_batches(whole, batch_rows):
                stream.process_batch(batch)
            return [(s.kind, s.target, s.payload) for s in stream.plan.steps], (
                stream.cleaned_table().to_dict()
            )

        plans_and_cells = {str(run(rows)) for rows in (2, 3, 5, 12)}
        assert len(plans_and_cells) == 1

    def test_negative_prime_rows_rejected(self):
        with pytest.raises(ValueError):
            StreamingCleaner("t", prime_rows=-1)


class TestAccounting:
    def test_stats_accumulate(self):
        stream = StreamingCleaner("t", detect_drift=False)
        for batch in iter_table_batches(batch_of(SMALL), 4):
            stream.process_batch(batch)
        stats = stream.stats
        assert stats.batches == 3
        assert stats.rows_ingested == len(SMALL)
        assert stats.primes == 1
        assert stats.replayed_batches == 2
        assert stats.llm_calls == stream.batch_results[0].llm_calls
        assert stats.seconds > 0
        payload = stats.to_dict()
        assert payload["batches"] == 3

    def test_incremental_fd_and_duplicate_state_exposed(self):
        stream = StreamingCleaner("t", detect_drift=False)
        dup = batch_of(["NY", "NY"])  # note column differs, so craft real dups
        dup = Table.from_dict("t", {"city": ["NY", "NY"], "note": ["same", "same"]})
        stream.process_batch(dup)
        stream.process_batch(Table.from_dict("t", {"city": ["NY"], "note": ["same"]}))
        assert stream.duplicate_rows_seen == 2
        assert stream.fd_candidates(min_score=0.0) == stream._fd_state.candidates(min_score=0.0)

    def test_cleaned_table_preserves_cast_types(self):
        # A numeric-looking column gets cast by the plan; the cumulative
        # cleaned table must carry the cast type, not VARCHAR.
        table = Table.from_dict(
            "t",
            {
                "city": SMALL,
                "score": [str(i) for i in range(len(SMALL))],
            },
        )
        stream = StreamingCleaner("t", detect_drift=False)
        for batch in iter_table_batches(table, 5):
            stream.process_batch(batch)
        if any(s.kind == "cast" for s in stream.plan.steps):
            cleaned = stream.cleaned_table()
            assert cleaned.column("score").dtype is not ColumnType.VARCHAR
