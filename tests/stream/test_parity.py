"""Streaming-vs-whole-table parity: the subsystem's determinism guarantee.

Scenario: a registry benchmark is the *backfill*; further traffic replays
rows from the same pool (:func:`~repro.stream.source.steady_state_stream`) —
the steady-state regime where the cached plan's decisions keep applying.
With drift detection off, streaming the combined table in **any** micro-batch
partitioning must emit exactly the cells ``CocoonCleaner().clean`` produces
on the whole table, and every batch after the priming window must make
**zero** LLM calls.

Each dataset is exercised under three partitionings, including tiny batches
that straddle the priming window, per the acceptance criteria.
"""

from __future__ import annotations

import pytest

from repro.core import CocoonCleaner
from repro.datasets import load_dataset
from repro.stream import StreamingCleaner, partition_table, steady_state_stream

DATASETS = ("hospital", "beers")


def _scenario(dataset: str):
    ds = load_dataset(dataset, seed=0, scale=0.05)
    batch_rows = max(10, ds.dirty.num_rows // 5)
    whole, prime_rows = steady_state_stream(ds.dirty, traffic_batches=4, batch_rows=batch_rows, seed=7)
    return whole, prime_rows, batch_rows


@pytest.fixture(scope="module")
def scenarios():
    return {name: _scenario(name) for name in DATASETS}


@pytest.fixture(scope="module")
def references(scenarios):
    return {
        name: CocoonCleaner().clean(whole)
        for name, (whole, _, _) in scenarios.items()
    }


def _partitionings(whole_rows: int, prime_rows: int, batch_rows: int):
    """Three partitionings: aligned batches, tiny batches, uneven straddle."""
    return [
        [prime_rows, prime_rows + batch_rows, prime_rows + 2 * batch_rows],
        list(range(9, whole_rows, 9)),
        [whole_rows // 4, prime_rows - 3, prime_rows + 5, whole_rows - 2],
    ]


def _stream(whole, prime_rows, bounds):
    stream = StreamingCleaner(name=whole.name, detect_drift=False, prime_rows=prime_rows)
    results = [stream.process_batch(batch) for batch in partition_table(whole, bounds)]
    return stream, results


class TestStreamingParity:
    @pytest.mark.parametrize("dataset", DATASETS)
    @pytest.mark.parametrize("partitioning", [0, 1, 2])
    def test_cell_identical_and_zero_steady_llm_calls(
        self, scenarios, references, dataset, partitioning
    ):
        whole, prime_rows, batch_rows = scenarios[dataset]
        bounds = _partitionings(whole.num_rows, prime_rows, batch_rows)[partitioning]
        bounds = sorted(set(b for b in bounds if 0 < b < whole.num_rows))
        stream, results = _stream(whole, prime_rows, bounds)

        # Cell-identical cumulative output, including row order and types.
        reference = references[dataset].cleaned_table
        assert stream.cleaned_table().to_dict() == reference.to_dict()

        # Exactly one prime; every post-prime batch replayed with zero calls.
        primed = [r for r in results if r.primed]
        assert len(primed) == 1
        steady = [r for r in results if r.replayed]
        assert steady, "expected at least one steady-state replay batch"
        assert all(r.llm_calls == 0 for r in steady)
        assert stream.stats.llm_calls == primed[0].llm_calls
        assert stream.stats.replans == 0

    @pytest.mark.parametrize("dataset", DATASETS)
    def test_all_partitionings_agree_with_each_other(self, scenarios, dataset):
        whole, prime_rows, batch_rows = scenarios[dataset]
        outputs = []
        for bounds in _partitionings(whole.num_rows, prime_rows, batch_rows):
            bounds = sorted(set(b for b in bounds if 0 < b < whole.num_rows))
            stream, _ = _stream(whole, prime_rows, bounds)
            outputs.append(stream.cleaned_table().to_dict())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_traffic_duplicates_are_removed_like_whole_table(self, scenarios, references):
        whole, prime_rows, batch_rows = scenarios["hospital"]
        bounds = [prime_rows, prime_rows + batch_rows]
        stream, _ = _stream(whole, prime_rows, bounds)
        # The replayed traffic duplicates backfill rows; the whole-table
        # pipeline removes them, so the stream must too (cross-batch dedup).
        assert whole.num_rows > references["hospital"].cleaned_table.num_rows
        assert stream.stats.rows_emitted == references["hospital"].cleaned_table.num_rows
        assert stream.stats.rows_dropped > 0
