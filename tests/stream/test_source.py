"""Batch sources: table slicing, CSV streaming, directory tailing."""

from __future__ import annotations

import pytest

from repro.dataframe import ColumnType, Table
from repro.dataframe.io import write_csv
from repro.stream import (
    DirectoryTailer,
    iter_csv_batches,
    iter_table_batches,
    partition_table,
    steady_state_stream,
)


@pytest.fixture()
def table():
    return Table.from_dict("t", {"a": [str(i) for i in range(10)], "b": list("abcdefghij")})


class TestTableBatches:
    def test_batches_cover_all_rows_in_order(self, table):
        batches = list(iter_table_batches(table, 4))
        assert [b.num_rows for b in batches] == [4, 4, 2]
        rebuilt = batches[0]
        for batch in batches[1:]:
            rebuilt = rebuilt.concat(batch)
        assert rebuilt.to_dict() == table.to_dict()

    def test_empty_table_yields_one_empty_batch(self):
        empty = Table.from_dict("t", {"a": []})
        assert [b.num_rows for b in iter_table_batches(empty, 5)] == [0]

    def test_invalid_batch_rows(self, table):
        with pytest.raises(ValueError):
            list(iter_table_batches(table, 0))

    def test_partition_table_bounds(self, table):
        parts = partition_table(table, [3, 7])
        assert [p.num_rows for p in parts] == [3, 4, 3]
        with pytest.raises(ValueError):
            partition_table(table, [99])

    def test_steady_state_stream_shape(self, table):
        whole, prime_rows = steady_state_stream(table, traffic_batches=3, batch_rows=5, seed=1)
        assert whole.num_rows == table.num_rows + 15
        assert prime_rows == table.num_rows + 5
        # Traffic rows are copies of backfill rows.
        pool = set(table.row_tuples())
        assert all(row in pool for row in whole.row_tuples()[table.num_rows:])


class TestCsvBatches:
    def test_streams_in_batches_with_nulls(self, tmp_path, table):
        path = tmp_path / "data.csv"
        dirty = table.set_cell(3, "b", None)
        write_csv(dirty, path)
        batches = list(iter_csv_batches(path, 4))
        assert [b.num_rows for b in batches] == [4, 4, 2]
        assert all(c.dtype is ColumnType.VARCHAR for b in batches for c in b.columns)
        assert batches[0].cell(3, "b") is None
        rebuilt = batches[0]
        for batch in batches[1:]:
            rebuilt = rebuilt.concat(batch)
        assert rebuilt.column("a").values == dirty.column("a").values

    def test_header_only_file_yields_empty_batch(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("a,b\n", encoding="utf-8")
        batches = list(iter_csv_batches(path, 10))
        assert len(batches) == 1
        assert batches[0].column_names == ["a", "b"]
        assert batches[0].num_rows == 0

    def test_completely_empty_file(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("", encoding="utf-8")
        batches = list(iter_csv_batches(path, 10))
        assert len(batches) == 1 and batches[0].num_columns == 0


class TestDirectoryTailer:
    def test_poll_returns_new_files_once(self, tmp_path):
        (tmp_path / "b.csv").write_text("a\n1\n", encoding="utf-8")
        (tmp_path / "a.csv").write_text("a\n1\n", encoding="utf-8")
        tailer = DirectoryTailer(tmp_path)
        assert [p.name for p in tailer.poll()] == ["a.csv", "b.csv"]
        assert tailer.poll() == []
        (tmp_path / "c.csv").write_text("a\n1\n", encoding="utf-8")
        assert [p.name for p in tailer.poll()] == ["c.csv"]

    def test_pattern_filters(self, tmp_path):
        (tmp_path / "x.csv").write_text("a\n", encoding="utf-8")
        (tmp_path / "x.txt").write_text("a\n", encoding="utf-8")
        assert [p.name for p in DirectoryTailer(tmp_path).poll()] == ["x.csv"]

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DirectoryTailer(tmp_path / "nope").poll()

    def test_follow_stops_on_max_files_and_idle(self, tmp_path):
        for i in range(3):
            (tmp_path / f"f{i}.csv").write_text("a\n1\n", encoding="utf-8")
        tailer = DirectoryTailer(tmp_path)
        assert len(list(tailer.follow(poll_seconds=0.01, max_files=2))) == 2
        # One more left; then idle_polls bounds the wait for a fourth.
        assert len(list(tailer.follow(poll_seconds=0.01, idle_polls=2))) == 1
