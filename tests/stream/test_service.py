"""StreamService: shared-pool dispatch, per-stream ordering, backpressure."""

from __future__ import annotations

import threading

import pytest

from repro.dataframe import Table
from repro.stream import (
    StreamBackpressure,
    StreamService,
    iter_table_batches,
)


def make_table(n, name="t", offset=0):
    return Table.from_dict(
        name,
        {
            "city": (["NY", "New York", "LA"] * (n // 3 + 1))[:n],
            "note": [f"n{offset + i}" for i in range(n)],
        },
    )


class TestDispatchAndOrdering:
    def test_two_streams_share_the_pool(self):
        with StreamService(workers=3, detect_drift=False) as service:
            service.create_stream("alpha")
            service.create_stream("beta")
            jobs = []
            for name in ("alpha", "beta"):
                table = make_table(40, name)
                jobs.extend(service.submit(name, b) for b in iter_table_batches(table, 10))
            assert service.wait_idle(timeout=60)
            assert all(job.done and job.error is None for job in jobs)
            stats = service.stats()
            assert stats.streams == 2
            assert stats.batches_completed == len(jobs)
            assert stats.batches_failed == 0
            for name in ("alpha", "beta"):
                per = stats.per_stream[name]
                assert per["rows_ingested"] == 40
                assert per["replayed_batches"] == 3  # 4 batches: 1 prime + 3 replays

    def test_batches_process_in_submission_order(self):
        with StreamService(workers=4, detect_drift=False) as service:
            service.create_stream("ordered")
            table = make_table(60, "ordered")
            jobs = [service.submit("ordered", b) for b in iter_table_batches(table, 6)]
            assert service.wait_idle(timeout=60)
            indexes = [job.result.batch_index for job in jobs]
            assert indexes == sorted(indexes)
            # Row ids are assigned in arrival order across batches.
            firsts = [job.result.first_row_id for job in jobs]
            assert firsts == sorted(firsts)

    def test_concurrent_producers_on_one_stream_do_not_deadlock(self):
        # Sequence assignment and enqueue are atomic: even racing producers
        # cannot put batch n+1 ahead of batch n in the pool queue, which with
        # one worker would deadlock the ordering wait.
        with StreamService(workers=1, max_pending_batches=8, detect_drift=False) as service:
            service.create_stream("raced")
            errors = []

            def produce(offset):
                try:
                    for i in range(4):
                        service.submit("raced", make_table(6, "raced", offset + i * 6))
                except Exception as exc:  # pragma: no cover - diagnostic path
                    errors.append(exc)

            threads = [threading.Thread(target=produce, args=(k * 24,)) for k in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert not errors
            assert service.wait_idle(timeout=60)
            stream = service.stream("raced")
            assert stream.completed_batches == 12
            assert stream.failed_batches == 0

    def test_unknown_stream_rejected(self):
        with StreamService(workers=1) as service:
            with pytest.raises(KeyError, match="Unknown stream"):
                service.submit("ghost", make_table(3))

    def test_duplicate_stream_name_rejected(self):
        with StreamService(workers=1) as service:
            service.create_stream("once")
            with pytest.raises(ValueError, match="already exists"):
                service.create_stream("once")


class TestBackpressure:
    def test_nonblocking_submit_raises_when_full(self):
        gate = threading.Event()

        class GatedTable(Table):
            pass

        with StreamService(workers=1, detect_drift=False) as service:
            stream = service.create_stream("slow", max_pending_batches=2)
            original = stream.cleaner.process_batch

            def stalled(batch):
                gate.wait(timeout=30)
                return original(batch)

            stream.cleaner.process_batch = stalled
            service.submit("slow", make_table(6))
            service.submit("slow", make_table(6, offset=6), block=False)
            with pytest.raises(StreamBackpressure):
                service.submit("slow", make_table(6, offset=12), block=False)
            assert stream.pending_batches == 2
            gate.set()
            assert service.wait_idle(timeout=60)
            # Capacity freed: submission works again.
            service.submit("slow", make_table(6, offset=18), block=False)
            assert service.wait_idle(timeout=60)

    def test_blocking_submit_times_out(self):
        gate = threading.Event()
        with StreamService(workers=1, detect_drift=False) as service:
            stream = service.create_stream("slow", max_pending_batches=1)
            original = stream.cleaner.process_batch
            stream.cleaner.process_batch = lambda b: (gate.wait(timeout=30), original(b))[1]
            service.submit("slow", make_table(6))
            with pytest.raises(StreamBackpressure):
                service.submit("slow", make_table(6, offset=6), timeout=0.05)
            gate.set()
            assert service.wait_idle(timeout=60)

    def test_invalid_max_pending_rejected(self):
        with pytest.raises(ValueError):
            StreamService(max_pending_batches=0)


class TestFailureIsolation:
    def test_schema_error_fails_stream_but_not_service(self):
        with StreamService(workers=2, detect_drift=False) as service:
            service.create_stream("bad")
            service.create_stream("good")
            ok = service.submit("good", make_table(9, "good"))
            first = service.submit("bad", make_table(9, "bad"))
            broken = service.submit("bad", Table.from_dict("bad", {"other": ["x"]}))
            after = service.submit("bad", make_table(9, "bad", offset=9))
            assert service.wait_idle(timeout=60)
            assert ok.error is None
            assert first.error is None
            assert broken.error is not None and "schema" in broken.error
            # Later batches on the failed stream fail fast with the cause.
            assert after.error is not None and "already failed" in after.error
            stats = service.stats()
            assert stats.per_stream["bad"]["failed"] is True
            assert stats.per_stream["good"]["failed"] is False
            assert stats.batches_failed == 2
