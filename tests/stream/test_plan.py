"""CleaningPlan extraction, validation, serialisation and batch replay."""

from __future__ import annotations

import pytest

from repro.core import CocoonCleaner, CleaningPlan, PlanExtractionError, PlanStep, extract_plan
from repro.core.context import ROW_ID_COLUMN
from repro.datasets import load_dataset
from repro.stream import partition_table


@pytest.fixture(scope="module")
def hospital_run():
    ds = load_dataset("hospital", seed=0, scale=0.05)
    result = CocoonCleaner().clean(ds.dirty)
    return ds, result


class TestExtraction:
    def test_every_applied_operator_contributes_a_step(self, hospital_run):
        _, result = hospital_run
        plan = extract_plan(result)
        applied = [op for op in result.operator_results if op.applied]
        assert len(plan.steps) == len(applied)
        assert plan.llm_calls_invested == result.llm_calls
        assert plan.base_table == result.base_table != ""

    def test_row_local_steps_form_a_prefix(self, hospital_run):
        _, result = hospital_run
        plan = extract_plan(result)
        flags = [step.row_local for step in plan.steps]
        assert flags == sorted(flags, reverse=True)

    def test_missing_base_table_rejected(self, hospital_run):
        _, result = hospital_run
        import dataclasses

        broken = dataclasses.replace(result, base_table="")
        with pytest.raises(PlanExtractionError, match="base_table"):
            extract_plan(broken)

    def test_interleaved_table_level_step_rejected(self):
        dedup = PlanStep(kind="dedup", issue_type="duplication", target="t",
                         sql="", target_table="x", payload={"columns": ["a"]})
        value_map = PlanStep(kind="value_map", issue_type="string_outliers", target="a",
                             sql="", target_table="y", payload={"column": "a", "mapping": {}})
        with pytest.raises(PlanExtractionError, match="prefix"):
            CleaningPlan(base_table="t", column_names=["a"], steps=[dedup, value_map])

    def test_unknown_kind_rejected(self):
        bogus = PlanStep(kind="teleport", issue_type="x", target="t",
                         sql="", target_table="x", payload={})
        with pytest.raises(PlanExtractionError, match="Unknown"):
            CleaningPlan(base_table="t", column_names=["a"], steps=[bogus])


class TestSerialisation:
    def test_round_trip(self, hospital_run):
        _, result = hospital_run
        plan = extract_plan(result)
        restored = CleaningPlan.from_dict(plan.to_dict())
        assert restored.base_table == plan.base_table
        assert restored.column_names == plan.column_names
        assert [s.to_dict() for s in restored.steps] == [s.to_dict() for s in plan.steps]

    def test_summary_text_lists_steps(self, hospital_run):
        _, result = hospital_run
        plan = extract_plan(result)
        text = plan.summary_text()
        assert f"{len(plan.steps)} steps" in text
        assert "row-local" in text


class TestReplay:
    def test_batched_replay_equals_whole_table_cells(self, hospital_run):
        ds, result = hospital_run
        plan = extract_plan(result)
        working = CocoonCleaner._with_row_ids(ds.dirty, plan.base_table)
        n = working.num_rows
        parts = [
            plan.replay_row_local(part)
            for part in partition_table(working, [n // 3, 2 * n // 3])
        ]
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.concat(part, check_types=True)
        assert merged.drop([ROW_ID_COLUMN]).to_dict() == result.cleaned_table.to_dict()

    def test_replay_validates_batch_columns(self, hospital_run):
        ds, result = hospital_run
        plan = extract_plan(result)
        with pytest.raises(ValueError, match="do not match plan columns"):
            plan.replay_row_local(ds.dirty)  # missing the row-id column

    def test_mapped_values_reports_coverage(self, hospital_run):
        _, result = hospital_run
        plan = extract_plan(result)
        for step in plan.row_local_steps:
            if step.kind == "value_map" and step.payload["mapping"]:
                column = step.payload["column"]
                known = plan.mapped_values(column)
                assert set(step.payload["mapping"]).issubset(known)
                break
        else:  # pragma: no cover - dataset always has a value_map step
            pytest.skip("no value_map step in plan")
