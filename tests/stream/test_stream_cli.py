"""``python -m repro.stream`` CLI: CSV mode, directory mode, outputs."""

from __future__ import annotations

import json

import pytest

from repro.dataframe.io import read_csv, write_csv
from repro.datasets import load_dataset
from repro.stream.cli import main


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital", seed=0, scale=0.05)


class TestCsvMode:
    def test_streams_file_and_writes_outputs(self, tmp_path, hospital, capsys):
        source = tmp_path / "hospital.csv"
        write_csv(hospital.dirty, source)
        out = tmp_path / "out"
        code = main([str(source), "--batch-rows", "20", "--out", str(out), "--no-drift"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "prime" in captured and "replay" in captured

        stats = json.loads((out / "stream_stats.json").read_text(encoding="utf-8"))
        assert stats["batches"] == 3
        assert stats["rows_ingested"] == hospital.dirty.num_rows
        assert stats["primes"] == 1
        assert stats["replans"] == 0

        cleaned = read_csv(out / "hospital_cleaned.csv", infer_types=False)
        assert cleaned.num_rows == stats["rows_emitted"]
        batch_files = sorted(out.glob("batch_*.csv"))
        assert len(batch_files) == 3
        emitted = sum(read_csv(p, infer_types=False).num_rows for p in batch_files)
        assert emitted == stats["rows_emitted"]

    def test_prime_rows_buffers_before_priming(self, tmp_path, hospital, capsys):
        source = tmp_path / "h.csv"
        write_csv(hospital.dirty, source)
        out = tmp_path / "out"
        code = main([str(source), "--batch-rows", "10", "--prime-rows", "30",
                     "--out", str(out), "--no-drift", "--quiet"])
        assert code == 0
        stats = json.loads((out / "stream_stats.json").read_text(encoding="utf-8"))
        assert stats["primes"] == 1
        # Batches 0-1 buffered, batch 2 primed, batches 3-4 replayed.
        assert stats["replayed_batches"] == 2
        assert stats["rows_emitted"] == hospital.dirty.num_rows

    def test_quiet_suppresses_batch_lines(self, tmp_path, hospital, capsys):
        source = tmp_path / "h.csv"
        write_csv(hospital.dirty, source)
        assert main([str(source), "--batch-rows", "30", "--no-drift", "--quiet"]) == 0
        assert "[batch" not in capsys.readouterr().out


class TestDirectoryMode:
    def test_processes_landed_files_in_name_order(self, tmp_path, hospital, capsys):
        landing = tmp_path / "landing"
        landing.mkdir()
        n = hospital.dirty.num_rows
        for i, (a, b) in enumerate([(0, 20), (20, 40), (40, n)]):
            write_csv(hospital.dirty.take(list(range(a, b))), landing / f"part_{i:02d}.csv")
        out = tmp_path / "out"
        code = main([str(landing), "--batch-rows", "100", "--out", str(out), "--no-drift"])
        assert code == 0
        stats = json.loads((out / "stream_stats.json").read_text(encoding="utf-8"))
        assert stats["batches"] == 3
        assert stats["rows_ingested"] == n


class TestArgumentValidation:
    def test_missing_path_exits_2(self, tmp_path, capsys):
        assert main([str(tmp_path / "ghost.csv")]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_bad_batch_rows_exits_2(self, tmp_path, capsys):
        source = tmp_path / "x.csv"
        source.write_text("a\n1\n", encoding="utf-8")
        assert main([str(source), "--batch-rows", "0"]) == 2
        assert "--batch-rows" in capsys.readouterr().err
