"""Differential tests: streaming table-level fold vs the executor's QUALIFY.

The batch operators express duplicate removal and key uniqueness as
``QUALIFY ROW_NUMBER() OVER (...) = 1`` statements.  The streaming layer
re-implements those semantics as an incremental fold.  These tests pin the
two implementations to each other: random tables, random step chains,
random batch splits — identical survivors, bit for bit.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.context import ROW_ID_COLUMN
from repro.core.plan import PlanStep
from repro.dataframe import Column, ColumnType, Table
from repro.sql import Database
from repro.stream import TableLevelState, table_level_survivors
from repro.stream.state import TableLevelDelta


def dedup_step(columns):
    return PlanStep(
        kind="dedup", issue_type="duplication", target="t", sql="", target_table="t1",
        payload={"columns": list(columns)},
    )


def unique_step(column, order_column=None):
    return PlanStep(
        kind="unique", issue_type="column_uniqueness", target=column, sql="", target_table="t2",
        payload={"column": column, "order_column": order_column},
    )


COLUMNS = ["a", "b", "o"]


def qualify_sql_survivors(steps, rows):
    """Oracle: run the operators' actual QUALIFY statements via the executor."""
    db = Database()
    table = Table(
        "src",
        [Column(ROW_ID_COLUMN, [r[0] for r in rows], ColumnType.INTEGER)]
        + [
            Column(name, [r[1][i] for r in rows])
            for i, name in enumerate(COLUMNS)
        ],
    )
    db.register(table, replace=True)
    current = "src"
    for index, step in enumerate(steps):
        target = f"step{index}"
        if step.kind == "dedup":
            partition = ", ".join(step.payload["columns"])
            order = ROW_ID_COLUMN
        else:
            partition = step.payload["column"]
            order_column = step.payload.get("order_column")
            order = f"{order_column} DESC" if order_column else ROW_ID_COLUMN
        db.sql(
            f"CREATE OR REPLACE TABLE {target} AS\nSELECT *\nFROM {current}\n"
            f"QUALIFY ROW_NUMBER() OVER (PARTITION BY {partition} ORDER BY {order}) = 1"
        )
        current = target
    result = db.table(current)
    ids = result.column(ROW_ID_COLUMN).values
    data = [result.column(name).values for name in COLUMNS]
    return [(int(ids[i]), tuple(col[i] for col in data)) for i in range(result.num_rows)]


step_chains = st.lists(
    st.one_of(
        st.just(dedup_step(COLUMNS)),
        st.sampled_from([unique_step("a"), unique_step("b")]),
        st.sampled_from([unique_step("a", "o"), unique_step("b", "o")]),
    ),
    min_size=1,
    max_size=3,
)
cell = st.one_of(st.none(), st.sampled_from(["x", "y", "z"]), st.integers(min_value=0, max_value=3))
# A real order column is single-typed (the plan's cast step ran before the
# table-level steps), so the strategy keeps it homogeneous: ints or NULL.
order_cell = st.one_of(st.none(), st.integers(min_value=0, max_value=5))


@st.composite
def rows_and_cuts(draw):
    n = draw(st.integers(min_value=0, max_value=24))
    rows = [
        (i, (draw(cell), draw(cell), draw(order_cell)))
        for i in range(n)
    ]
    n_cuts = draw(st.integers(min_value=0, max_value=4))
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=n), min_size=n_cuts, max_size=n_cuts)))
    return rows, cuts


class TestFoldMatchesQualifySql:
    @given(step_chains, rows_and_cuts())
    @settings(max_examples=60, deadline=None)
    def test_incremental_fold_equals_sql(self, steps, data):
        rows, cuts = data
        oracle = qualify_sql_survivors(steps, rows)

        state = TableLevelState(steps, COLUMNS)
        bounds = [0] + cuts + [len(rows)]
        for a, b in zip(bounds, bounds[1:]):
            state.apply_batch(rows[a:b])
        streamed = sorted(state.survivors.items())
        assert streamed == sorted(oracle)

    @given(step_chains, rows_and_cuts())
    @settings(max_examples=60, deadline=None)
    def test_batch_oracle_equals_sql(self, steps, data):
        rows, _ = data
        assert sorted(table_level_survivors(steps, rows, COLUMNS)) == sorted(
            qualify_sql_survivors(steps, rows)
        )


class TestDeltaSemantics:
    def test_keep_first_never_retracts(self):
        steps = [dedup_step(COLUMNS)]
        state = TableLevelState(steps, COLUMNS)
        d1 = state.apply_batch([(0, ("x", "y", 1)), (1, ("x", "y", 1))])
        assert [r for r, _ in d1.kept] == [0]
        assert d1.dropped_row_ids == [1]
        d2 = state.apply_batch([(2, ("x", "y", 1)), (3, ("z", "z", 2))])
        assert [r for r, _ in d2.kept] == [3]
        assert d2.dropped_row_ids == [2]
        assert d2.retracted_row_ids == []

    def test_keep_best_retracts_displaced_row(self):
        steps = [unique_step("a", "o")]
        state = TableLevelState(steps, COLUMNS)
        d1 = state.apply_batch([(0, ("k", "v1", 1))])
        assert [r for r, _ in d1.kept] == [0]
        # A later row with a higher order value displaces the emitted one.
        d2 = state.apply_batch([(1, ("k", "v2", 5))])
        assert [r for r, _ in d2.kept] == [1]
        assert d2.retracted_row_ids == [0]
        # Ties lose to the incumbent (stable ordering).
        d3 = state.apply_batch([(2, ("k", "v3", 5))])
        assert d3.kept == []
        assert d3.dropped_row_ids == [2]
        assert state.survivors == {1: ("k", "v2", 5)}

    def test_chained_keep_first_claims_apply_per_step(self):
        # A row kept by step 1 but dropped by step 2 must still shadow later
        # rows at step 1 — the chained-QUALIFY semantics.
        steps = [unique_step("a"), unique_step("b")]
        state = TableLevelState(steps, COLUMNS)
        state.apply_batch([(0, ("a1", "b1", None))])
        d = state.apply_batch([(1, ("a2", "b1", None)), (2, ("a2", "b9", None))])
        # Row 1 wins unique(a) for a2 but loses unique(b); row 2 must NOT win.
        assert d.kept == []
        assert sorted(d.dropped_row_ids) == [1, 2]

    def test_row_local_step_rejected(self):
        with pytest.raises(ValueError, match="row-local"):
            TableLevelState(
                [PlanStep(kind="value_map", issue_type="string_outliers", target="a",
                          sql="", target_table="x", payload={"column": "a", "mapping": {}})],
                COLUMNS,
            )

    def test_reset_forgets_everything(self):
        state = TableLevelState([dedup_step(COLUMNS)], COLUMNS)
        state.apply_batch([(0, ("x", "y", 1))])
        state.reset()
        d = state.apply_batch([(1, ("x", "y", 1))])
        assert [r for r, _ in d.kept] == [1]


class TestRandomisedSoak:
    def test_long_random_stream_matches_oracle(self):
        rng = random.Random(42)
        steps = [dedup_step(COLUMNS), unique_step("a", "o")]
        state = TableLevelState(steps, COLUMNS)
        history = []
        next_id = 0
        for _ in range(30):
            batch = []
            for _ in range(rng.randrange(0, 6)):
                row = (
                    rng.choice(["x", "y", None]),
                    rng.choice(["p", "q"]),
                    rng.choice([None, 1, 2, 3]),
                )
                batch.append((next_id, row))
                next_id += 1
            history.extend(batch)
            state.apply_batch(batch)
            expected = dict(table_level_survivors(steps, history, COLUMNS))
            assert state.survivors == expected
