"""Drift detection: profile distance signals and selective re-prompting."""

from __future__ import annotations

import pytest

from repro.dataframe import Column, ColumnType, Table
from repro.profiling import MergeableColumnProfile
from repro.stream import DriftConfig, DriftDetector, StreamingCleaner, profile_distance


def profile_of(values, name="c"):
    return MergeableColumnProfile(name, ColumnType.VARCHAR).update(values)


class TestProfileDistance:
    def test_identical_profiles_have_zero_distance(self):
        a = profile_of(["x"] * 30 + ["y"] * 10)
        drift = profile_distance(a, a)
        assert drift.distance == 0.0
        assert not drift.drifted

    def test_new_value_mass_counts_unseen_values(self):
        baseline = profile_of(["x"] * 40)
        current = profile_of(["x"] * 40 + ["z"] * 40)
        drift = profile_distance(baseline, current)
        assert drift.new_value_mass == pytest.approx(0.5)
        assert drift.frequency_shift > 0

    def test_null_shift(self):
        baseline = profile_of(["x"] * 40)
        current = profile_of(["x"] * 20 + [None] * 20)
        drift = profile_distance(baseline, current)
        assert drift.null_shift == pytest.approx(0.5)

    def test_pattern_shift_catches_format_change(self):
        baseline = profile_of(["2021-01-%02d" % d for d in range(1, 10)] * 4)
        # Same "new values" magnitude but a different shape mix.
        current = baseline.merge(profile_of(["01/%02d/2021" % d for d in range(1, 10)] * 8))
        drift = profile_distance(baseline, current)
        assert drift.pattern_shift > 0.4

    def test_key_like_columns_never_drift(self):
        baseline = profile_of([f"id-{i}" for i in range(40)])
        current = profile_of([f"id-{i}" for i in range(40, 400)])
        drift = profile_distance(baseline, current, DriftConfig(threshold=0.01))
        assert drift.new_value_mass > 0.8
        assert not drift.drifted  # exempt: unique ratio above max_unique_ratio

    def test_min_rows_gate(self):
        baseline = profile_of(["x"] * 5)
        current = profile_of(["x"] * 5 + ["z"] * 5)
        config = DriftConfig(threshold=0.05, min_rows=30)
        assert not profile_distance(baseline, current, config).drifted
        config.min_rows = 5
        assert profile_distance(baseline, current, config).drifted


class TestDriftDetector:
    def test_assess_requires_baseline(self):
        with pytest.raises(RuntimeError):
            DriftDetector().assess({"c": profile_of(["x"])})

    def test_baseline_is_snapshotted_not_aliased(self):
        live = profile_of(["x"] * 40)
        detector = DriftDetector(DriftConfig(threshold=0.1, min_rows=10))
        detector.set_baseline({"c": live})
        live.update(["z"] * 120)  # live accumulator keeps moving
        drifts = detector.assess({"c": live})
        assert drifts[0].drifted  # baseline stayed at plan time


def language_batch(start, languages):
    return Table.from_dict(
        "articles",
        {
            "article_id": [str(1000 + start + i) for i in range(len(languages))],
            "language": languages,
        },
    )


@pytest.fixture()
def drifting_stream_batches():
    prime = language_batch(0, ["eng"] * 20 + ["English"] * 3 + ["fre"] * 8 + ["French"] * 2)
    steady = language_batch(33, ["eng"] * 10 + ["fre"] * 5)
    # A redundant-representation pair unseen at prime time floods the tail.
    drifted = language_batch(48, ["ger"] * 18 + ["German"] * 8)
    return prime, steady, drifted


class TestSelectiveReprompting:
    def test_drift_off_replays_blindly(self, drifting_stream_batches):
        stream = StreamingCleaner("articles", detect_drift=False)
        for batch in drifting_stream_batches:
            result = stream.process_batch(batch)
        assert result.replayed and result.llm_calls == 0
        values = stream.cleaned_table().column("language").values
        assert values.count("German") == 8  # plan coverage gap left as-is

    def test_drift_on_reprompts_only_the_drifted_column(self, drifting_stream_batches):
        config = DriftConfig(threshold=0.12, min_rows=10)
        stream = StreamingCleaner("articles", detect_drift=True, drift_config=config)
        prime, steady, drifted = drifting_stream_batches
        stream.process_batch(prime)
        plan_before = [
            (s.kind, s.target, dict(s.payload.get("mapping") or {})) for s in stream.plan.steps
        ]
        mid = stream.process_batch(steady)
        assert mid.replayed and mid.llm_calls == 0 and not mid.drifted_columns

        result = stream.process_batch(drifted)
        assert result.drifted_columns == ["language"]  # article_id is key-like: exempt
        assert not result.replayed
        assert result.llm_calls > 0
        # The spliced plan now maps the new representation; old entries kept.
        maps = {
            s.target: s.payload["mapping"] for s in stream.plan.steps if s.kind == "value_map"
        }
        assert maps["language"]["German"] == "ger"
        assert maps["language"]["English"] == "eng"
        values = stream.cleaned_table().column("language").values
        assert values.count("German") == 0
        assert values.count("ger") == 26
        assert stream.stats.replans == 1
        # Only the language column was re-prompted: far fewer calls than a prime.
        prime_calls = stream.batch_results[0].llm_calls
        assert result.llm_calls < prime_calls
        assert plan_before != [
            (s.kind, s.target, dict(s.payload.get("mapping") or {})) for s in stream.plan.steps
        ]

    def test_replan_rewrites_already_emitted_cells(self, drifting_stream_batches):
        config = DriftConfig(threshold=0.02, min_rows=10)
        stream = StreamingCleaner("articles", detect_drift=True, drift_config=config)
        prime, steady, drifted = drifting_stream_batches
        stream.process_batch(prime)
        stream.process_batch(steady)
        result = stream.process_batch(drifted)
        # Upserts replace history: re-added row ids overlap earlier batches
        # only if their cells changed; at minimum the new batch is present.
        added_ids = set(result.added_row_ids)
        assert added_ids.issuperset(set(range(48, 48 + drifted.num_rows)))
