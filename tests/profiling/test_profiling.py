"""Tests for statistical profiling: column stats, FDs, duplicates, patterns."""

from repro.dataframe import Table
from repro.profiling import (
    discover_fds,
    duplicate_row_count,
    duplicate_row_samples,
    fd_entropy_score,
    fd_violation_groups,
    match_fraction,
    pattern_counts,
    profile_column,
    profile_table,
)
from repro.profiling.patterns import non_matching_values


class TestColumnProfile:
    def test_basic_statistics(self):
        table = Table.from_dict("t", {"c": ["a", "a", "b", None]})
        profile = profile_column(table.column("c"))
        assert profile.row_count == 4
        assert profile.null_count == 1
        assert profile.top_values[0] == ("a", 2)
        assert 0 < profile.null_fraction < 1

    def test_numeric_statistics(self):
        table = Table.from_dict("t", {"c": [1, 5, 3, None]})
        profile = profile_column(table.column("c"))
        assert profile.minimum == 1
        assert profile.maximum == 5
        assert profile.mean == 3.0
        assert profile.is_numeric

    def test_top_value_limit(self):
        table = Table.from_dict("t", {"c": [str(i) for i in range(50)]})
        profile = profile_column(table.column("c"), max_values=10)
        assert len(profile.top_values) == 10


class TestFunctionalDependencies:
    def _table(self):
        return Table.from_dict(
            "t",
            {
                "zip": ["1", "1", "1", "2", "2", "2"],
                "city": ["NY", "NY", "LA", "SF", "SF", "SF"],
                "noise": ["a", "b", "c", "d", "e", "f"],
            },
        )

    def test_exact_fd_scores_one(self):
        table = Table.from_dict("t", {"a": ["x", "x", "y"], "b": ["1", "1", "2"]})
        assert fd_entropy_score(table, "a", "b") == 1.0

    def test_violated_fd_scores_below_one(self):
        score = fd_entropy_score(self._table(), "zip", "city")
        assert 0 < score < 1

    def test_violation_groups(self):
        groups = fd_violation_groups(self._table(), "zip", "city")
        assert len(groups) == 1
        lhs, counts = groups[0]
        assert lhs == "1"
        assert counts[0] == ("NY", 2)

    def test_discover_skips_unique_determinants(self):
        fds = discover_fds(self._table(), min_score=0.5)
        assert all(fd.determinant != "noise" for fd in fds)

    def test_discover_finds_strong_candidates(self):
        table = Table.from_dict("t", {"code": ["A"] * 5 + ["B"] * 5, "name": ["x"] * 5 + ["y"] * 4 + ["z"]})
        fds = discover_fds(table, min_score=0.5)
        assert any(fd.determinant == "code" and fd.dependent == "name" for fd in fds)


class TestDuplicates:
    def test_duplicate_count(self):
        table = Table.from_dict("t", {"a": [1, 1, 2, 2, 2], "b": ["x", "x", "y", "y", "y"]})
        assert duplicate_row_count(table) == 3

    def test_no_duplicates(self):
        table = Table.from_dict("t", {"a": [1, 2, 3]})
        assert duplicate_row_count(table) == 0

    def test_samples(self):
        table = Table.from_dict("t", {"a": [1, 1, 2]})
        samples = duplicate_row_samples(table)
        assert samples == [{"a": 1}]


class TestPatterns:
    def test_pattern_counts_first_match_wins(self):
        counts = pattern_counts(["12", "345", "ab"], [r"\d{2}", r"\d+"])
        assert dict(counts) == {r"\d{2}": 1, r"\d+": 1}

    def test_match_fraction(self):
        assert match_fraction(["1", "2", "x"], [r"\d"]) == 2 / 3
        assert match_fraction([], [r"\d"]) == 1.0

    def test_non_matching_values(self):
        assert non_matching_values(["1", "x", "x"], r"\d") == ["x"]

    def test_invalid_regex_ignored(self):
        assert pattern_counts(["a"], ["["]) == []


class TestTableProfile:
    def test_profile_table(self):
        table = Table.from_dict(
            "t",
            {"code": ["A", "A", "B", "B"], "name": ["x", "x", "y", "y"], "id": ["1", "2", "3", "4"]},
        )
        profile = profile_table(table, fd_min_score=0.5)
        assert profile.row_count == 4
        assert set(profile.column_names) == {"code", "name", "id"}
        assert profile.duplicate_rows == 0
        assert any(fd.determinant == "code" for fd in profile.fd_candidates)
        assert "Table t" in profile.summary_text()
