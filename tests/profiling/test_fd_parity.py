"""Single-pass FD discovery must reproduce the baseline bit for bit.

``discover_fds`` was rewritten to stringify each column once and share one
non-null index per determinant; ``discover_fds_baseline`` is the original
per-pair re-materialising loop.  The rewrite is only acceptable if its output
is *byte-identical* — same candidates, same order, and float scores equal to
the last bit (``repr`` equality, not approx) — on the seed datasets and on
adversarial synthetic tables.
"""

from __future__ import annotations

import random

import pytest

from repro.dataframe import Table
from repro.datasets import dataset_names, load_dataset
from repro.profiling import discover_fds, discover_fds_baseline


def assert_byte_identical(new, old):
    assert len(new) == len(old)
    for a, b in zip(new, old):
        assert (a.determinant, a.dependent) == (b.determinant, b.dependent)
        # repr() equality pins every bit of the float, not just approximate value.
        assert repr(a.score) == repr(b.score)
        assert a.violating_groups == b.violating_groups
        assert a.violating_rows == b.violating_rows


@pytest.mark.parametrize("name", dataset_names())
def test_seed_datasets_byte_identical(name):
    table = load_dataset(name, seed=0, scale=0.2).dirty
    # min_score=0.0 exercises every pair, including the violation-group path.
    assert_byte_identical(
        discover_fds(table, min_score=0.0), discover_fds_baseline(table, min_score=0.0)
    )
    assert_byte_identical(discover_fds(table), discover_fds_baseline(table))


def test_column_subset_and_thresholds():
    table = load_dataset("hospital", seed=1, scale=0.1).dirty
    columns = table.column_names[:5]
    for min_score in (0.0, 0.5, 0.9):
        for ratio in (0.3, 0.95):
            assert_byte_identical(
                discover_fds(table, min_score=min_score, max_determinant_distinct_ratio=ratio, columns=columns),
                discover_fds_baseline(table, min_score=min_score, max_determinant_distinct_ratio=ratio, columns=columns),
            )


def test_nulls_mixed_types_and_ties():
    rng = random.Random(3)
    n = 300
    table = Table.from_dict(
        "t",
        {
            # heavy nulls on both sides of candidate pairs
            "a": [rng.choice(["x", "y", None]) for _ in range(n)],
            "b": [rng.choice(["1", "2", None]) for _ in range(n)],
            # non-string values must stringify exactly once, identically
            "c": [rng.choice([1, 2.5, True, None]) for _ in range(n)],
            # engineered ties: most_common() ordering depends on insertion order
            "d": [["p", "q"][i % 2] for i in range(n)],
        },
    )
    assert_byte_identical(
        discover_fds(table, min_score=0.0), discover_fds_baseline(table, min_score=0.0)
    )


def test_all_null_and_constant_columns():
    table = Table.from_dict(
        "t",
        {
            "allnull": [None, None, None, None],
            "const": ["k", "k", "k", "k"],
            "det": ["a", "a", "b", "b"],
            "dep": ["1", "1", "2", "3"],
        },
    )
    assert_byte_identical(
        discover_fds(table, min_score=0.0), discover_fds_baseline(table, min_score=0.0)
    )


def test_empty_table():
    table = Table.from_dict("t", {"a": [], "b": []})
    assert discover_fds(table) == discover_fds_baseline(table) == []
