"""The profiler's single-pass/column-major fast paths against naive references."""

from collections import Counter

from repro.dataframe.column import Column
from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.profiling.column_profile import profile_column
from repro.profiling.duplicates import (
    _row_key,
    duplicate_row_count,
    duplicate_row_samples,
)


def reference_profile_stats(column):
    """The pre-vectorisation multi-pass statistics, computed independently."""
    values = column.values
    null_count = sum(1 for v in values if is_null(v))
    non_null = [v for v in values if not is_null(v)]
    counts = Counter(str(v) for v in non_null)
    return {
        "null_count": null_count,
        "distinct_count": len(counts) + (1 if null_count else 0),
        "unique_ratio": (len(counts) / len(non_null)) if non_null else 0.0,
        "top_values": counts.most_common(1000),
    }


class TestSinglePassProfileParity:
    def check(self, values):
        column = Column("c", values)
        profile = profile_column(column)
        reference = reference_profile_stats(column)
        assert profile.null_count == reference["null_count"]
        assert profile.distinct_count == reference["distinct_count"]
        assert profile.unique_ratio == reference["unique_ratio"]
        assert profile.top_values == reference["top_values"]

    def test_mixed_nulls_and_repeats(self):
        self.check([1, 1, 2, None, float("nan"), "x", "x", "x", None])

    def test_all_null(self):
        self.check([None, None, float("nan")])

    def test_empty(self):
        self.check([])

    def test_all_distinct(self):
        self.check(list(range(50)))

    def test_str_collisions_count_once(self):
        # 1 and "1" stringify identically — the distinct count is over the
        # string image, exactly as the multi-pass profiler computed it.
        self.check([1, "1", 1.5, "1.5"])


def reference_duplicate_stats(table):
    counts = Counter(_row_key(row) for row in table.row_tuples())
    dup_count = sum(c - 1 for c in counts.values() if c > 1)
    duplicated = {k for k, c in counts.items() if c > 1}
    samples = []
    seen = set()
    for i, row in enumerate(table.row_tuples()):
        key = _row_key(row)
        if key in duplicated and key not in seen:
            samples.append(table.row(i))
            seen.add(key)
    return dup_count, samples


class TestColumnMajorDuplicateParity:
    def check(self, table, limit=3):
        dup_count, samples = reference_duplicate_stats(table)
        assert duplicate_row_count(table) == dup_count
        assert duplicate_row_samples(table, limit=limit) == samples[:limit]

    def test_duplicates_with_nulls(self):
        self.check(
            Table.from_dict(
                "t",
                {
                    "a": [1, 1, 2, None, None, 1],
                    "b": ["x", "x", "y", None, None, "x"],
                },
            )
        )

    def test_no_duplicates(self):
        self.check(Table.from_dict("t", {"a": [1, 2, 3]}))

    def test_empty_table(self):
        self.check(Table.from_dict("t", {"a": []}))

    def test_zero_column_table(self):
        self.check(Table("t", []))

    def test_sample_limit_respected(self):
        table = Table.from_dict("t", {"a": [1, 1, 2, 2, 3, 3]})
        assert len(duplicate_row_samples(table, limit=2)) == 2
        self.check(table, limit=2)

    def test_nan_rows_group_as_null(self):
        self.check(
            Table.from_dict("t", {"a": [float("nan"), None, float("nan")]})
        )
