"""Regression tests: tables whose names sanitise identically must not clobber
each other inside a shared Database."""

from __future__ import annotations

from repro import CocoonCleaner
from repro.dataframe import Table


def _table(name: str, marker: str) -> Table:
    return Table.from_dict(
        name,
        {
            "lang": ["eng"] * 6 + ["English"] * 2,
            "marker": [marker] * 8,
        },
    )


class TestSanitisedNameCollisions:
    def test_colliding_names_get_distinct_base_names(self):
        cleaner = CocoonCleaner()
        first = cleaner.clean(_table("My Data", "first"))
        second = cleaner.clean(_table("my-data", "second"))
        # Both results keep their own data: no silent overwrite of either table.
        assert set(first.cleaned_table.column("marker").values) == {"first"}
        assert set(second.cleaned_table.column("marker").values) == {"second"}
        assert cleaner.database.has_table("my_data")
        assert cleaner.database.has_table("my_data_2")
        assert "my_data" in first.sql_script
        assert "my_data_2" in second.sql_script

    def test_recleaning_same_table_reuses_its_name(self):
        cleaner = CocoonCleaner()
        cleaner.clean(_table("My Data", "v1"))
        cleaner.clean(_table("My Data", "v2"))
        # Same original name → same base name; the re-run replaces the old
        # registration instead of claiming a suffix.
        assert cleaner.database.has_table("my_data")
        assert not cleaner.database.has_table("my_data_2")
        assert set(cleaner.database.table("my_data").column("marker").values) == {"v2"}

    def test_three_way_collision(self):
        cleaner = CocoonCleaner()
        for name in ("data!", "DATA", "d_a_t_a"):
            cleaner.clean(Table.from_dict(name, {"v": ["a", "b", "a"]}))
        names = cleaner.database.table_names()
        assert "data" in names and "data_2" in names
        assert len(cleaner._assigned_names) == 3
        assert len(set(cleaner._assigned_names.values())) == 3

    def test_unnamed_table_defaults_to_dataset(self):
        cleaner = CocoonCleaner()
        cleaner.clean(Table.from_dict("", {"v": ["a", "b"]}))
        assert cleaner.database.has_table("dataset")
