"""Dialect layer: repro byte-identity, sqlite lowerings, literal hardening."""

import math
import sqlite3

import pytest

from repro.core.context import ROW_ID_COLUMN
from repro.core.dialects import (
    DEFAULT_DIALECT,
    DIALECTS,
    Dialect,
    ReproDialect,
    SqliteDialect,
    get_dialect,
)
from repro.core.pipeline import CocoonCleaner
from repro.core.plan import extract_plan
from repro.core.sqlgen import (
    case_when_mapping,
    case_when_null,
    case_when_threshold,
    cast_expression,
    comment_block,
    keep_first_statement,
    quote_identifier,
    quote_literal,
    select_with_replacements,
)
from repro.dataframe.schema import ColumnType, coerce_value
from repro.dataframe.table import Table
from repro.sql.database import Database


def sqlite_eval(expr: str, values):
    """Evaluate ``expr`` over a one-column sqlite table holding ``values``.

    The column is declared without a type, so bound values keep their
    storage class — exactly how the differential harness loads data.
    """
    conn = sqlite3.connect(":memory:")
    try:
        conn.execute("CREATE TABLE t (v)")
        conn.executemany("INSERT INTO t VALUES (?)", [(v,) for v in values])
        return [row[0] for row in conn.execute(f"SELECT {expr} FROM t")]
    finally:
        conn.close()


class TestRegistry:
    def test_default_dialect_is_repro(self):
        assert isinstance(DEFAULT_DIALECT, ReproDialect)

    def test_get_dialect(self):
        assert isinstance(get_dialect("sqlite"), SqliteDialect)
        assert isinstance(get_dialect("REPRO"), ReproDialect)
        with pytest.raises(ValueError, match="Unknown dialect"):
            get_dialect("oracle")
        assert set(DIALECTS) == {"repro", "sqlite"}


class TestReproByteIdentity:
    """The default dialect must render exactly what the emitters always did."""

    def test_quote_identifier_unchanged(self):
        assert quote_identifier("city") == "city"
        assert quote_identifier("select") == '"select"'
        assert quote_identifier("My Col") == '"My Col"'

    def test_case_when_mapping_unchanged(self):
        sql = case_when_mapping("city", {"NYC ": "NYC", "bad": ""})
        assert sql == (
            "CASE city\n"
            "        WHEN 'NYC ' THEN 'NYC'\n"
            "        WHEN 'bad' THEN NULL\n"
            "        ELSE city\n"
            "    END"
        )

    def test_case_when_threshold_unchanged_for_finite_bounds(self):
        assert case_when_threshold("abv", 0.02, 0.12) == (
            "CASE WHEN abv < 0.02 OR abv > 0.12 THEN NULL ELSE abv END"
        )
        assert case_when_threshold("abv", None, None) == (
            "CASE WHEN FALSE THEN NULL ELSE abv END"
        )

    def test_keep_first_statement_matches_legacy_operator_sql(self):
        # The exact string DuplicationOperator inlined before the refactor.
        comments = ["Duplication cleaning: remove 3 duplicated rows (keep the first occurrence)."]
        legacy = (
            f"{comment_block(comments)}\n"
            "CREATE OR REPLACE TABLE t_dedup AS\n"
            "SELECT *\nFROM t\n"
            f"QUALIFY ROW_NUMBER() OVER (PARTITION BY a, b ORDER BY {ROW_ID_COLUMN}) = 1"
        )
        assert keep_first_statement("t", "t_dedup", ["a", "b"], ROW_ID_COLUMN, comments) == legacy

    def test_plan_emit_repro_replays_identically(self):
        table = Table.from_rows(
            "demo",
            ["city", "n"],
            [["NYC ", "1"], ["NYC", "2"], ["LA", "x"], ["NYC ", "1"]],
        )
        result = CocoonCleaner().clean(table)
        plan = extract_plan(result)
        db = Database()
        ids = list(range(table.num_rows))
        with_ids = Table.from_rows(
            plan.base_table,
            [ROW_ID_COLUMN] + table.column_names,
            [[i] + list(row) for i, row in zip(ids, zip(*(c.values for c in table.columns)))],
        )
        db.register(with_ids, replace=True)
        db.execute_script(plan.emit())
        replayed = db.table(plan.final_table()).drop([ROW_ID_COLUMN])
        assert replayed.column_names == result.cleaned_table.column_names
        for column in replayed.column_names:
            assert replayed.column(column).values == result.cleaned_table.column(column).values


class TestSqliteStatements:
    def test_create_table_prelude_drops_first(self):
        prelude = SqliteDialect().create_table_prelude("t1")
        assert prelude == 'DROP TABLE IF EXISTS "t1";\nCREATE TABLE "t1" AS'

    def test_identifiers_always_quoted(self):
        # 'index' passes the repro bare-word test but is a sqlite keyword.
        assert SqliteDialect().quote_identifier("index") == '"index"'
        assert quote_identifier("index") == "index"

    def test_keep_first_lowers_qualify(self):
        sql = keep_first_statement(
            "s", "t", ["k"], ROW_ID_COLUMN, columns=["_cocoon_row_id", "k", "v"],
            dialect=SqliteDialect(),
        )
        assert "QUALIFY" not in sql
        assert "ROW_NUMBER() OVER" in sql and '"_cocoon_rn" = 1' in sql
        conn = sqlite3.connect(":memory:")
        try:
            conn.execute("CREATE TABLE s (_cocoon_row_id, k, v)")
            conn.executemany(
                "INSERT INTO s VALUES (?, ?, ?)",
                [(0, "a", "x"), (1, "a", "y"), (2, "b", "z")],
            )
            conn.executescript(sql)
            rows = conn.execute('SELECT "_cocoon_row_id", "k", "v" FROM "t" ORDER BY 1').fetchall()
        finally:
            conn.close()
        assert rows == [(0, "a", "x"), (2, "b", "z")]

    def test_keep_first_requires_columns(self):
        with pytest.raises(ValueError, match="column list"):
            keep_first_statement("s", "t", ["k"], ROW_ID_COLUMN, dialect=SqliteDialect())

    def test_select_with_replacements_rejects_qualify(self):
        with pytest.raises(ValueError, match="QUALIFY"):
            select_with_replacements(
                "s", "t", ["a"], {}, qualify="ROW_NUMBER() OVER () = 1", dialect=SqliteDialect()
            )

    def test_function_renames(self):
        d = SqliteDialect()
        assert d.function_call("LEN", ["x"]) == "LENGTH(x)"
        assert d.function_call("NVL", ["a", "b"]) == "IFNULL(a, b)"
        assert "CASE" in d.function_call("TRY_CAST_DOUBLE", ["x"])

    def test_like_escape_shared_shape(self):
        for dialect in (ReproDialect(), SqliteDialect()):
            assert dialect.like_expression("a", "'b%'", "'!'") == "a LIKE 'b%' ESCAPE '!'"


CAST_BATTERY = [
    "12", "+7", "-03", "007", "2.5", ".5", "12.", "-1.25", "abc", "", "  ",
    "12abc", "1.2.3", "+", ".", "true", "True", " YES ", "no", "F", "0", "1",
    0, 1, 3, -4, 2.7, -2.7, 0.5,
    "2020-05-03", "05/13/2020", "13/05/2020", "2020/05/03", "05-13-2020",
    "99/99/9999", "2020-13-01", "03/04/2021",
]


class TestSqliteCastParity:
    """The sqlite CAST lowering must agree with coerce_value cell-for-cell."""

    @pytest.mark.parametrize("target", ["INTEGER", "DOUBLE", "BOOLEAN", "DATE", "VARCHAR"])
    def test_battery(self, target):
        expr = SqliteDialect().cast_expression('"v"', target)
        got = sqlite_eval(expr, CAST_BATTERY)
        for value, from_sqlite in zip(CAST_BATTERY, got):
            expected = coerce_value(value, ColumnType(target if target != "VARCHAR" else "VARCHAR"))
            if isinstance(expected, bool):
                expected = int(expected)
            elif expected is not None and target == "DATE":
                expected = str(expected)
            assert from_sqlite == expected, (
                f"CAST({value!r} AS {target}): sqlite={from_sqlite!r} in-process={expected!r}"
            )

    def test_timestamp_battery(self):
        values = [
            "2020-05-03 10:11:12", "2020-05-03T10:11:12", "2020-05-03 10:11",
            "05/03/2020 10:11", "2020-05-03", "05/13/2020", "garbage", "",
        ]
        expr = SqliteDialect().cast_expression('"v"', "TIMESTAMP")
        got = sqlite_eval(expr, values)
        for value, from_sqlite in zip(values, got):
            expected = coerce_value(value, ColumnType.TIMESTAMP)
            expected = str(expected) if expected is not None else None
            assert from_sqlite == expected, f"{value!r}: {from_sqlite!r} != {expected!r}"

    def test_exponent_strings_are_a_documented_gap(self):
        # The in-process engine accepts '1e3'; the GLOB guards do not.  This
        # pins the documented limitation so a silent behaviour change shows up.
        expr = SqliteDialect().cast_expression('"v"', "DOUBLE")
        assert sqlite_eval(expr, ["1e3"]) == [None]
        assert coerce_value("1e3", ColumnType.DOUBLE) == 1000.0

    def test_cast_guards_reject_prefix_parses(self):
        # sqlite's native CAST would turn '12abc' into 12; ours must not.
        expr = SqliteDialect().cast_expression('"v"', "INTEGER")
        assert sqlite_eval(expr, ["12abc"]) == [None]


class TestSqliteExpressionParity:
    def test_mapping_matches_numeric_storage_textually(self):
        # In-process CASE matches str(subject); sqlite needs the TEXT cast.
        expr = case_when_mapping("v", {"120": "200"}, dialect=SqliteDialect())
        assert sqlite_eval(expr, [120, "120", 121]) == ["200", "200", 121]

    def test_in_list_matches_both_storage_classes(self):
        expr = case_when_null("v", ["999"], dialect=SqliteDialect())
        assert sqlite_eval(expr, [999, "999", 998]) == [None, None, 998]
        # Numeric storage matches numeric tokens by value, like sql_equal.
        expr = case_when_null("v", ["0"], dialect=SqliteDialect())
        assert sqlite_eval(expr, [0.0, "0.0", "0"]) == [None, "0.0", None]

    def test_threshold_matches_in_process_semantics(self):
        # Numbers and numeric text compare numerically; other text compares
        # textually against str(bound), exactly like the in-process engine
        # ('abc' > '2.0' lexically, so it is nulled on both sides).
        values = [1.0, 3.0, 0.1, "1.5", "3.5", "abc", "", None]
        expr = case_when_threshold("v", 0.5, 2.0, dialect=SqliteDialect())
        assert sqlite_eval(expr, values) == [
            1.0, None, None, "1.5", None, None, None, None,
        ]
        db = Database()
        db.register(Table.from_rows("t", ["v"], [[v] for v in values]), replace=True)
        in_process = db.column_values(
            f"SELECT {case_when_threshold('v', 0.5, 2.0)} FROM t"
        )
        assert in_process == [1.0, None, None, "1.5", None, None, None, None]


class TestLiteralHardening:
    """Satellite: non-finite floats must never render as bare tokens."""

    def test_finite_literals_unchanged(self):
        assert quote_literal(3) == "3"
        assert quote_literal(2.5) == "2.5"
        assert quote_literal(True) == "TRUE"
        assert quote_literal(None) == "NULL"
        assert quote_literal("it's") == "'it''s'"

    def test_nan_renders_null(self):
        assert quote_literal(float("nan")) == "NULL"

    def test_infinities_render_as_strings(self):
        assert quote_literal(float("inf")) == "'inf'"
        assert quote_literal(float("-inf")) == "'-inf'"

    @pytest.mark.parametrize("value", [float("nan"), float("inf"), float("-inf"), 1.5, None, True, "x"])
    def test_round_trip_through_both_engines(self, value):
        literal = quote_literal(value)
        db = Database()
        db.register(Table.from_rows("one", ["a"], [[1]]), replace=True)
        in_process = db.scalar(f"SELECT {literal} FROM one")
        from_sqlite = sqlite_eval(literal, [1])[0]
        if value is None or (isinstance(value, float) and math.isnan(value)):
            assert in_process is None and from_sqlite is None
        elif isinstance(value, bool):
            assert bool(in_process) is value and bool(from_sqlite) is value
        elif isinstance(value, float) and math.isinf(value):
            assert in_process == ("inf" if value > 0 else "-inf") == from_sqlite
        else:
            assert in_process == value and from_sqlite == value

    def test_threshold_drops_non_finite_bounds(self):
        # Previously rendered "abv < nan" — unparseable on every engine.
        sql = case_when_threshold("abv", float("nan"), float("inf"))
        assert sql == "CASE WHEN FALSE THEN NULL ELSE abv END"
        sql = case_when_threshold("abv", float("-inf"), 0.12)
        assert sql == "CASE WHEN abv > 0.12 THEN NULL ELSE abv END"

    def test_cast_expression_repro_unchanged(self):
        assert cast_expression("n", "INTEGER") == "CAST(n AS INTEGER)"


class TestDialectBaseIsAbstractEnough:
    def test_subclass_only_overrides(self):
        # Guard the extension contract documented in docs/dialects.md: a new
        # dialect only needs the hooks, not a rewrite of the builders.
        class Upper(Dialect):
            name = "upper"

            def create_table_prelude(self, target_table):
                return f"CREATE TABLE {self.quote_identifier(target_table)} AS"

        sql = select_with_replacements("s", "t", ["a"], {}, dialect=Upper())
        assert sql.startswith("CREATE TABLE t AS")
