"""Tests for individual cleaning operators and SQL generation."""

from repro.core import CleaningConfig, CocoonCleaner
from repro.core.hil import CallbackReviewer, ReviewDecision
from repro.core.sqlgen import (
    case_when_mapping,
    case_when_null,
    case_when_threshold,
    cast_expression,
    quote_identifier,
    quote_literal,
    select_with_replacements,
)
from repro.dataframe import Table


def clean_with(table: Table, issues):
    cleaner = CocoonCleaner(config=CleaningConfig(enabled_issues=list(issues)))
    return cleaner.clean(table)


class TestSqlGen:
    def test_quote_identifier(self):
        assert quote_identifier("name") == "name"
        assert quote_identifier("Weird Name") == '"Weird Name"'

    def test_quote_literal_escapes(self):
        assert quote_literal("it's") == "'it''s'"
        assert quote_literal(None) == "NULL"
        assert quote_literal(3) == "3"
        assert quote_literal(True) == "TRUE"

    def test_case_when_mapping_empty_string_becomes_null(self):
        sql = case_when_mapping("c", {"bad": "good", "junk": ""})
        assert "WHEN 'junk' THEN NULL" in sql
        assert "WHEN 'bad' THEN 'good'" in sql

    def test_case_when_null(self):
        assert "IN ('N/A', '--')" in case_when_null("c", ["N/A", "--"])

    def test_case_when_threshold(self):
        sql = case_when_threshold("c", 0, 100)
        assert "c < 0" in sql and "c > 100" in sql

    def test_cast_expression_with_mapping(self):
        sql = cast_expression("c", "BOOLEAN", {"yes": "True"})
        assert sql.startswith("CAST(CASE c")
        assert sql.endswith("AS BOOLEAN)")

    def test_select_with_replacements_executes(self, db):
        sql = select_with_replacements(
            "people", "people2", ["name", "age", "city", "score"],
            {"city": case_when_mapping("city", {"New York": "NY"})},
            comments=["normalise city"],
        )
        db.sql(sql)
        assert db.table("people2").column("city").values.count("NY") == 3
        assert sql.startswith("-- normalise city")


class TestStringOutlierOperator:
    def test_fixes_language_representations(self, dirty_language_table):
        result = clean_with(dirty_language_table, ["string_outliers"])
        langs = result.cleaned_table.column("article_language").values
        assert "English" not in langs
        assert langs.count("eng") == 10
        assert any(r.issue_type == "string_outliers" for r in result.repairs)

    def test_no_changes_on_clean_column(self):
        table = Table.from_dict("t", {"c": ["alpha"] * 5 + ["beta"] * 5})
        result = clean_with(table, ["string_outliers"])
        assert result.repairs == []


class TestDmvOperator:
    def test_dmv_to_null(self, dirty_language_table):
        result = clean_with(dirty_language_table, ["disguised_missing_value"])
        notes = result.cleaned_table.column("notes").values
        assert notes.count(None) == 5
        assert all(r.new_value is None for r in result.repairs)


class TestColumnTypeOperator:
    def test_boolean_cast(self, dirty_language_table):
        result = clean_with(dirty_language_table, ["column_type"])
        included = result.cleaned_table.column("included").values
        assert set(included) <= {True, False}

    def test_integer_cast(self, dirty_language_table):
        result = clean_with(dirty_language_table, ["column_type"])
        assert all(isinstance(v, int) for v in result.cleaned_table.column("score").values)


class TestNumericOutlierOperator:
    def test_outlier_nulled_after_cast(self, dirty_language_table):
        result = clean_with(dirty_language_table, ["column_type", "numeric_outliers"])
        scores = result.cleaned_table.column("score").values
        assert None in scores
        assert 999 not in scores

    def test_requires_numeric_column(self, dirty_language_table):
        # Without the cast the score column stays VARCHAR and is not reviewed.
        result = clean_with(dirty_language_table, ["numeric_outliers"])
        assert [r for r in result.operator_results if r.issue_type == "numeric_outliers"] == []


class TestFunctionalDependencyOperator:
    def test_fd_violation_repaired(self):
        table = Table.from_dict(
            "t",
            {
                "zip_code": ["10001"] * 12 + ["90210"] * 12,
                "city": ["New York"] * 11 + ["Los Angeles"] + ["Los Angeles"] * 12,
                "payload": [str(i) for i in range(24)],
            },
        )
        result = clean_with(table, ["functional_dependency"])
        cities = result.cleaned_table.column("city").values
        assert cities[:12] == ["New York"] * 12

    def test_measured_dependency_declined(self):
        table = Table.from_dict(
            "t",
            {
                "flight": ["AA-1"] * 6 + ["UA-2"] * 6,
                "actual_arrival": ["10:30"] * 4 + ["10:31", "10:28"] + ["9:00"] * 6,
            },
        )
        result = clean_with(table, ["functional_dependency"])
        fd_results = [r for r in result.operator_results if r.issue_type == "functional_dependency"]
        assert all(not r.applied for r in fd_results)
        assert result.cleaned_table.column("actual_arrival").values.count("10:31") == 1


class TestDuplicationOperator:
    def test_duplicates_removed(self):
        table = Table.from_dict("t", {"id": ["1", "2", "2", "3"], "v": ["a", "b", "b", "c"]})
        result = clean_with(table, ["duplication"])
        assert result.cleaned_table.num_rows == 3
        assert len(result.removed_row_ids) == 1

    def test_no_duplicates_no_change(self):
        table = Table.from_dict("t", {"id": ["1", "2"], "v": ["a", "b"]})
        result = clean_with(table, ["duplication"])
        assert result.cleaned_table.num_rows == 2


class TestUniquenessOperator:
    def test_key_column_deduplicated(self):
        rows = [str(i) for i in range(30)] + ["5"]
        table = Table.from_dict("t", {"record_id": rows, "updated_date": [f"2020-01-{i % 28 + 1:02d}" for i in range(31)]})
        result = clean_with(table, ["column_uniqueness"])
        ids = result.cleaned_table.column("record_id").values
        assert ids.count("5") == 1


class TestHumanInTheLoop:
    def test_rejection_blocks_cleaning(self, dirty_language_table):
        reviewer = CallbackReviewer(on_detection=lambda finding: ReviewDecision(approved=False))
        cleaner = CocoonCleaner(config=CleaningConfig(enabled_issues=["string_outliers"]), hil=reviewer)
        result = cleaner.clean(dirty_language_table)
        assert result.repairs == []
        assert reviewer.detection_log  # the reviewer was consulted

    def test_edited_mapping_is_used(self, dirty_language_table):
        def edit(finding, mapping, sql):
            return ReviewDecision(approved=True, edited_mapping={"English": "en"})

        reviewer = CallbackReviewer(on_cleaning=edit)
        cleaner = CocoonCleaner(config=CleaningConfig(enabled_issues=["string_outliers"]), hil=reviewer)
        result = cleaner.clean(dirty_language_table)
        assert "en" in result.cleaned_table.column("article_language").values
