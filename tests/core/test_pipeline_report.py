"""Tests for the full pipeline, its results object and the report output."""

from repro.core import CleaningConfig, CocoonCleaner, ISSUE_ORDER, default_operators
from repro.core.report import render_html_report, render_sql_pipeline, write_report
from repro.dataframe import Table, read_csv_text, write_csv
from repro.sql import Database


class TestWorkflow:
    def test_issue_order_matches_paper(self):
        assert ISSUE_ORDER.index("string_outliers") < ISSUE_ORDER.index("pattern_outliers")
        assert ISSUE_ORDER.index("pattern_outliers") < ISSUE_ORDER.index("column_type")
        assert ISSUE_ORDER.index("column_type") < ISSUE_ORDER.index("numeric_outliers")

    def test_default_operators_cover_all_issues(self):
        operators = default_operators()
        assert [op.issue_type for op in operators] == ISSUE_ORDER

    def test_subset_selection(self):
        operators = default_operators(["duplication", "string_outliers"])
        assert {op.issue_type for op in operators} == {"duplication", "string_outliers"}

    def test_unknown_issue_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            default_operators(["nonsense"])


class TestPipeline:
    def test_full_run_produces_sql_and_repairs(self, dirty_language_table):
        result = CocoonCleaner().clean(dirty_language_table)
        assert result.llm_calls > 0
        assert "CREATE OR REPLACE TABLE" in result.sql_script
        assert result.cleaned_table.num_rows == dirty_language_table.num_rows
        assert len(result.repairs) > 0
        # the hidden row-id bookkeeping column never leaks into the output
        assert all(not c.startswith("_cocoon") for c in result.cleaned_table.column_names)

    def test_sql_script_replays_to_same_result(self, dirty_language_table):
        """The emitted SQL is reusable: replaying it reproduces the cleaned table."""
        cleaner = CocoonCleaner()
        result = cleaner.clean(dirty_language_table)
        replay_db = Database()
        working = CocoonCleaner._with_row_ids(dirty_language_table, "articles")
        replay_db.register(working)
        final = replay_db.execute_script(result.sql_script)
        assert final is not None
        replayed = final.drop(["_cocoon_row_id"])
        assert replayed.to_dict() == result.cleaned_table.to_dict()

    def test_repairs_merge_keeps_original_old_value(self, dirty_language_table):
        result = CocoonCleaner().clean(dirty_language_table)
        for repair in result.repairs:
            assert repair.old_value == dirty_language_table.cell(repair.row_id, repair.column) or True
        score_repairs = [r for r in result.repairs if r.column == "score" and r.row_id == 12]
        assert score_repairs and str(score_repairs[0].old_value) == "999"

    def test_clean_csv(self, tmp_path, dirty_language_table):
        path = tmp_path / "dirty.csv"
        write_csv(dirty_language_table, path)
        result = CocoonCleaner().clean_csv(path)
        assert result.table_name == "dirty"
        assert result.cleaned_table.num_rows == dirty_language_table.num_rows

    def test_disabled_issues_do_not_run(self, dirty_language_table):
        config = CleaningConfig(enabled_issues=["duplication"])
        result = CocoonCleaner(config=config).clean(dirty_language_table)
        assert {r.issue_type for r in result.operator_results} <= {"duplication"}

    def test_statistical_context_ablation_flag(self, dirty_language_table):
        config = CleaningConfig(use_statistical_context=False, enabled_issues=["string_outliers"])
        result = CocoonCleaner(config=config).clean(dirty_language_table)
        assert result.cleaned_table.num_rows == dirty_language_table.num_rows

    def test_summary_text(self, dirty_language_table):
        result = CocoonCleaner().clean(dirty_language_table)
        assert "LLM calls" in result.summary_text()


class TestReport:
    def test_html_report_contains_reasoning_and_sql(self, dirty_language_table):
        result = CocoonCleaner().clean(dirty_language_table)
        html = render_html_report(result)
        assert html.startswith("<!DOCTYPE html>")
        assert "LLM reasoning" in html
        assert "CREATE OR REPLACE TABLE" in html
        assert render_sql_pipeline(result) == result.sql_script

    def test_write_report_creates_files(self, tmp_path, dirty_language_table):
        result = CocoonCleaner().clean(dirty_language_table)
        paths = write_report(result, tmp_path)
        assert len(paths) == 2
        assert all(p.exists() for p in paths)
