"""Integration tests for the concurrent cleaning service.

The load-bearing guarantee: running jobs concurrently (shared prompt cache,
isolated per-job state) must not change cleaning outcomes — every cleaned
table is cell-identical to a sequential ``CocoonCleaner.clean`` of the same
table.
"""

from __future__ import annotations

import threading

import pytest

from repro import CleaningService, CocoonCleaner, JobStatus, dataset_names, load_dataset
from repro.core.report import render_service_summary
from repro.dataframe import Table
from repro.llm import SimulatedSemanticLLM

SCALE = 0.05
SEED = 0


@pytest.fixture(scope="module")
def registry_tables():
    return [load_dataset(name, seed=SEED, scale=SCALE).dirty for name in dataset_names()]


@pytest.fixture(scope="module")
def sequential_results(registry_tables):
    # A fresh cleaner per table mirrors what the service gives each job.
    return [CocoonCleaner().clean(table) for table in registry_tables]


class TestConcurrentEqualsSequential:
    def test_all_registry_datasets_cell_identical(self, registry_tables, sequential_results):
        with CleaningService(workers=4) as service:
            jobs = [service.submit(table) for table in registry_tables]
            results = service.wait_all(timeout=300)
        assert all(r.status is JobStatus.SUCCEEDED for r in results)
        for table, sequential, concurrent in zip(registry_tables, sequential_results, results):
            assert concurrent.cleaning_result is not None
            assert concurrent.cleaning_result.cleaned_table == sequential.cleaned_table, (
                f"concurrent cleaning of {table.name} diverged from sequential"
            )

    def test_two_workers_also_match(self, registry_tables, sequential_results):
        with CleaningService(workers=2) as service:
            results = service.clean_tables(registry_tables)
        for sequential, concurrent in zip(sequential_results, results):
            assert concurrent.cleaning_result.cleaned_table == sequential.cleaned_table

    def test_stats_accounting(self, registry_tables):
        with CleaningService(workers=4) as service:
            service.clean_tables(registry_tables)
            stats = service.stats()
        assert stats.jobs_submitted == len(registry_tables)
        assert stats.jobs_succeeded == len(registry_tables)
        assert stats.jobs_failed == 0
        assert stats.rows_cleaned == sum(t.num_rows for t in registry_tables)
        assert stats.llm_calls > 0
        assert stats.wall_seconds > 0
        assert stats.run_seconds_max >= stats.run_seconds_p50 >= 0
        # The shared store saw every prompt the jobs issued.
        assert stats.cache_hits + stats.cache_misses >= stats.llm_calls
        summary = render_service_summary(stats)
        assert "jobs/s" in summary and "hit rate" in summary


class TestMultiBatchStats:
    def test_idle_gap_between_batches_excluded_from_wall_time(self, dirty_language_table):
        import time as _time

        with CleaningService(workers=2) as service:
            service.submit(dirty_language_table.copy("batch1")).wait(60)
            _time.sleep(0.5)  # idle gap
            service.submit(dirty_language_table.copy("batch2")).wait(60)
            stats = service.stats()
        assert stats.jobs_succeeded == 2
        # Busy wall time banks both batch spans but not the idle half-second.
        assert stats.wall_seconds < stats.run_seconds_total + 0.4


class _GatedLLM(SimulatedSemanticLLM):
    """A simulated model that blocks until the test opens the gate."""

    def __init__(self, gate: threading.Event):
        super().__init__()
        self._gate = gate

    def _complete(self, prompt, system=None):
        assert self._gate.wait(timeout=30), "test gate was never opened"
        return super()._complete(prompt, system=system)


class TestCancellation:
    def test_cancel_queued_jobs_while_worker_busy(self, dirty_language_table):
        gate = threading.Event()
        service = CleaningService(workers=1, llm_factory=lambda: _GatedLLM(gate))
        try:
            running = service.submit(dirty_language_table, name="running-job")
            queued = [
                service.submit(dirty_language_table.copy(f"queued-{i}"), name=f"queued-{i}")
                for i in range(3)
            ]
            assert service.cancel(queued[0])
            assert service.cancel(queued[2])
            gate.set()
            results = service.wait_all(timeout=60)
        finally:
            gate.set()
            service.shutdown()
        statuses = {r.table_name: r.status for r in results}
        assert statuses["running-job"] is JobStatus.SUCCEEDED
        assert statuses["queued-0"] is JobStatus.CANCELLED
        assert statuses["queued-1"] is JobStatus.SUCCEEDED
        assert statuses["queued-2"] is JobStatus.CANCELLED
        stats = service.stats()
        assert stats.jobs_cancelled == 2
        assert stats.jobs_succeeded == 2

    def test_cancel_finished_job_is_noop(self, dirty_language_table):
        with CleaningService(workers=1) as service:
            job = service.submit(dirty_language_table)
            job.wait(timeout=60)
            assert not service.cancel(job)


class TestFailureIsolation:
    def test_one_failing_job_does_not_poison_others(self, dirty_language_table):
        class ExplodingLLM(SimulatedSemanticLLM):
            def _complete(self, prompt, system=None):
                raise RuntimeError("model outage")

        calls = {"n": 0}

        def factory():
            calls["n"] += 1
            return ExplodingLLM() if calls["n"] == 1 else SimulatedSemanticLLM()

        # share_cache off: the failing client must not be an accident of caching.
        service = CleaningService(workers=1, llm_factory=factory, share_cache=False)
        try:
            bad = service.submit(dirty_language_table.copy("bad"))
            good = service.submit(dirty_language_table.copy("good"))
            bad_result, good_result = bad.wait(60), good.wait(60)
        finally:
            service.shutdown()
        assert bad_result.status is JobStatus.FAILED
        assert "model outage" in bad_result.error
        assert good_result.status is JobStatus.SUCCEEDED
        assert good_result.cleaning_result is not None


class TestServiceLifecycle:
    def test_submit_after_shutdown_raises(self):
        service = CleaningService(workers=1)
        service.shutdown()
        with pytest.raises(RuntimeError):
            service.submit(Table.from_dict("t", {"a": ["1"]}))

    def test_priorities_order_execution_on_one_worker(self):
        gate = threading.Event()
        table = Table.from_dict(
            "t", {"lang": ["eng"] * 6 + ["English"] * 2, "note": ["ok"] * 6 + ["N/A"] * 2}
        )
        service = CleaningService(workers=1, llm_factory=lambda: _GatedLLM(gate))
        try:
            # The blocker occupies the single worker so the next two queue up.
            service.submit(table.copy("blocker"), priority=0)
            low = service.submit(table.copy("low"), priority=9)
            high = service.submit(table.copy("high"), priority=1)
            gate.set()
            service.wait_all(timeout=60)
        finally:
            gate.set()
            service.shutdown()
        # Submitted low-priority first, yet the high-priority job ran first.
        assert high.started_at is not None and low.started_at is not None
        assert high.started_at < low.started_at
