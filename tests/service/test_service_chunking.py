"""Tests for partitioned (chunked) cleaning."""

from __future__ import annotations

import warnings

import pytest

from repro import CocoonCleaner, load_dataset
from repro.dataframe import Table
from repro.llm import PromptCacheStore, SimulatedSemanticLLM
from repro.service import CleaningService, ChunkedCleaningResult, clean_chunked
from repro.service.chunking import SAFE_CHUNK_ROWS_FLOOR


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital", seed=0, scale=0.2)


@pytest.fixture(scope="module")
def hospital_whole(hospital):
    return CocoonCleaner().clean(hospital.dirty)


class TestChunkedMatchesWholeTable:
    def test_hospital_two_chunks(self, hospital, hospital_whole):
        chunked = clean_chunked(hospital.dirty, chunk_rows=100)
        assert isinstance(chunked, ChunkedCleaningResult)
        assert chunked.chunk_count == 2
        assert not chunked.fell_back
        assert chunked.cleaned_table == hospital_whole.cleaned_table

    def test_hospital_four_chunks_parallel(self, hospital, hospital_whole):
        # chunk_rows=50 sits below the statistical floor, so the run warns.
        with pytest.warns(UserWarning, match="statistically safe floor"):
            chunked = clean_chunked(hospital.dirty, chunk_rows=50, max_workers=4)
        assert chunked.chunk_count == 4
        assert chunked.parallel_workers == 4
        assert chunked.cleaned_table == hospital_whole.cleaned_table

    def test_repairs_carry_global_row_ids(self, hospital):
        chunked = clean_chunked(hospital.dirty, chunk_rows=100)
        rows = {repair.row_id for repair in chunked.repairs}
        # Repairs must land in the second chunk too, addressed by original row.
        assert any(row_id >= 100 for row_id in rows)
        assert all(0 <= row_id < hospital.dirty.num_rows for row_id in rows)

    def test_sql_script_documents_chunks(self, hospital):
        chunked = clean_chunked(hospital.dirty, chunk_rows=100)
        assert "chunk 0" in chunked.sql_script
        assert "chunk 1" in chunked.sql_script
        assert "table-level pass on the merged result" in chunked.sql_script

    def test_shared_cache_across_chunks_preserves_output(self, hospital, hospital_whole):
        store = PromptCacheStore()
        chunked = clean_chunked(hospital.dirty, chunk_rows=100, cache_store=store)
        assert chunked.cleaned_table == hospital_whole.cleaned_table
        assert store.stats()["size"] > 0


class TestEmptyTableAndFloorWarning:
    def test_empty_table_returns_empty_result_without_pipeline(self):
        empty = Table.from_dict("empty", {"a": [], "b": []})
        calls = []

        def counting_llm():
            llm = SimulatedSemanticLLM()
            calls.append(llm)
            return llm

        result = clean_chunked(empty, chunk_rows=200, llm_factory=counting_llm)
        assert isinstance(result, ChunkedCleaningResult)
        assert result.cleaned_table.num_rows == 0
        assert result.cleaned_table.column_names == ["a", "b"]
        assert result.chunk_count == 0
        assert result.llm_calls == 0
        assert not result.fell_back
        assert "no rows" in result.sql_script
        assert not calls  # no LLM was even constructed

    def test_small_chunk_rows_warns_below_safe_floor(self, hospital):
        with pytest.warns(UserWarning, match="statistically safe floor"):
            clean_chunked(hospital.dirty, chunk_rows=SAFE_CHUNK_ROWS_FLOOR - 90)

    def test_no_warning_at_or_above_floor(self, hospital):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clean_chunked(hospital.dirty, chunk_rows=SAFE_CHUNK_ROWS_FLOOR)

    def test_no_warning_when_table_fits_one_chunk(self):
        small = Table.from_dict("tiny", {"a": ["x", "y"]})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clean_chunked(small, chunk_rows=10)


class TestSingleChunkAndFallback:
    def test_table_smaller_than_chunk_uses_whole_table(self, hospital, hospital_whole):
        chunked = clean_chunked(hospital.dirty, chunk_rows=10_000)
        assert chunked.chunk_count == 1
        assert not chunked.fell_back
        assert chunked.cleaned_table == hospital_whole.cleaned_table

    def test_chunk_failure_falls_back_to_whole_table(self, hospital, hospital_whole):
        class ExplodingLLM(SimulatedSemanticLLM):
            def _complete(self, prompt, system=None):
                raise RuntimeError("chunk worker outage")

        built = {"n": 0}

        def flaky_factory():
            # The first two clients (one per chunk) explode; the fallback's
            # whole-table client works.
            built["n"] += 1
            return ExplodingLLM() if built["n"] <= 2 else SimulatedSemanticLLM()

        chunked = clean_chunked(hospital.dirty, chunk_rows=100, llm_factory=flaky_factory)
        assert chunked.fell_back
        assert chunked.chunk_count == 1
        assert chunked.cleaned_table == hospital_whole.cleaned_table

    def test_chunk_rows_must_be_positive(self, hospital):
        with pytest.raises(ValueError):
            clean_chunked(hospital.dirty, chunk_rows=0)


class TestServiceChunkedJobs:
    def test_service_runs_chunked_jobs(self, hospital, hospital_whole):
        with CleaningService(workers=2, default_chunk_rows=100) as service:
            job = service.submit(hospital.dirty)
            result = job.wait(timeout=300)
        assert result.ok
        assert result.chunked
        assert result.chunk_count == 2
        assert result.cleaning_result.cleaned_table == hospital_whole.cleaned_table
        stats = service.stats()
        assert stats.chunked_jobs == 1

    def test_per_job_chunk_override(self, hospital):
        with CleaningService(workers=2, default_chunk_rows=100) as service:
            job = service.submit(hospital.dirty, chunk_rows=10_000)
            result = job.wait(timeout=300)
        assert result.ok
        assert not result.chunked
