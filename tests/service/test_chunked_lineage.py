"""Lineage and tracing through the chunked cleaning path.

The chunk recorders (disjoint global row-id ranges) plus the table-level
pass merge into one job-wide recorder that must satisfy the same
differential gate as the whole-table pipeline, and each chunk's span must
hang off the ``pipeline.clean_chunked`` parent even though chunks run on
pool threads.
"""

from __future__ import annotations

import pytest

from repro import load_dataset
from repro import obs
from repro.obs import get_tracer
from repro.service import clean_chunked

from tests.obs.test_lineage_differential import assert_gate


def all_spans(tracer):
    """Every span in the tracer, flattened (fragments nest their children)."""

    def walk(span):
        yield span
        for child in span.children:
            yield from walk(child)

    return [
        span
        for trace_id in tracer.trace_ids()
        for fragment in tracer.fragments(trace_id)
        for span in walk(fragment)
    ]


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital", seed=0, scale=0.2)


class TestChunkedLineageGate:
    def test_merged_lineage_explains_exactly_the_diff(self, hospital):
        chunked = clean_chunked(hospital.dirty, chunk_rows=100)
        assert not chunked.fell_back
        assert chunked.chunk_count >= 2
        assert chunked.lineage is not None
        assert_gate(chunked.lineage, hospital.dirty, chunked.cleaned_table)

    def test_lineage_spans_every_chunk(self, hospital):
        chunked = clean_chunked(hospital.dirty, chunk_rows=100)
        rows = {r["row_id"] for r in chunked.lineage.records}
        # Both chunks contributed records, addressed by original row position.
        assert any(row_id < 100 for row_id in rows)
        assert any(row_id >= 100 for row_id in rows)

    def test_single_chunk_path_carries_lineage(self, hospital):
        chunked = clean_chunked(hospital.dirty, chunk_rows=10_000)
        assert chunked.chunk_count == 1
        assert chunked.lineage is not None
        assert_gate(chunked.lineage, hospital.dirty, chunked.cleaned_table)


class TestChunkSpans:
    def test_chunk_spans_parent_under_clean_chunked(self, hospital):
        tracer = get_tracer()
        obs.configure(enabled=True)
        tracer.clear()
        try:
            clean_chunked(hospital.dirty, chunk_rows=100)
            spans = all_spans(tracer)
        finally:
            tracer.clear()
        parents = [s for s in spans if s.name == "pipeline.clean_chunked"]
        chunks = [s for s in spans if s.name == "pipeline.chunk"]
        assert len(parents) == 1
        assert len(chunks) == 2
        for chunk_span in chunks:
            assert chunk_span.parent_id == parents[0].span_id
            assert chunk_span.trace_id == parents[0].trace_id

    def test_lineage_records_reference_chunk_spans(self, hospital):
        tracer = get_tracer()
        obs.configure(enabled=True)
        tracer.clear()
        try:
            chunked = clean_chunked(hospital.dirty, chunk_rows=100)
            spans = {span.span_id for span in all_spans(tracer)}
        finally:
            tracer.clear()
        traced = [r for r in chunked.lineage.records if r["span_id"] is not None]
        assert traced, "lineage records must carry trace refs when tracing is on"
        # Each record's span ref points at a span that actually exists.
        assert {r["span_id"] for r in traced} <= spans

    def test_tracing_disabled_leaves_refs_null(self, hospital):
        obs.configure(enabled=False)
        try:
            chunked = clean_chunked(hospital.dirty, chunk_rows=100)
        finally:
            obs.configure(enabled=True)
        assert all(r["span_id"] is None for r in chunked.lineage.records)
        assert all(r["trace_id"] is None for r in chunked.lineage.records)
