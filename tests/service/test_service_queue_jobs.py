"""Unit tests for the job queue and job lifecycle objects."""

from __future__ import annotations

import threading

import pytest

from repro.dataframe import Table
from repro.service import CleaningJob, JobQueue, JobStatus, QueueClosed


def _job(name: str, priority: int = 0) -> CleaningJob:
    table = Table.from_dict(name, {"a": ["1", "2"]})
    return CleaningJob(table=table, priority=priority, name=name)


class TestJobQueue:
    def test_fifo_within_priority(self):
        queue = JobQueue()
        jobs = [_job(f"j{i}") for i in range(5)]
        for job in jobs:
            queue.put(job)
        popped = [queue.get() for _ in range(5)]
        assert [j.name for j in popped] == [f"j{i}" for i in range(5)]

    def test_lower_priority_number_pops_first(self):
        queue = JobQueue()
        low = _job("low-urgency", priority=10)
        high = _job("high-urgency", priority=1)
        mid = _job("mid-urgency", priority=5)
        for job in (low, high, mid):
            queue.put(job)
        names = [queue.get().name for _ in range(3)]
        assert names == ["high-urgency", "mid-urgency", "low-urgency"]

    def test_cancelled_jobs_are_skipped(self):
        queue = JobQueue()
        first, second = _job("first"), _job("second")
        queue.put(first)
        queue.put(second)
        assert first.cancel()
        assert queue.get().name == "second"
        assert len(queue) == 0

    def test_get_returns_none_when_closed_and_drained(self):
        queue = JobQueue()
        job = _job("only")
        queue.put(job)
        queue.close()
        assert queue.get() is job
        assert queue.get() is None

    def test_put_after_close_raises(self):
        queue = JobQueue()
        queue.close()
        with pytest.raises(QueueClosed):
            queue.put(_job("late"))

    def test_close_wakes_blocked_consumer(self):
        queue = JobQueue()
        seen = []

        def consume():
            seen.append(queue.get())

        thread = threading.Thread(target=consume)
        thread.start()
        queue.close()
        thread.join(timeout=5)
        assert not thread.is_alive()
        assert seen == [None]

    def test_get_timeout_returns_none(self):
        queue = JobQueue()
        assert queue.get(timeout=0.05) is None


class TestCleaningJob:
    def test_cancel_only_before_running(self):
        job = _job("x")
        assert job.mark_running()
        assert not job.cancel()
        assert job.status is JobStatus.RUNNING

    def test_cancel_settles_job_with_result(self):
        job = _job("x")
        assert job.cancel()
        assert job.done
        assert job.status is JobStatus.CANCELLED
        result = job.wait(timeout=1)
        assert result is not None and result.status is JobStatus.CANCELLED
        assert not result.ok

    def test_mark_running_fails_after_cancel(self):
        job = _job("x")
        job.cancel()
        assert not job.mark_running()

    def test_job_ids_are_unique(self):
        ids = {(_job("a")).job_id for _ in range(10)}
        assert len(ids) == 10

    def test_terminal_statuses(self):
        assert JobStatus.SUCCEEDED.terminal
        assert JobStatus.FAILED.terminal
        assert JobStatus.CANCELLED.terminal
        assert not JobStatus.PENDING.terminal
        assert not JobStatus.RUNNING.terminal
