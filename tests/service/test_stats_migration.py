"""Differential test: the registry-backed StatsCollector vs its predecessor.

The collector used to aggregate ``JobResult`` objects into plain lists; it is
now a façade over :class:`repro.obs.metrics.MetricsRegistry`.  This test
replays identical job streams through the migrated collector and through an
inline re-implementation of the legacy aggregation, and requires every
``ServiceStats`` field to agree — except ``run_seconds_p50``, where the
legacy ``round``-based nearest-rank was deliberately replaced by linear
interpolation (the old value is asserted against the *new* definition
instead).
"""

import random
from typing import List

import pytest

from repro.obs.metrics import MetricsRegistry, percentile
from repro.service.jobs import JobResult, JobStatus
from repro.service.stats import ServiceStats, StatsCollector


def _legacy_snapshot(submitted: int, results: List[JobResult], cache_stats=None) -> ServiceStats:
    """The pre-migration aggregation, verbatim (minus the wall clock)."""
    stats = ServiceStats(jobs_submitted=submitted)
    run_times: List[float] = []
    wait_times: List[float] = []
    for result in results:
        if result.status is JobStatus.SUCCEEDED:
            stats.jobs_succeeded += 1
            stats.rows_cleaned += result.rows
            stats.cells_repaired += result.cell_repairs
            stats.rows_removed += result.removed_rows
            stats.llm_calls += result.llm_calls
            run_times.append(result.run_seconds)
            wait_times.append(result.wait_seconds)
            if result.chunked:
                stats.chunked_jobs += 1
            if result.fell_back:
                stats.fallback_jobs += 1
        elif result.status is JobStatus.FAILED:
            stats.jobs_failed += 1
        elif result.status is JobStatus.CANCELLED:
            stats.jobs_cancelled += 1
    if run_times:
        ordered = sorted(run_times)
        stats.run_seconds_total = sum(run_times)
        stats.run_seconds_avg = stats.run_seconds_total / len(run_times)
        stats.run_seconds_p50 = percentile(ordered, 0.5)
        stats.run_seconds_max = ordered[-1]
    if wait_times:
        stats.wait_seconds_avg = sum(wait_times) / len(wait_times)
    if cache_stats:
        stats.cache_hits = int(cache_stats.get("hits", 0))
        stats.cache_misses = int(cache_stats.get("misses", 0))
        stats.cache_hit_rate = float(cache_stats.get("hit_rate", 0.0))
        stats.cache_size = int(cache_stats.get("size", 0))
    return stats


def _random_results(seed: int, count: int) -> List[JobResult]:
    rng = random.Random(seed)
    results = []
    for job_id in range(1, count + 1):
        status = rng.choices(
            [JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED],
            weights=[8, 1, 1],
        )[0]
        results.append(
            JobResult(
                job_id=job_id,
                table_name=f"t{job_id}",
                status=status,
                rows=rng.randrange(0, 5000),
                columns=rng.randrange(1, 20),
                llm_calls=rng.randrange(0, 40),
                cell_repairs=rng.randrange(0, 200),
                removed_rows=rng.randrange(0, 50),
                wait_seconds=rng.uniform(0.0, 2.0),
                run_seconds=rng.uniform(0.001, 10.0),
                chunked=rng.random() < 0.3,
                fell_back=rng.random() < 0.1,
            )
        )
    return results


#: to_dict keys whose values must match exactly (everything but the clock).
_COMPARED = [
    key
    for key in ServiceStats().to_dict()
    if key not in ("wall_seconds", "jobs_per_second", "rows_per_second")
]


@pytest.mark.parametrize("seed,count", [(0, 1), (1, 7), (2, 50), (3, 200)])
def test_migrated_collector_matches_legacy_aggregation(seed, count):
    results = _random_results(seed, count)
    cache_stats = {"hits": 11, "misses": 4, "hit_rate": 11 / 15, "size": 15}

    collector = StatsCollector()
    collector.record_submitted(count)
    for result in results:
        collector.record_result(result)
    migrated = collector.snapshot(cache_stats).to_dict()

    legacy = _legacy_snapshot(count, results, cache_stats).to_dict()
    for key in _COMPARED:
        assert migrated[key] == pytest.approx(legacy[key]), key


def test_empty_collector_matches_legacy_zeros():
    migrated = StatsCollector().snapshot().to_dict()
    legacy = _legacy_snapshot(0, []).to_dict()
    for key in _COMPARED:
        assert migrated[key] == legacy[key], key


def test_submissions_in_multiple_batches_accumulate():
    collector = StatsCollector()
    collector.record_submitted(3)
    collector.record_submitted()
    assert collector.snapshot().jobs_submitted == 4


def test_shared_registry_sees_service_metrics():
    registry = MetricsRegistry()
    collector = StatsCollector(registry=registry)
    collector.record_result(_random_results(4, 1)[0])
    assert "repro_service_jobs_total" in registry.names()
    text = registry.render_prometheus()
    assert "repro_service_jobs_total{" in text


def test_p50_is_interpolated_not_nearest_rank():
    collector = StatsCollector()
    for run_seconds in (1.0, 2.0):
        collector.record_result(
            JobResult(
                job_id=1,
                table_name="t",
                status=JobStatus.SUCCEEDED,
                run_seconds=run_seconds,
            )
        )
    # The round()-based legacy picked 1.0 or 2.0 here; interpolation says 1.5.
    assert collector.snapshot().run_seconds_p50 == pytest.approx(1.5)
