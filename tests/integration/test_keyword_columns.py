"""End-to-end regression: cleaning a table whose columns are SQL keywords.

Before the ``quote_identifier`` fix, the pipeline crashed (ParseError) on the
first generated statement touching a column named ``select``/``order``/
``group`` — names that are perfectly legal in the registries and exports the
paper's reusable scripts are supposed to re-run on.
"""

import pytest

from repro.core import CocoonCleaner
from repro.core.context import ROW_ID_COLUMN
from repro.dataframe.column import Column
from repro.dataframe.table import Table
from repro.datasets import load_dataset
from repro.sql.database import Database

KEYWORD_NAMES = ("select", "order", "group")


@pytest.fixture(scope="module")
def keyword_dataset():
    """A registry-style dirty table whose first columns are SQL keywords."""
    dirty = load_dataset("hospital", seed=11, scale=0.06).dirty
    renames = dict(zip(dirty.column_names[: len(KEYWORD_NAMES)], KEYWORD_NAMES))
    columns = [
        Column(renames.get(c.name, c.name), list(c.values), c.dtype)
        for c in dirty.columns
    ]
    return Table("keyword_registry", columns)


@pytest.fixture(scope="module")
def result(keyword_dataset):
    return CocoonCleaner().clean(keyword_dataset)


class TestKeywordColumnsEndToEnd:
    def test_pipeline_completes(self, result, keyword_dataset):
        assert result.cleaned_table.column_names == keyword_dataset.column_names
        assert result.cleaned_table.num_rows > 0
        # The run must actually have emitted cleaning SQL, otherwise this
        # regression test exercises nothing.
        assert "CREATE OR REPLACE TABLE" in result.sql_script

    def test_keyword_columns_are_quoted_in_the_script(self, result):
        for name in KEYWORD_NAMES:
            assert f'"{name}"' in result.sql_script

    def test_script_replays_to_the_same_cleaned_table(self, result, keyword_dataset):
        # The paper's reusability claim: the emitted script re-runs on the
        # registered dirty table and reproduces the cleaned table exactly.
        db = Database()
        row_ids = Column(
            ROW_ID_COLUMN, list(range(keyword_dataset.num_rows)), None
        )
        db.register(
            Table(result.base_table, [row_ids] + list(keyword_dataset.columns))
        )
        final = db.execute_script(result.sql_script)
        assert final is not None
        replayed = final.drop([ROW_ID_COLUMN]).rename(result.table_name)
        assert replayed == result.cleaned_table

    def test_repairs_land_on_keyword_columns_too(self, result):
        repaired_columns = {repair.column for repair in result.repairs}
        # At least one of the renamed keyword columns received repairs
        # (hospital's first columns are dirty in every seeded variant).
        assert repaired_columns & set(KEYWORD_NAMES)
