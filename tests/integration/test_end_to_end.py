"""Integration tests: full systems on full (small-scale) benchmarks."""

import pytest

from repro.datasets import load_dataset
from repro.evaluation import EvaluationConventions
from repro.evaluation.runner import ExperimentRunner
from repro.experiments import f1_series, format_table1, format_table2, format_table3, run_table2
from repro.experiments.figures import ascii_bar_chart, workflow_trace
from repro.core import CocoonCleaner

SCALE = 0.08
SEED = 7


@pytest.fixture(scope="module")
def runner():
    return ExperimentRunner(seed=SEED)


@pytest.fixture(scope="module")
def hospital():
    return load_dataset("hospital", seed=SEED, scale=SCALE)


@pytest.fixture(scope="module")
def rayyan():
    return load_dataset("rayyan", seed=SEED, scale=SCALE)


class TestCocoonOnBenchmarks:
    def test_cocoon_beats_baselines_on_hospital(self, runner, hospital):
        cocoon = runner.run_system("Cocoon", hospital)
        holoclean = runner.run_system("HoloClean", hospital)
        cleanagent = runner.run_system("CleanAgent", hospital)
        assert cocoon.scores.f1 > holoclean.scores.f1
        assert cocoon.scores.f1 > cleanagent.scores.f1
        assert cocoon.scores.f1 > 0.6

    def test_cocoon_fixes_language_codes_on_rayyan(self, runner, rayyan):
        cocoon = runner.run_system("Cocoon", rayyan)
        assert cocoon.scores.f1 > 0.4
        assert cocoon.scores.precision > 0.5

    def test_cocoon_high_precision_low_recall_on_flights(self, runner):
        flights = load_dataset("flights", seed=SEED, scale=SCALE)
        cocoon = runner.run_system("Cocoon", flights)
        assert cocoon.scores.precision > 0.8
        assert cocoon.scores.recall < 0.75

    def test_cleanagent_and_retclean_near_zero_on_beers(self, runner):
        beers = load_dataset("beers", seed=SEED, scale=SCALE)
        assert runner.run_system("CleanAgent", beers).scores.f1 < 0.1
        assert runner.run_system("RetClean", beers).scores.f1 < 0.2

    def test_workflow_trace_renders(self, hospital):
        result = CocoonCleaner().clean(hospital.dirty)
        trace = workflow_trace(result)
        assert "string_outliers" in trace


class TestExtendedEvaluation:
    def test_table3_cocoon_handles_type_and_dmv_errors(self, hospital):
        runner = ExperimentRunner(conventions=EvaluationConventions.paper_extended(), seed=SEED)
        cocoon = runner.run_system("Cocoon", hospital, clean_override=hospital.extended_clean)
        cleanagent = runner.run_system("CleanAgent", hospital, clean_override=hospital.extended_clean)
        assert cocoon.scores.f1 > 0.8
        assert cocoon.scores.f1 > cleanagent.scores.f1


class TestExperimentFormatting:
    def test_table2_census(self):
        rows = run_table2(scale=SCALE, seed=SEED)
        assert set(rows) == {"hospital", "movies"}
        assert rows["hospital"]["column_type"] > 0
        text = format_table2(rows)
        assert "Table 2" in text

    def test_table1_and_figure_formatting(self, runner, hospital):
        results = [runner.run_system(name, hospital) for name in ("Cocoon", "CleanAgent")]
        table_text = format_table1(results)
        assert "Cocoon" in table_text and "hospital" in table_text
        chart = ascii_bar_chart(f1_series(results))
        assert "Cocoon" in chart

    def test_table3_formatting(self, runner, hospital):
        results = [runner.run_system("Cocoon", hospital, clean_override=hospital.extended_clean)]
        assert "Table 3" in format_table3(results)


class TestSampledEvaluation:
    def test_movies_sampling_for_memory_limited_systems(self, runner):
        movies = load_dataset("movies", seed=SEED, scale=0.2)
        result = runner.run_system("HoloClean", movies)
        assert result.sampled_rows == 1000 or result.sampled_rows is None
