"""The lineage correctness gate: every changed cell is explained, nothing else.

For every registry dataset and every golden scenario, in every execution
path (batch pipeline, plan replay, streaming — including retractions and
mid-stream re-plans), the set of cells carrying lineage records must equal
*exactly* the ``strict_differs`` diff between the input and the cleaned
output: no orphan records, no unexplained changes.  This is the contract
``repro.obs.lineage`` documents and the CI ``lineage-differential`` job
re-runs; weakening it silently breaks the audit trail.
"""

from __future__ import annotations

import functools
from typing import Dict, Set, Tuple

import pytest

from repro.core.context import ROW_ID_COLUMN, CleaningConfig
from repro.core.pipeline import CocoonCleaner
from repro.core.plan import extract_plan
from repro.dataframe import Table
from repro.datasets.base import strict_differs
from repro.datasets.registry import dataset_names, load_dataset
from repro.obs.lineage import LineageRecorder, validate_lineage_record, values_strictly_differ
from repro.scenarios.catalog import builtin_specs
from repro.scenarios.spec import generate
from repro.stream import StreamingCleaner

DATASETS = dataset_names()
SCENARIOS = sorted(builtin_specs())


# -- shared helpers --------------------------------------------------------------------
def strict_diff_cells(
    dirty: Table, cleaned: Table, removed: Set[int]
) -> Dict[Tuple[int, str], Tuple[object, object]]:
    """(row, column) -> (before, after) under the strict predicate, surviving rows only.

    ``cleaned`` holds the survivors in original row order, so surviving row
    ``r`` of the input is output position ``rank(r)``.
    """
    survivors = [r for r in range(dirty.num_rows) if r not in removed]
    assert cleaned.num_rows == len(survivors), (
        f"row parity broken: {dirty.num_rows} in - {len(removed)} removed "
        f"!= {cleaned.num_rows} out"
    )
    shared = [c for c in dirty.column_names if c in cleaned.column_names]
    diff: Dict[Tuple[int, str], Tuple[object, object]] = {}
    for position, row in enumerate(survivors):
        for column in shared:
            before = dirty.column(column).values[row]
            after = cleaned.column(column).values[position]
            if strict_differs(before, after):
                diff[(row, column)] = (before, after)
    return diff


def assert_gate(recorder: LineageRecorder, dirty: Table, cleaned: Table) -> None:
    """The differential gate proper, with a readable failure mode."""
    removed = recorder.removed_row_ids()
    diff = strict_diff_cells(dirty, cleaned, removed)
    cells = recorder.changed_cells()
    orphans = set(cells) - set(diff)
    unexplained = set(diff) - set(cells)
    assert not orphans, f"lineage records for unchanged cells: {sorted(orphans)[:10]}"
    assert not unexplained, f"changed cells without lineage: {sorted(unexplained)[:10]}"
    # Values must agree too, not just the cell set.
    for cell, (before, after) in diff.items():
        lineage_before, lineage_after = cells[cell]
        assert not values_strictly_differ(lineage_before, before), (cell, lineage_before, before)
        assert not values_strictly_differ(lineage_after, after), (cell, lineage_after, after)
    for record in recorder.records:
        validate_lineage_record(record)


def table_slices(table: Table, parts: int) -> list:
    bounds = [round(i * table.num_rows / parts) for i in range(parts + 1)]
    return [
        table.take(list(range(start, end)))
        for start, end in zip(bounds, bounds[1:])
        if end > start
    ]


@functools.lru_cache(maxsize=None)
def batch_run(name: str):
    ds = load_dataset(name)
    return ds, CocoonCleaner().clean(ds.dirty)


@functools.lru_cache(maxsize=None)
def scenario_run(name: str):
    generated = generate(builtin_specs()[name])
    return generated, CocoonCleaner().clean(generated.dataset.dirty)


# -- registry datasets -----------------------------------------------------------------
class TestRegistryDatasets:
    @pytest.mark.parametrize("name", DATASETS)
    def test_batch_gate(self, name):
        ds, result = batch_run(name)
        assert result.lineage is not None
        assert_gate(result.lineage, ds.dirty, result.cleaned_table)

    @pytest.mark.parametrize("name", DATASETS)
    def test_batch_removal_parity(self, name):
        _, result = batch_run(name)
        assert result.lineage.removed_row_ids() == set(result.removed_row_ids)

    @pytest.mark.parametrize("name", DATASETS)
    def test_replay_gate_and_step_id_parity(self, name):
        ds, result = batch_run(name)
        plan = extract_plan(result)
        working = CocoonCleaner._with_row_ids(ds.dirty, plan.base_table)
        recorder = LineageRecorder(phase="replay")
        replayed = plan.replay_row_local(working, lineage=recorder)
        assert_gate(recorder, ds.dirty, replayed.drop([ROW_ID_COLUMN]))
        # The replay records the very same step ids the batch run recorded.
        batch_ids = {r["step_id"] for r in result.lineage.records}
        replay_ids = {r["step_id"] for r in recorder.records}
        assert replay_ids <= batch_ids, replay_ids - batch_ids

    @pytest.mark.parametrize("name", DATASETS)
    def test_stream_gate(self, name):
        ds = load_dataset(name)
        stream = StreamingCleaner(name, detect_drift=False)
        for batch in table_slices(ds.dirty, 3):
            stream.process_batch(batch)
        assert_gate(stream.lineage, ds.dirty, stream.cleaned_table())


# -- golden scenarios ------------------------------------------------------------------
class TestGoldenScenarios:
    @pytest.mark.parametrize("name", SCENARIOS)
    def test_batch_gate(self, name):
        generated, result = scenario_run(name)
        assert result.lineage is not None
        assert_gate(result.lineage, generated.dataset.dirty, result.cleaned_table)

    @pytest.mark.parametrize("name", SCENARIOS)
    def test_stream_gate(self, name):
        generated = generate(builtin_specs()[name])
        spec = generated.spec
        config = (
            CleaningConfig(enabled_issues=list(spec.cleaning_issues))
            if spec.cleaning_issues is not None
            else None
        )
        stream = StreamingCleaner(
            spec.table_name,
            config=config,
            detect_drift=spec.expect_drift,
            prime_rows=generated.prime_rows,
        )
        replans = 0
        for batch in generated.batches():
            result = stream.process_batch(batch)
            if result.drifted_columns:
                replans += 1
        if spec.expect_drift:
            # The drift path rebuilds lineage from scratch ("replan" phase);
            # the gate must hold on the rebuilt trail too.
            assert replans >= 1
        assert_gate(stream.lineage, generated.dataset.dirty, stream.cleaned_table())


# -- retractions -----------------------------------------------------------------------
class TestRetractions:
    """Keep-best uniqueness displaces an already-emitted row mid-stream."""

    @staticmethod
    def _stream():
        # record_id reads as an identifier whose unique ratio sits in the
        # detection band [0.95, 1.0) (one duplicate key in 20 rows), and
        # updated_at matches the simulated LLM's order-column heuristic, so
        # priming derives `QUALIFY ... PARTITION BY record_id ORDER BY
        # updated_at DESC` — the non-monotonic keep-best fold.
        ids = [f"r{i}" for i in range(1, 20)] + ["r1"]
        prime = Table.from_dict(
            "records",
            {
                "record_id": ids,
                "updated_at": list(range(10, 10 + len(ids))),
                "value": [f"v{i}" for i in range(len(ids))],
            },
        )
        late = Table.from_dict(
            "records",
            {
                "record_id": ["r2", "r99"],
                "updated_at": [999, 5],
                "value": ["v2-updated", "v-new"],
            },
        )
        stream = StreamingCleaner(
            "records",
            config=CleaningConfig(enabled_issues=["column_uniqueness"]),
            detect_drift=False,
        )
        dirty = prime.concat_rows(late)
        return stream, [prime, late], dirty

    def test_retraction_recorded_and_gate_holds(self):
        stream, batches, dirty = self._stream()
        results = [stream.process_batch(batch) for batch in batches]
        assert any(s.kind == "unique" for s in stream.plan.steps), (
            "prime window did not derive a uniqueness step; "
            f"plan = {[s.kind for s in stream.plan.steps]}"
        )
        # The primed r2 (row id 1) loses to the later row with the higher
        # updated_at — an emitted row vanishing is a retraction.
        assert results[1].retracted_row_ids == [1], (
            "expected the later r2 row to displace the primed one; "
            f"got retractions {results[1].retracted_row_ids}"
        )
        retracted = [
            r for r in stream.lineage.records
            if r["event"] == "remove" and r["mode"] == "retracted"
        ]
        assert [r["row_id"] for r in retracted] == [1]
        assert retracted[0]["operator"] == "column_uniqueness"
        assert retracted[0]["kind"] == "unique"
        assert_gate(stream.lineage, dirty, stream.cleaned_table())
