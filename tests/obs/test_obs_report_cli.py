"""Flame/EXPLAIN renderings and the ``python -m repro.obs`` CLI."""

import json

from repro.obs.cli import main as obs_main
from repro.obs.report import render_explain, render_flame, render_file_summary, summarise_spans
from repro.obs.trace import Tracer


def _sample_trace():
    tracer = Tracer(enabled=True)
    with tracer.span("service.job", trace_id="job-1", job_id=1) as root:
        with tracer.span("pipeline.clean", table="t", rows=10):
            with tracer.span("operator.disguised_missing_value") as op:
                op.count("llm_calls", 2)
                op.count("llm:dmv_detection", 2)
                op.count("cache_hits", 1)
                op.count("cache_misses", 1)
            with tracer.span("sql.query", statement="SELECT * FROM t"):
                with tracer.span("sql.scan", source="t", rows_out=10):
                    pass
                with tracer.span("sql.filter", rows_in=10, rows_out=7):
                    pass
    return root.to_dict()


class TestRenderings:
    def test_flame_lists_every_level_with_share(self):
        text = render_flame(_sample_trace())
        lines = text.splitlines()
        assert lines[0].startswith("service.job")
        assert any(line.strip().startswith("pipeline.clean") for line in lines)
        assert any("operator.disguised_missing_value" in line for line in lines)
        assert any("sql.filter" in line for line in lines)
        assert "100.0%" in lines[0]
        assert "[llm=2, hit=1, miss=1]" in text

    def test_flame_depth_limit(self):
        text = render_flame(_sample_trace(), max_depth=0)
        assert text.count("\n") == 0  # only the root line survives

    def test_explain_report_shows_plan_nodes_and_rows(self):
        doc = _sample_trace()
        sql_doc = doc["children"][0]["children"][1]
        assert sql_doc["name"] == "sql.query"
        report = render_explain(sql_doc)
        assert report.startswith("QUERY")
        assert "SELECT * FROM t" in report
        assert "sql.scan" in report and "rows=10" in report
        assert "sql.filter" in report and "rows 10 -> 7" in report

    def test_explain_without_children(self):
        tracer = Tracer(enabled=True)
        with tracer.span("sql.query", trace_id="q") as sp:
            pass
        assert "(no recorded plan nodes)" in render_explain(sp.to_dict())

    def test_summarise_aggregates_llm_and_sql(self):
        summary = summarise_spans([_sample_trace(), _sample_trace()])
        assert summary["traces"] == 2
        assert summary["llm_by_purpose"] == {"dmv_detection": 4}
        assert summary["cache"] == {"hits": 2, "misses": 2, "hit_rate": 0.5}
        assert summary["by_name"]["sql.filter"]["count"] == 2
        # sql.query itself is not a plan node; scan/filter are.
        assert {label.split()[0] for _, label in summary["sql_nodes"]} == {
            "sql.scan",
            "sql.filter",
        }

    def test_file_summary_mentions_top_spans(self):
        text = render_file_summary([_sample_trace()])
        assert "traces      : 1" in text
        assert "service.job" in text
        assert "llm:dmv_detection" in text


class TestCli:
    def _write_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(json.dumps(_sample_trace()) + "\n", encoding="utf-8")
        return path

    def test_validate_mode(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert obs_main([str(path), "--validate"]) == 0
        assert "1 trace lines, schema ok" in capsys.readouterr().out

    def test_summary_and_flame(self, tmp_path, capsys):
        path = self._write_trace(tmp_path)
        assert obs_main([str(path), "--flame"]) == 0
        out = capsys.readouterr().out
        assert "top spans by cumulative wall time" in out
        assert "--- trace job-1 ---" in out

    def test_missing_file_is_exit_2(self, tmp_path, capsys):
        assert obs_main([str(tmp_path / "nope.jsonl")]) == 2
        assert "no such trace file" in capsys.readouterr().err

    def test_invalid_file_is_exit_1(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"name": "x"}\n', encoding="utf-8")
        assert obs_main([str(path)]) == 1
        assert "invalid trace file" in capsys.readouterr().err

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        assert obs_main([str(path)]) == 0
        assert "empty" in capsys.readouterr().out
