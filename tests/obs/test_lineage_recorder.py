"""Unit tests for the lineage recorder, schema, and query surface."""

from __future__ import annotations

import datetime
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.obs.lineage import (
    LineageRecorder,
    LineageSchemaError,
    json_safe_record,
    lineage_step_id,
    records_from_docs,
    validate_lineage_lines,
    validate_lineage_record,
    values_strictly_differ,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")


def edit(recorder, row, column, before, after, operator="string_outliers", **kw):
    return recorder.record_edit(
        row, column, before, after,
        operator=operator,
        target=kw.pop("target", column),
        kind=kw.pop("kind", "value_map"),
        step_id=kw.pop("step_id", "a" * 16),
        **kw,
    )


class TestStrictPredicate:
    @pytest.mark.parametrize(
        "a,b,differ",
        [
            (None, None, False),
            (None, float("nan"), False),
            (float("nan"), float("nan"), False),
            (None, "", True),
            ("12", 12, False),      # same surface representation
            (12, 12.0, True),       # '12' vs '12.0'
            ("x", "x", False),
            (1.5, "1.5", False),    # same str form
        ],
    )
    def test_cases(self, a, b, differ):
        assert values_strictly_differ(a, b) is differ

    def test_agrees_with_datasets_twin(self):
        from repro.datasets.base import strict_differs

        probes = [None, float("nan"), "", "x", 0, 1, 1.0, "1.0", True, "True", 12, "12"]
        for a in probes:
            for b in probes:
                assert values_strictly_differ(a, b) == strict_differs(a, b), (a, b)


class TestStepId:
    def test_deterministic_and_payload_sensitive(self):
        payload = {"column": "c", "mapping": {"a": "b"}}
        one = lineage_step_id("value_map", "string_outliers", "c", "t1", payload)
        two = lineage_step_id("value_map", "string_outliers", "c", "t1", dict(payload))
        assert one == two and len(one) == 16
        other = lineage_step_id("value_map", "string_outliers", "c", "t1", {"column": "c", "mapping": {"a": "z"}})
        assert other != one

    def test_matches_plan_step_property(self):
        from repro.core.plan import PlanStep

        step = PlanStep(
            kind="value_map", issue_type="string_outliers", target="c",
            sql="", target_table="t1", payload={"column": "c", "mapping": {"a": "b"}},
        )
        assert step.step_id == lineage_step_id(
            "value_map", "string_outliers", "c", "t1", step.payload
        )


class TestRecorder:
    def test_phase_validated(self):
        with pytest.raises(ValueError, match="phase"):
            LineageRecorder(phase="nope")

    def test_changed_cells_composes_chains(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b")
        edit(rec, 0, "c", "b", "final")
        edit(rec, 1, "c", "x", "y")
        edit(rec, 2, "c", "p", "q")
        edit(rec, 2, "c", "q", "p")  # round trip nets out
        assert rec.changed_cells() == {(0, "c"): ("a", "final"), (1, "c"): ("x", "y")}

    def test_removed_rows_excluded_from_changed_cells(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b")
        rec.record_removal(0, operator="duplication", target="t", kind="dedup", step_id="b" * 16)
        assert rec.changed_cells() == {}
        assert rec.removed_row_ids() == {0}

    def test_discard_removals_resurfaces_row(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b")
        rec.record_removal(0, operator="column_uniqueness", target="k", kind="unique",
                           step_id="c" * 16, mode="retracted")
        assert rec.changed_cells() == {}
        assert rec.discard_removals([0, 7]) == 1
        assert rec.changed_cells() == {(0, "c"): ("a", "b")}
        assert rec.discard_removals([0]) == 0

    def test_explain_orders_by_seq_and_includes_removal(self):
        rec = LineageRecorder()
        edit(rec, 3, "c", "a", "b")
        edit(rec, 3, "d", "p", "q")
        rec.record_removal(3, operator="duplication", target="t", kind="dedup", step_id="d" * 16)
        chain = rec.explain(3, "c")
        assert [r["event"] for r in chain] == ["edit", "remove"]
        assert [r["seq"] for r in chain] == sorted(r["seq"] for r in chain)
        assert len(rec.explain(3)) == 3
        assert rec.explain(99) == []

    def test_merge_resequences(self):
        a, b = LineageRecorder(), LineageRecorder()
        edit(a, 0, "c", "x", "y")
        edit(b, 5, "c", "p", "q")
        edit(b, 6, "c", "r", "s")
        a.merge(b)
        assert [r["seq"] for r in a.records] == [1, 2, 3]
        assert len(b.records) == 2  # source untouched

    def test_census_counts(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b", operator="string_outliers")
        edit(rec, 0, "c", "b", "a", operator="column_type")  # round trip: no net cell
        edit(rec, 1, "c", "x", "y", operator="column_type")
        rec.record_removal(2, operator="duplication", target="t", kind="dedup", step_id="e" * 16)
        census = rec.census()
        assert census["string_outliers"] == {"edits": 1, "net_cells": 0, "removed_rows": 0}
        assert census["column_type"] == {"edits": 2, "net_cells": 1, "removed_rows": 0}
        assert census["duplication"] == {"edits": 0, "net_cells": 0, "removed_rows": 1}

    def test_reset_forgets_everything(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b")
        rec.reset()
        assert len(rec) == 0
        edit(rec, 0, "c", "a", "b")
        assert rec.records[0]["seq"] == 1


class TestSchema:
    def make_valid(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b",
             llm=[{"cache_key": "k" * 16, "hit": None, "purpose": "detection"}])
        return rec.records[0]

    def test_valid_record_passes(self):
        validate_lineage_record(self.make_valid())

    @pytest.mark.parametrize("field", ["event", "seq", "row_id", "column", "before",
                                       "after", "decision", "llm", "step_id", "phase"])
    def test_missing_field_rejected(self, field):
        doc = dict(self.make_valid())
        del doc[field]
        with pytest.raises(LineageSchemaError, match="missing"):
            validate_lineage_record(doc)

    def test_edit_without_column_rejected(self):
        doc = dict(self.make_valid())
        doc["column"] = None
        with pytest.raises(LineageSchemaError, match="column"):
            validate_lineage_record(doc)

    def test_bad_mode_rejected(self):
        doc = dict(self.make_valid())
        doc["event"] = "remove"
        doc["mode"] = "vanished"
        with pytest.raises(LineageSchemaError, match="mode"):
            validate_lineage_record(doc)

    def test_edit_with_mode_rejected(self):
        doc = dict(self.make_valid())
        doc["mode"] = "dropped"
        with pytest.raises(LineageSchemaError, match="mode"):
            validate_lineage_record(doc)

    def test_llm_entry_shape_enforced(self):
        doc = dict(self.make_valid())
        doc["llm"] = [{"cache_key": "k"}]
        with pytest.raises(LineageSchemaError, match="llm"):
            validate_lineage_record(doc)

    def test_date_cell_values_are_scalars(self):
        rec = LineageRecorder()
        edit(rec, 0, "c", "05/02/2015", datetime.date(2015, 5, 2), kind="cast")
        validate_lineage_record(rec.records[0])
        safe = json_safe_record(rec.records[0])
        assert safe["after"] == "2015-05-02"
        json.dumps(safe)  # JSON-transportable without default=


class TestJsonlRoundtrip:
    def test_export_validate_rebuild(self, tmp_path):
        rec = LineageRecorder()
        edit(rec, 0, "c", "a", "b")
        edit(rec, 1, "c", None, "filled")
        rec.record_removal(2, operator="duplication", target="t", kind="dedup", step_id="f" * 16)
        path = tmp_path / "lineage.jsonl"
        assert rec.export_jsonl(path) == 3
        docs = validate_lineage_lines(path.read_text().splitlines(), source=str(path))
        rebuilt = records_from_docs(docs)
        assert rebuilt.changed_cells() == rec.changed_cells()
        assert rebuilt.removed_row_ids() == rec.removed_row_ids()
        assert rebuilt.census() == rec.census()

    def test_invalid_line_names_position(self):
        with pytest.raises(LineageSchemaError, match="x:2"):
            validate_lineage_lines(["", '{"event": "edit"}'], source="x")


class TestLineageCli:
    def run_cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", "lineage", *args],
            capture_output=True, text=True, env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
        )

    @pytest.fixture()
    def lineage_file(self, tmp_path):
        rec = LineageRecorder()
        edit(rec, 0, "city", "NYC", "New York")
        edit(rec, 0, "city", "New York", "new york", operator="column_type", kind="cast")
        path = tmp_path / "l.jsonl"
        rec.export_jsonl(path)
        return str(path)

    def test_summary_and_census(self, lineage_file):
        proc = self.run_cli(lineage_file)
        assert proc.returncode == 0, proc.stderr
        assert "2 lineage records: 2 edits, 0 removals" in proc.stdout
        assert "string_outliers" in proc.stdout and "column_type" in proc.stdout

    def test_validate_only(self, lineage_file):
        proc = self.run_cli(lineage_file, "--validate")
        assert proc.returncode == 0
        assert "schema ok" in proc.stdout

    def test_explain_cell(self, lineage_file):
        proc = self.run_cli(lineage_file, "--explain", "0", "--column", "city")
        assert proc.returncode == 0, proc.stderr
        assert "2 record(s)" in proc.stdout
        assert "'NYC' -> 'New York'" in proc.stdout

    def test_invalid_file_exits_1(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"event": "edit"}\n')
        proc = self.run_cli(str(bad))
        assert proc.returncode == 1
        assert "invalid lineage file" in proc.stderr

    def test_column_requires_explain(self, lineage_file):
        proc = self.run_cli(lineage_file, "--column", "city")
        assert proc.returncode == 2
