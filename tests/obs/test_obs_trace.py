"""The tracer: span lifecycle, cross-thread propagation, export, reassembly."""

import json
import threading

import pytest

from repro.obs.schema import TraceSchemaError, validate_span, validate_trace_lines
from repro.obs.trace import NOOP_SPAN, Tracer


class TestSpanLifecycle:
    def test_disabled_tracer_yields_noop(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as sp:
            assert sp is NOOP_SPAN
            assert not sp
            assert sp.trace_id is None
            sp.annotate(rows=3)  # no-ops must absorb the full Span surface
            sp.count("llm_calls")
        assert tracer.trace_ids() == []

    def test_force_creates_root_while_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work", force=True, trace_id="t-1") as sp:
            assert sp.trace_id == "t-1"
        assert tracer.has_trace("t-1")

    def test_children_record_inside_disabled_tracer(self):
        # enabled gates root creation only: once a forced root is open,
        # nested spans always record.
        tracer = Tracer(enabled=False)
        with tracer.span("root", force=True):
            with tracer.span("child") as child:
                assert child is not NOOP_SPAN
        (doc,) = tracer.trace_tree(tracer.trace_ids()[0])
        assert [c["name"] for c in doc["children"]] == ["child"]

    def test_nesting_attrs_counters_and_timing(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer", table="t") as outer:
            with tracer.span("inner", rows=5) as inner:
                inner.count("llm_calls")
                inner.count("llm_calls", 2)
            outer.annotate(rows_out=4)
        (doc,) = tracer.trace_tree(outer.trace_id)
        assert doc["name"] == "outer"
        assert doc["attrs"] == {"table": "t", "rows_out": 4}
        (inner_doc,) = doc["children"]
        assert inner_doc["counters"]["llm_calls"] == 3
        assert doc["wall_seconds"] >= inner_doc["wall_seconds"] >= 0.0
        assert outer.total_count("llm_calls") == 3  # rolls up over children

    def test_exception_marks_span_error_and_reraises(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(RuntimeError):
            with tracer.span("boom", trace_id="t-err"):
                raise RuntimeError("kaput")
        (doc,) = tracer.trace_tree("t-err")
        assert doc["status"] == "error"
        assert "kaput" in doc["error"]

    def test_stack_unwinds_after_exception(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.span("a"):
                raise ValueError()
        assert tracer.current() is None

    def test_to_dict_matches_schema(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root", table="x") as sp:
            with tracer.span("leaf"):
                pass
        validate_span(sp.to_dict())


class TestCrossThread:
    def test_parent_ref_joins_trace_from_another_thread(self):
        """The gateway pattern: request span on one thread, job on another."""
        tracer = Tracer(enabled=True)
        captured = {}

        def worker(ref):
            with tracer.span("service.job", parent_ref=ref, job_id=1) as sp:
                captured["trace_id"] = sp.trace_id
                with tracer.span("pipeline.clean"):
                    pass

        with tracer.span("server.request", trace_id="req-x") as root:
            thread = threading.Thread(target=worker, args=(root.ref(),))
            thread.start()
            thread.join()

        assert captured["trace_id"] == "req-x"
        (doc,) = tracer.trace_tree("req-x")
        assert doc["name"] == "server.request"
        (job,) = doc["children"]
        assert job["name"] == "service.job"
        assert [c["name"] for c in job["children"]] == ["pipeline.clean"]

    def test_parent_ref_records_even_when_disabled(self):
        tracer = Tracer(enabled=False)
        with tracer.span("root", force=True, trace_id="t") as root:
            ref = root.ref()

        def worker():
            with tracer.span("child", parent_ref=ref) as sp:
                assert sp is not NOOP_SPAN

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        roots = tracer.trace_tree("t")
        assert len(roots) == 1  # the fragment nested under the finished root
        assert [c["name"] for c in roots[0]["children"]] == ["child"]

    def test_orphan_fragment_becomes_second_root(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a", trace_id="t"):
            pass
        with tracer.span("b", trace_id="t"):
            pass
        roots = tracer.trace_tree("t")
        assert [doc["name"] for doc in roots] == ["a", "b"]  # sorted by start


class TestStoreAndExport:
    def test_max_traces_evicts_oldest(self):
        tracer = Tracer(enabled=True, max_traces=2)
        for i in range(4):
            with tracer.span("w", trace_id=f"t-{i}"):
                pass
        assert tracer.trace_ids() == ["t-2", "t-3"]
        assert not tracer.has_trace("t-0")

    def test_clear_forgets_everything(self):
        tracer = Tracer(enabled=True)
        with tracer.span("w"):
            pass
        tracer.clear()
        assert tracer.trace_ids() == []

    def test_jsonl_export_validates(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True, export_path=path)
        for i in range(3):
            with tracer.span("job", trace_id=f"t-{i}", index=i):
                with tracer.span("step"):
                    pass
        lines = path.read_text(encoding="utf-8").splitlines()
        docs = validate_trace_lines(lines)
        assert [doc["trace_id"] for doc in docs] == ["t-0", "t-1", "t-2"]
        assert docs[0]["children"][0]["name"] == "step"

    def test_export_serialises_non_json_attrs(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(enabled=True, export_path=path)
        with tracer.span("w", trace_id="t", table=object()):
            pass
        json.loads(path.read_text(encoding="utf-8"))  # default=str fallback


class TestSchemaValidation:
    def _valid_doc(self):
        tracer = Tracer(enabled=True)
        with tracer.span("w", trace_id="t") as sp:
            pass
        return sp.to_dict()

    def test_missing_field_rejected(self):
        doc = self._valid_doc()
        del doc["wall_seconds"]
        with pytest.raises(TraceSchemaError, match="missing fields"):
            validate_span(doc)

    def test_bad_status_rejected(self):
        doc = self._valid_doc()
        doc["status"] = "meh"
        with pytest.raises(TraceSchemaError, match="status"):
            validate_span(doc)

    def test_child_trace_id_mismatch_rejected(self):
        doc = self._valid_doc()
        child = self._valid_doc()
        child["trace_id"] = "other"
        child["parent_id"] = doc["span_id"]
        doc["children"].append(child)
        with pytest.raises(TraceSchemaError, match="trace_id"):
            validate_span(doc)

    def test_invalid_json_line_rejected(self):
        with pytest.raises(TraceSchemaError, match="not valid JSON"):
            validate_trace_lines(["{nope"])
