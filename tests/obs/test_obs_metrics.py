"""The metrics registry: exactness, registration rules, Prometheus text."""

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    percentile,
    prometheus_gauges_from,
)


class TestPercentile:
    def test_empty_returns_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.0) == 7.0
        assert percentile([7.0], 0.5) == 7.0
        assert percentile([7.0], 1.0) == 7.0

    def test_interpolates_between_ranks(self):
        # The historical round()-based nearest-rank picked an endpoint here.
        assert percentile([1.0, 2.0], 0.5) == pytest.approx(1.5)
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)

    def test_quartiles_of_five(self):
        values = [10.0, 20.0, 30.0, 40.0, 50.0]
        assert percentile(values, 0.25) == pytest.approx(20.0)
        assert percentile(values, 0.5) == pytest.approx(30.0)
        assert percentile(values, 0.75) == pytest.approx(40.0)

    def test_fraction_clamped_to_range(self):
        values = [1.0, 2.0, 3.0]
        assert percentile(values, -0.5) == 1.0
        assert percentile(values, 1.5) == 3.0

    def test_monotone_in_fraction(self):
        values = sorted([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0])
        points = [percentile(values, f / 20.0) for f in range(21)]
        assert points == sorted(points)


class TestCounterAndGauge:
    def test_counter_inc_and_total(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", label_names=("status",))
        counter.inc(status="ok")
        counter.inc(2, status="ok")
        counter.inc(status="failed")
        assert counter.value(status="ok") == 3
        assert counter.value(status="failed") == 1
        assert counter.value(status="never-seen") == 0
        assert counter.total() == 4

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("n")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(5)
        gauge.inc(2)
        gauge.inc(-3)
        assert gauge.value() == 4

    def test_unknown_label_rejected(self):
        counter = MetricsRegistry().counter("jobs_total", label_names=("status",))
        with pytest.raises(ValueError):
            counter.inc(colour="red")


class TestHistogram:
    def test_count_sum_samples(self):
        hist = MetricsRegistry().histogram("seconds", max_samples=None)
        for value in (0.1, 0.2, 0.3):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.sum() == pytest.approx(0.6)
        assert hist.samples() == [0.1, 0.2, 0.3]  # observation order kept
        assert hist.max() == pytest.approx(0.3)
        assert hist.percentile(0.5) == pytest.approx(0.2)

    def test_bounded_retention_keeps_exact_count(self):
        hist = MetricsRegistry().histogram("seconds", max_samples=4)
        for i in range(10):
            hist.observe(float(i))
        assert hist.count() == 10  # aggregate stays exact
        assert len(hist.samples()) == 4  # raw retention bounded

    def test_buckets_must_be_sorted(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("bad", buckets=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        a = registry.counter("jobs_total", label_names=("status",))
        b = registry.counter("jobs_total", label_names=("status",))
        assert a is b

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("jobs_total")

    def test_label_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", label_names=("status",))
        with pytest.raises(ValueError, match="labels"):
            registry.counter("jobs_total", label_names=("state",))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("jobs_total", label_names=("status",)).inc(status="ok")
        registry.gauge("depth").set(3)
        registry.histogram("seconds").observe(0.25)
        snap = registry.snapshot()
        assert set(snap) == {"jobs_total", "depth", "seconds"}
        assert snap["jobs_total"]["type"] == "counter"
        assert snap["jobs_total"]["values"] == [{"labels": {"status": "ok"}, "value": 1}]
        assert snap["seconds"]["values"][0]["value"]["count"] == 1


class TestPrometheusRendering:
    def test_counter_families(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_jobs_total", help="Jobs", label_names=("status",))
        counter.inc(3, status="ok")
        text = registry.render_prometheus()
        assert "# HELP repro_jobs_total Jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{status="ok"} 3' in text
        assert text.endswith("\n")

    def test_label_value_escaping(self):
        registry = MetricsRegistry()
        registry.counter("events_total", label_names=("event",)).inc(event='a"b\\c\nd')
        line = [l for l in registry.render_prometheus().splitlines() if l.startswith("events_total{")][0]
        assert '\\"' in line and "\\\\" in line and "\\n" in line

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("seconds", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        lines = registry.render_prometheus().splitlines()
        assert 'seconds_bucket{le="0.1"} 1' in lines
        assert 'seconds_bucket{le="1"} 3' in lines
        assert 'seconds_bucket{le="+Inf"} 4' in lines
        assert "seconds_sum 6.05" in lines
        assert "seconds_count 4" in lines

    def test_unlabelled_counter_renders_zero(self):
        registry = MetricsRegistry()
        registry.counter("untouched_total", help="never incremented")
        assert "untouched_total 0" in registry.render_prometheus()

    def test_gauges_from_mapping_bridge(self):
        registry = MetricsRegistry()
        prometheus_gauges_from(
            registry,
            "repro_cache",
            {"hits": 5, "hit_rate": 0.5, "enabled": True, "name": "skipped"},
        )
        text = registry.render_prometheus()
        assert "repro_cache_hits 5" in text
        assert "repro_cache_hit_rate 0.5" in text
        assert "repro_cache_enabled 1" in text
        assert "name" not in text  # non-numeric values are skipped

    def test_default_buckets_cover_subsecond_to_minutes(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 60.0


class TestConcurrency:
    def test_no_lost_increments_under_contention(self):
        """N threads hammer a labelled counter + histogram; totals stay exact."""
        registry = MetricsRegistry()
        counter = registry.counter("ops_total", label_names=("worker",))
        hist = registry.histogram("op_seconds", max_samples=None)
        threads, per_thread = 8, 2000
        # Parties: the writer threads, the reader thread, and this test thread.
        start = threading.Barrier(threads + 2)
        stop_reading = threading.Event()

        def writer(worker_id):
            start.wait()
            for i in range(per_thread):
                counter.inc(worker=str(worker_id))
                hist.observe(0.001 * (i % 7))

        def reader():
            # Snapshots and renders race the writers; they must never crash
            # and never observe more than the final totals.
            start.wait()
            while not stop_reading.is_set():
                snap_total = counter.total()
                assert 0 <= snap_total <= threads * per_thread
                registry.snapshot()
                registry.render_prometheus()

        workers = [threading.Thread(target=writer, args=(i,)) for i in range(threads)]
        observer = threading.Thread(target=reader)
        for thread in workers:
            thread.start()
        observer.start()
        start.wait()
        for thread in workers:
            thread.join()
        stop_reading.set()
        observer.join()

        assert counter.total() == threads * per_thread
        for worker_id in range(threads):
            assert counter.value(worker=str(worker_id)) == per_thread
        assert hist.count() == threads * per_thread
        assert len(hist.samples()) == threads * per_thread

    def test_concurrent_get_or_create_returns_one_object(self):
        registry = MetricsRegistry()
        results = []
        barrier = threading.Barrier(8)

        def create():
            barrier.wait()
            results.append(registry.counter("shared_total", label_names=("k",)))

        threads = [threading.Thread(target=create) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len({id(obj) for obj in results}) == 1
