"""Renderers must survive traces with orphan fragments (evicted parents).

The tracer's bounded store evicts oldest traces; a long job can leave a
child fragment whose parent span was recorded and evicted before the child
finished.  The renderers used to assume every doc is a complete tree —
these tests pin the hardened behaviour: a synthetic root groups the
fragments and partial/foreign docs render as zeros, never as a crash.
"""

from __future__ import annotations

import pytest

from repro.obs.report import (
    render_explain,
    render_file_summary,
    render_flame,
    summarise_spans,
    synthesize_root,
)
from repro.obs.trace import Tracer


def orphan_fragments():
    """Drive a real eviction: the parent's trace is pushed out of a
    ``max_traces=1`` store while a cross-thread child is still running."""
    tracer = Tracer(enabled=True, max_traces=1)
    with tracer.span("job.parent") as parent:
        ref = parent.ref()
    assert tracer.has_trace(ref.trace_id)
    # Another trace arrives; the one-slot store evicts the parent's.
    with tracer.span("job.unrelated"):
        pass
    assert not tracer.has_trace(ref.trace_id)
    # The child finishes afterwards, carrying a parent_id that now points
    # at nothing — the orphan fragment.
    with tracer.span("op.child", parent_ref=ref, rows=7):
        pass
    with tracer.span("op.sibling", parent_ref=ref):
        pass
    return tracer.trace_tree(ref.trace_id)


class TestTracerOrphans:
    def test_eviction_produces_orphan_roots(self):
        docs = orphan_fragments()
        assert len(docs) == 2
        assert {doc["name"] for doc in docs} == {"op.child", "op.sibling"}
        # Both still carry the dangling parent_id — trace_tree keeps them
        # as roots instead of dropping or crashing.
        assert all(doc["parent_id"] is not None for doc in docs)


class TestSynthesizeRoot:
    def test_empty_is_none(self):
        assert synthesize_root([]) is None
        assert synthesize_root([None, "junk"]) is None

    def test_single_fragment_untouched(self):
        doc = {"name": "solo", "wall_seconds": 1.0}
        assert synthesize_root([doc]) is doc

    def test_orphans_grouped_under_synthetic_root(self):
        docs = orphan_fragments()
        root = synthesize_root(docs, trace_id="t-1")
        assert root["name"] == "(orphaned spans)"
        assert root["trace_id"] == "t-1"
        assert root["attrs"] == {"synthetic": True, "fragments": 2, "orphans": 2}
        assert root["children"] == docs
        assert root["wall_seconds"] >= max(d["wall_seconds"] for d in docs)
        assert root["parent_id"] is None

    def test_wall_time_spans_the_fragments(self):
        frags = [
            {"name": "a", "started_at": 10.0, "wall_seconds": 2.0},
            {"name": "b", "started_at": 13.0, "wall_seconds": 1.0},
        ]
        root = synthesize_root(frags)
        assert root["started_at"] == 10.0
        assert root["wall_seconds"] == pytest.approx(4.0)  # 10.0 .. 14.0

    def test_fragments_without_timestamps_sum(self):
        frags = [{"name": "a", "wall_seconds": 2.0}, {"name": "b", "wall_seconds": 1.0}]
        assert synthesize_root(frags)["wall_seconds"] == pytest.approx(3.0)


class TestRenderersSurvivePartialDocs:
    # A foreign/older-schema doc: no counters, no children, no timings.
    BARE = {"name": "mystery"}

    def test_flame_renders_orphan_tree(self):
        root = synthesize_root(orphan_fragments())
        text = render_flame(root)
        assert "(orphaned spans)" in text
        assert "op.child" in text and "op.sibling" in text

    def test_flame_handles_bare_doc(self):
        text = render_flame(self.BARE)
        assert "mystery" in text and "0.00ms" in text

    def test_flame_handles_missing_name(self):
        assert "(unnamed)" in render_flame({"wall_seconds": 0.5})

    def test_explain_handles_bare_doc(self):
        text = render_explain(self.BARE)
        assert "no recorded plan nodes" in text

    def test_summary_handles_mixed_docs(self):
        docs = [self.BARE, synthesize_root(orphan_fragments())]
        summary = summarise_spans(docs)
        assert summary["traces"] == 2
        assert "mystery" in summary["by_name"]
        assert "(orphaned spans)" in summary["by_name"]
        text = render_file_summary(docs)
        assert "traces      : 2" in text
