"""CLI smoke test: ``python -m repro.server`` boots, serves, drains on SIGTERM."""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def test_boot_serve_sigterm_drain(tmp_path):
    port_file = tmp_path / "port"
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(REPO_SRC) + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.server",
            "--port",
            "0",
            "--port-file",
            str(port_file),
            "--workers",
            "2",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )
    try:
        deadline = time.time() + 30
        while not port_file.exists() and time.time() < deadline:
            assert process.poll() is None, process.stderr.read().decode()
            time.sleep(0.05)
        assert port_file.exists(), "server never wrote its port file"
        port = int(port_file.read_text().strip())
        base = f"http://127.0.0.1:{port}"

        with urllib.request.urlopen(f"{base}/healthz", timeout=10) as response:
            assert json.loads(response.read())["status"] == "ok"

        body = json.dumps({"csv": "a,b\n1,x\n2,y\n", "name": "smoke"}).encode()
        request = urllib.request.Request(
            f"{base}/v1/jobs", data=body, headers={"Content-Type": "application/json"}
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            job_id = json.loads(response.read())["job_id"]

        # SIGTERM while the job may still be queued: the drain must let it
        # finish before the process exits.
        process.send_signal(signal.SIGTERM)
        _, stderr = process.communicate(timeout=60)
        assert process.returncode == 0, stderr.decode()
        assert b"drained and stopped" in stderr
        assert job_id >= 1
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
