"""Gateway unit tests: the application object, no sockets involved."""

import pytest

from repro.core import CocoonCleaner
from repro.dataframe.io import read_csv_text, to_csv_text
from repro.server.gateway import BadRequest, CleaningGateway, ResultNotReady
from repro.service.scheduler import ServiceSaturated
from repro.stream.service import StreamBackpressure

DIRTY_CSV = (
    "city,population\n"
    "new york,8000000\n"
    "New York,8000000\n"
    "N/A,42\n"
    "boston,650000\n"
)


@pytest.fixture
def gateway():
    gw = CleaningGateway(workers=2, stream_workers=1).start()
    yield gw
    gw.shutdown(wait=True)


class TestParseTable:
    def test_csv_payload(self):
        table = CleaningGateway.parse_table({"csv": DIRTY_CSV, "name": "cities"})
        assert table.name == "cities"
        assert table.column_names == ["city", "population"]
        assert table.num_rows == 4

    def test_columns_payload(self):
        table = CleaningGateway.parse_table({"columns": {"a": [1, 2], "b": ["x", "y"]}})
        assert table.num_rows == 2

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"csv": 7},
            {"columns": {"a": "not-a-list"}},
            {"columns": {"a": [1], "b": [1, 2]}},
            {"csv": DIRTY_CSV, "name": 3},
            {"csv": ""},
        ],
    )
    def test_bad_payloads_raise(self, payload):
        with pytest.raises(BadRequest):
            CleaningGateway.parse_table(payload)


class TestJobs:
    def test_submit_status_result_round_trip(self, gateway):
        submitted = gateway.submit_job({"csv": DIRTY_CSV, "name": "cities"})
        job_id = submitted["job_id"]
        job = gateway.service.job(job_id)
        job.wait()

        status = gateway.job_status(job_id)
        assert status["status"] == "succeeded"
        assert status["service"]["jobs_succeeded"] >= 1

        result = gateway.job_result(job_id)
        assert result["status"] == "succeeded"
        assert "sql_script" in result and "csv" in result
        assert "-- " in result["sql_script"], "reasoning comments must be preserved"

        # Parity with the in-process pipeline, byte for byte.
        expected = CocoonCleaner().clean(
            read_csv_text(DIRTY_CSV, name="cities", infer_types=False)
        )
        assert result["csv"] == to_csv_text(expected.cleaned_table)
        assert result["sql_script"] == expected.sql_script

    def test_unknown_job_raises_key_error(self, gateway):
        with pytest.raises(KeyError):
            gateway.job_status(999_999_999)

    def test_result_not_ready(self, gateway):
        gw = CleaningGateway(workers=1, llm_factory=_slow_llm_factory(0.2)).start()
        try:
            first = gw.submit_job({"csv": DIRTY_CSV})
            second = gw.submit_job({"csv": DIRTY_CSV, "name": "queued"})
            with pytest.raises(ResultNotReady):
                gw.job_result(second["job_id"])
            gw.service.job(first["job_id"]).wait()
        finally:
            gw.shutdown(wait=True)

    def test_bounded_admission_saturates(self):
        gw = CleaningGateway(
            workers=1, max_pending_jobs=1, llm_factory=_slow_llm_factory(0.2)
        ).start()
        try:
            gw.submit_job({"csv": DIRTY_CSV})
            with pytest.raises(ServiceSaturated):
                gw.submit_job({"csv": DIRTY_CSV, "name": "overflow"})
        finally:
            gw.shutdown(wait=True)


class TestStreams:
    def test_stream_created_on_first_batch(self, gateway):
        doc = gateway.submit_stream_batch("tenant-a", {"csv": DIRTY_CSV})
        assert doc["stream"] == "tenant-a"
        assert doc["sequence"] == 0
        assert gateway.streams.has_stream("tenant-a")
        gateway.streams.wait_idle()
        status = gateway.stream_status("tenant-a")
        assert status["completed_batches"] == 1
        assert status["failed"] is False

    def test_backpressure_raises(self):
        gw = CleaningGateway(
            stream_workers=1,
            max_pending_batches=1,
            llm_factory=_slow_llm_factory(0.2),
        ).start()
        try:
            gw.submit_stream_batch("hot", {"csv": DIRTY_CSV})
            with pytest.raises(StreamBackpressure):
                gw.submit_stream_batch("hot", {"csv": DIRTY_CSV})
        finally:
            gw.streams.wait_idle()
            gw.shutdown(wait=True)

    def test_unknown_stream_status_raises(self, gateway):
        with pytest.raises(KeyError):
            gateway.stream_status("never-created")

    def test_get_or_create_surfaces_real_argument_errors(self, gateway):
        # A genuine validation error must not be masked as "unknown stream".
        with pytest.raises(ValueError):
            gateway.streams.get_or_create_stream("broken", max_pending_batches=-1)
        assert not gateway.streams.has_stream("broken")


class TestObservability:
    def test_healthz(self, gateway):
        doc = gateway.healthz()
        assert doc["status"] == "ok"
        assert doc["uptime_seconds"] >= 0

    def test_metrics_counts_jobs_and_cache(self, gateway):
        submitted = gateway.submit_job({"csv": DIRTY_CSV})
        gateway.service.job(submitted["job_id"]).wait()
        metrics = gateway.metrics()
        assert metrics["gateway"]["jobs_submitted"] == 1
        assert metrics["jobs"]["succeeded"] == 1
        assert metrics["jobs"]["pending"] == 0
        assert set(metrics["cache"]) == {"hits", "misses", "hit_rate", "size"}
        assert metrics["cache"]["misses"] > 0, "the cleaning run must have hit the shared store"

    def test_shared_cache_spans_batch_and_stream(self, gateway):
        submitted = gateway.submit_job({"csv": DIRTY_CSV, "name": "cities"})
        gateway.service.job(submitted["job_id"]).wait()
        hits_before = gateway.cache.stats()["hits"]
        gateway.submit_stream_batch("cities", {"csv": DIRTY_CSV, "name": "cities"})
        gateway.streams.wait_idle()
        stats = gateway.cache.stats()
        assert stats["hits"] > hits_before, (
            "the stream's priming prompts should reuse the batch job's cached responses"
        )

    def test_draining_flag(self, gateway):
        assert gateway.draining is False
        gateway.shutdown(wait=True)
        assert gateway.draining is True
        assert gateway.healthz()["status"] == "draining"


def _slow_llm_factory(latency):
    from repro.llm.simulated import SimulatedSemanticLLM

    def factory():
        return SimulatedSemanticLLM(latency_seconds=latency)

    return factory
