"""The ``GET /v1/streams/{name}/result`` endpoint: cumulative stream output."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.dataframe.io import read_csv_text, to_csv_text
from repro.llm.simulated import SimulatedSemanticLLM
from repro.server.gateway import CleaningGateway
from repro.server.http import make_server
from repro.stream.engine import StreamingCleaner

BATCH_CSV = (
    "city,population\n"
    "new york,8000000\n"
    "boston,650000\n"
    "N/A,42\n"
)


def _request(base, path, payload=None, method=None):
    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    request = urllib.request.Request(base + path, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8")
        return error.code, json.loads(body) if body else {}


@pytest.fixture(scope="module")
def server():
    gateway = CleaningGateway(workers=1, stream_workers=1)
    httpd = make_server(gateway, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.port}"
    httpd.shutdown()
    thread.join()


def _drain(base, name, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, doc = _request(base, f"/v1/streams/{name}")
        assert status == 200
        if doc["completed_batches"] == doc["submitted_batches"]:
            return doc
        time.sleep(0.05)
    raise AssertionError(f"stream {name} did not drain")


def test_result_matches_in_process_stream(server):
    status, _ = _request(server, "/v1/streams/cities/batches", {"csv": BATCH_CSV})
    assert status == 202
    _drain(server, "cities")
    status, doc = _request(server, "/v1/streams/cities/result")
    assert status == 200
    assert doc["stream"] == "cities"
    assert doc["failed"] is False
    assert doc["stats"]["batches"] == 1

    reference = StreamingCleaner(name="cities", llm=SimulatedSemanticLLM())
    reference.process_batch(read_csv_text(BATCH_CSV, name="cities", infer_types=False))
    assert doc["csv"] == to_csv_text(reference.cleaned_table())
    assert doc["rows"] == reference.cleaned_table().num_rows


def test_unknown_stream_result_is_404(server):
    status, doc = _request(server, "/v1/streams/nope/result")
    assert status == 404


def test_result_is_read_only(server):
    status, doc = _request(server, "/v1/streams/cities/result", {"x": 1}, method="POST")
    assert status == 405


def test_pending_batches_are_409():
    gateway = CleaningGateway(workers=1, stream_workers=1)
    gateway.start()
    try:
        gateway.submit_stream_batch("slow", {"csv": BATCH_CSV})
        # Synchronously: the batch may or may not have been picked up yet;
        # the gateway must refuse only while batches are actually pending.
        stream = gateway.streams.stream("slow")
        if stream.pending_batches:
            from repro.server.gateway import ResultNotReady

            with pytest.raises(ResultNotReady):
                gateway.stream_result("slow")
        deadline = time.time() + 30
        while stream.pending_batches and time.time() < deadline:
            time.sleep(0.05)
        doc = gateway.stream_result("slow")
        assert doc["stats"]["batches"] == 1
    finally:
        gateway.shutdown()
