"""Observability surface of the server: traces, Prometheus text, health."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.server.gateway import CleaningGateway
from repro.server.http import make_server
from repro.obs.schema import validate_span

DIRTY_CSV = (
    "city,price\n"
    "new york,10\n"
    "New York,12\n"
    "N/A,11\n"
    "boston,9\n"
)


@pytest.fixture(scope="module")
def server():
    gateway = CleaningGateway(workers=2, stream_workers=1)
    httpd = make_server(gateway, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.port}"
    httpd.shutdown()
    thread.join()
    gateway.shutdown()


def _get(base, path, headers=None):
    request = urllib.request.Request(base + path, headers=headers or {})
    with urllib.request.urlopen(request, timeout=30) as response:
        body = response.read().decode("utf-8")
        content_type = response.headers.get("Content-Type", "")
        if content_type.startswith("application/json"):
            body = json.loads(body)
        return response.status, dict(response.headers), body


def _submit_and_wait(base, name="obs-test"):
    payload = json.dumps({"csv": DIRTY_CSV, "name": name}).encode("utf-8")
    request = urllib.request.Request(
        base + "/v1/jobs", data=payload, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        job = json.loads(response.read())
    deadline = time.time() + 60
    while time.time() < deadline:
        _, _, doc = _get(base, f"/v1/jobs/{job['job_id']}")
        if doc["done"]:
            return job["job_id"]
        time.sleep(0.05)
    raise AssertionError("job did not finish")


class TestRequestIds:
    def test_incoming_request_id_is_echoed(self, server):
        _, headers, _ = _get(server, "/healthz", headers={"X-Request-Id": "my-rid-1"})
        assert headers["X-Request-Id"] == "my-rid-1"

    def test_request_id_generated_when_absent(self, server):
        _, first, _ = _get(server, "/healthz")
        _, second, _ = _get(server, "/healthz")
        assert first["X-Request-Id"]
        assert first["X-Request-Id"] != second["X-Request-Id"]

    def test_error_responses_carry_request_id(self, server):
        request = urllib.request.Request(
            server + "/no/such/route", headers={"X-Request-Id": "rid-404"}
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 404
        assert excinfo.value.headers["X-Request-Id"] == "rid-404"


class TestJobTrace:
    def test_trace_covers_every_layer(self, server):
        job_id = _submit_and_wait(server)
        _, _, doc = _get(server, f"/v1/jobs/{job_id}/trace")
        assert doc["job_id"] == job_id
        assert doc["trace_id"] and doc["trace_id"].startswith("req-")
        assert len(doc["spans"]) == 1
        for span in doc["spans"]:
            validate_span(span)
        names = set()

        def walk(span):
            names.add(span["name"])
            for child in span["children"]:
                walk(child)

        walk(doc["spans"][0])
        assert "server.request" in names
        assert "service.job" in names
        assert "pipeline.clean" in names
        assert any(name.startswith("operator.") for name in names)
        assert any(name.startswith("sql.") and name != "sql.query" for name in names)

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server + "/v1/jobs/999999/trace", timeout=30)
        assert excinfo.value.code == 404

    def test_tracing_disabled_gateway_returns_empty_spans(self):
        with CleaningGateway(workers=1, stream_workers=1, tracing=False) as gateway:
            from repro.dataframe.io import read_csv_text

            table = read_csv_text(DIRTY_CSV, name="quiet", infer_types=False)
            job = gateway.service.submit(table)
            job.wait(60)
            doc = gateway.job_trace(job.job_id)
        assert doc["trace_id"] is None
        assert doc["spans"] == []


class TestMetricsExposition:
    def test_json_remains_the_default(self, server):
        _, headers, doc = _get(server, "/metrics")
        assert headers["Content-Type"].startswith("application/json")
        assert "generated_at" in doc
        assert doc["generated_at"] == pytest.approx(time.time(), abs=60)
        assert set(doc["gateway"]) >= {
            "requests",
            "jobs_submitted",
            "batches_submitted",
            "rejected_saturated",
            "rejected_backpressure",
        }

    def test_prometheus_via_query_parameter(self, server):
        _submit_and_wait(server, name="prom-sample")
        status, headers, text = _get(server, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"] == "text/plain; version=0.0.4; charset=utf-8"
        assert "# TYPE repro_gateway_events_total counter" in text
        assert 'repro_service_jobs_total{status="succeeded"}' in text
        assert "repro_service_job_run_seconds_bucket" in text
        assert "repro_gateway_uptime_seconds" in text
        assert "repro_cache_hits" in text
        # The process-default registry rides along (LLM + cache counters).
        assert "repro_llm_calls_total" in text

    def test_prometheus_via_accept_header(self, server):
        _, headers, text = _get(server, "/metrics", headers={"Accept": "text/plain"})
        assert headers["Content-Type"].startswith("text/plain")
        assert "# TYPE" in text

    def test_families_appear_once(self, server):
        _, _, text = _get(server, "/metrics?format=prometheus")
        type_lines = [line for line in text.splitlines() if line.startswith("# TYPE ")]
        assert len(type_lines) == len(set(type_lines))


class TestHealthz:
    def test_reports_queue_saturation(self, server):
        _, _, doc = _get(server, "/healthz")
        assert doc["status"] == "ok"
        queue = doc["queue"]
        assert queue["max_pending_jobs"] == 64
        assert 0.0 <= queue["saturation"] <= 1.0
        assert queue["pending_jobs"] >= 0

    def test_unbounded_admission_reports_zero_saturation(self):
        gateway = CleaningGateway(workers=1, stream_workers=1, max_pending_jobs=None)
        doc = gateway.healthz()
        assert doc["queue"]["max_pending_jobs"] is None
        assert doc["queue"]["saturation"] == 0.0
