"""``GET /v1/jobs/{id}/lineage`` — the served audit trail for one job."""

import json
import threading
import time
import urllib.error
import urllib.parse
import urllib.request

import pytest

from repro.obs.lineage import validate_lineage_record
from repro.server.gateway import CleaningGateway
from repro.server.http import make_server

DIRTY_CSV = (
    "city,price\n"
    "new york,10\n"
    "New York,12\n"
    "N/A,11\n"
    "boston,9\n"
)


@pytest.fixture(scope="module")
def server():
    gateway = CleaningGateway(workers=2, stream_workers=1)
    httpd = make_server(gateway, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.port}"
    httpd.shutdown()
    thread.join()
    gateway.shutdown()


def _get(base, path):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        body = response.read().decode("utf-8")
        if response.headers.get("Content-Type", "").startswith("application/json"):
            body = json.loads(body)
        return response.status, body


def _submit_and_wait(base, name="lineage-test"):
    payload = json.dumps({"csv": DIRTY_CSV, "name": name}).encode("utf-8")
    request = urllib.request.Request(
        base + "/v1/jobs", data=payload, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        job = json.loads(response.read())
    deadline = time.time() + 60
    while time.time() < deadline:
        _, doc = _get(base, f"/v1/jobs/{job['job_id']}")
        if doc["done"]:
            return job["job_id"]
        time.sleep(0.05)
    raise AssertionError("job did not finish")


@pytest.fixture(scope="module")
def job_id(server):
    return _submit_and_wait(server)


class TestFullDocument:
    def test_records_and_census(self, server, job_id):
        status, doc = _get(server, f"/v1/jobs/{job_id}/lineage")
        assert status == 200
        assert doc["job_id"] == job_id
        assert doc["records"], "cleaning this CSV must touch at least one cell"
        for record in doc["records"]:
            validate_lineage_record(record)
            json.dumps(record)  # served records are plain JSON scalars
        assert isinstance(doc["changed_cells"], int)
        assert doc["changed_cells"] >= 1
        assert isinstance(doc["removed_rows"], list)
        assert doc["census"]
        for entry in doc["census"].values():
            assert set(entry) == {"edits", "net_cells", "removed_rows"}

    def test_census_reconciles_with_records(self, server, job_id):
        _, doc = _get(server, f"/v1/jobs/{job_id}/lineage")
        edits = sum(1 for r in doc["records"] if r["event"] == "edit")
        assert sum(e["edits"] for e in doc["census"].values()) == edits


class TestPerCellExplain:
    def test_row_and_column_filter(self, server, job_id):
        _, doc = _get(server, f"/v1/jobs/{job_id}/lineage")
        sample = next(r for r in doc["records"] if r["event"] == "edit")
        row, column = sample["row_id"], sample["column"]
        query = urllib.parse.urlencode({"row": row, "column": column})
        status, chain = _get(server, f"/v1/jobs/{job_id}/lineage?{query}")
        assert status == 200
        assert chain["row_id"] == row
        assert chain["column"] == column
        assert chain["records"]
        for record in chain["records"]:
            assert record["row_id"] == row
            assert record["column"] in (column, None)  # removals have no column

    def test_row_without_column_returns_whole_row(self, server, job_id):
        _, doc = _get(server, f"/v1/jobs/{job_id}/lineage")
        row = doc["records"][0]["row_id"]
        status, chain = _get(server, f"/v1/jobs/{job_id}/lineage?row={row}")
        assert status == 200
        assert all(r["row_id"] == row for r in chain["records"])

    def test_untouched_row_has_empty_chain(self, server, job_id):
        status, chain = _get(server, f"/v1/jobs/{job_id}/lineage?row=999999")
        assert status == 200
        assert chain["records"] == []


class TestErrors:
    def test_non_integer_row_is_400(self, server, job_id):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                server + f"/v1/jobs/{job_id}/lineage?row=abc", timeout=30
            )
        assert excinfo.value.code == 400

    def test_column_without_row_is_400(self, server, job_id):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(
                server + f"/v1/jobs/{job_id}/lineage?column=city", timeout=30
            )
        assert excinfo.value.code == 400

    def test_unknown_job_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(server + "/v1/jobs/999999/lineage", timeout=30)
        assert excinfo.value.code == 404

    def test_post_is_405(self, server, job_id):
        request = urllib.request.Request(
            server + f"/v1/jobs/{job_id}/lineage", data=b"{}", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 405
