"""End-to-end HTTP tests: a live threading server on an ephemeral port."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import CocoonCleaner
from repro.dataframe.io import read_csv_text, to_csv_text
from repro.server.gateway import CleaningGateway
from repro.server.http import make_server

DIRTY_CSV = (
    "city,population\n"
    "new york,8000000\n"
    "New York,8000000\n"
    "N/A,42\n"
    "boston,650000\n"
)


def _request(base, path, payload=None, method=None, content_type="application/json"):
    """Return (status, headers, decoded JSON body)."""
    data = None
    headers = {}
    if payload is not None:
        data = payload.encode("utf-8") if isinstance(payload, str) else json.dumps(payload).encode("utf-8")
        headers["Content-Type"] = content_type
    request = urllib.request.Request(base + path, data=data, headers=headers, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        body = error.read().decode("utf-8")
        return error.code, dict(error.headers), json.loads(body) if body else {}


def _poll_done(base, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        status, _, doc = _request(base, f"/v1/jobs/{job_id}")
        assert status == 200
        if doc["done"]:
            return doc
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


@pytest.fixture(scope="module")
def server():
    gateway = CleaningGateway(workers=2, stream_workers=1)
    httpd = make_server(gateway, port=0)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.port}"
    httpd.shutdown()
    thread.join()
    httpd.server_close()
    gateway.shutdown(wait=True)


class TestHealthAndRouting:
    def test_healthz(self, server):
        status, _, doc = _request(server, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"

    def test_unknown_path_is_404(self, server):
        status, _, doc = _request(server, "/v2/nope")
        assert status == 404
        assert "error" in doc

    def test_wrong_method_is_405(self, server):
        status, _, _ = _request(server, "/v1/jobs")
        assert status == 405

    def test_malformed_json_is_400(self, server):
        status, _, doc = _request(server, "/v1/jobs", payload="{not json", method="POST")
        assert status == 400
        assert "invalid JSON" in doc["error"]

    def test_missing_table_is_400(self, server):
        status, _, _ = _request(server, "/v1/jobs", payload={"name": "empty"}, method="POST")
        assert status == 400


class TestJobLifecycle:
    def test_submit_poll_fetch_parity(self, server):
        status, _, submitted = _request(
            server, "/v1/jobs", payload={"csv": DIRTY_CSV, "name": "cities"}, method="POST"
        )
        assert status == 202
        job_id = submitted["job_id"]

        done = _poll_done(server, job_id)
        assert done["status"] == "succeeded"
        assert done["service"]["jobs_succeeded"] >= 1

        status, _, result = _request(server, f"/v1/jobs/{job_id}/result")
        assert status == 200
        expected = CocoonCleaner().clean(
            read_csv_text(DIRTY_CSV, name="cities", infer_types=False)
        )
        assert result["csv"] == to_csv_text(expected.cleaned_table)
        assert result["sql_script"] == expected.sql_script
        assert result["cell_repairs"] == len(expected.repairs)

    def test_raw_csv_body_with_name_query(self, server):
        status, _, submitted = _request(
            server,
            "/v1/jobs?name=raw_cities",
            payload=DIRTY_CSV,
            method="POST",
            content_type="text/csv",
        )
        assert status == 202
        assert submitted["name"] == "raw_cities"
        done = _poll_done(server, submitted["job_id"])
        assert done["status"] == "succeeded"

    def test_unknown_job_is_404(self, server):
        status, _, _ = _request(server, "/v1/jobs/987654321")
        assert status == 404

    def test_result_of_running_job_is_409(self, server):
        # A job with queued-but-unstarted work: submit two on a busy server
        # and immediately ask for the second one's result.
        _request(server, "/v1/jobs", payload={"csv": DIRTY_CSV}, method="POST")
        status, _, second = _request(
            server, "/v1/jobs", payload={"csv": DIRTY_CSV, "name": "tail"}, method="POST"
        )
        assert status == 202
        status, _, doc = _request(server, f"/v1/jobs/{second['job_id']}/result")
        assert status in (200, 409)  # 409 unless the tiny job already finished
        if status == 409:
            assert "still" in doc["error"]
        _poll_done(server, second["job_id"])


class TestStreamsOverHTTP:
    def test_feed_batches_and_read_status(self, server):
        for index in range(2):
            status, _, doc = _request(
                server,
                "/v1/streams/tenant-http/batches",
                payload={"csv": DIRTY_CSV, "name": "tenant-http"},
                method="POST",
            )
            assert status == 202
            assert doc["sequence"] == index
        deadline = time.time() + 60
        while time.time() < deadline:
            status, _, doc = _request(server, "/v1/streams/tenant-http")
            assert status == 200
            if doc["completed_batches"] == 2:
                break
            time.sleep(0.05)
        assert doc["failed"] is False

    def test_unknown_stream_is_404(self, server):
        status, _, _ = _request(server, "/v1/streams/ghost")
        assert status == 404


class TestBackpressureOverHTTP:
    def test_429_with_retry_after(self):
        from repro.llm.simulated import SimulatedSemanticLLM

        gateway = CleaningGateway(
            stream_workers=1,
            max_pending_batches=1,
            llm_factory=lambda: SimulatedSemanticLLM(latency_seconds=0.2),
            retry_after_seconds=2.0,
        )
        httpd = make_server(gateway, port=0)
        thread = threading.Thread(target=httpd.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{httpd.port}"
        try:
            status, _, _ = _request(
                base,
                "/v1/streams/hot/batches",
                payload={"csv": DIRTY_CSV},
                method="POST",
            )
            assert status == 202
            status, headers, doc = _request(
                base, "/v1/streams/hot/batches", payload={"csv": DIRTY_CSV}, method="POST"
            )
            assert status == 429
            assert headers.get("Retry-After") == "2"
            assert "pending" in doc["error"]
            metrics_status, _, metrics = _request(base, "/metrics")
            assert metrics_status == 200
            assert metrics["gateway"]["rejected_backpressure"] == 1
        finally:
            httpd.shutdown()
            thread.join()
            httpd.server_close()
            gateway.streams.wait_idle()
            gateway.shutdown(wait=True)


class TestKeepAliveBodySync:
    def test_unrouted_post_body_does_not_desync_the_connection(self, server):
        # A POST whose route errors before reading the body (404 here) must
        # not leave the body bytes in the socket for the next request.
        import http.client

        host = server.split("//")[1]
        connection = http.client.HTTPConnection(host, timeout=30)
        try:
            body = json.dumps({"csv": DIRTY_CSV})
            connection.request(
                "POST", "/v2/nope", body=body, headers={"Content-Type": "application/json"}
            )
            response = connection.getresponse()
            assert response.status == 404
            response.read()
            # Same connection: the next request must parse cleanly.
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()


class TestMetricsOverHTTP:
    def test_metrics_document(self, server):
        status, _, doc = _request(server, "/metrics")
        assert status == 200
        assert doc["gateway"]["requests"] > 0
        assert {"submitted", "succeeded", "pending", "queue_depth"} <= set(doc["jobs"])
        assert {"hits", "misses", "hit_rate", "size"} <= set(doc["cache"])
        assert "batches_completed" in doc["streams"]
