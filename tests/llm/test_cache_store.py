"""Thread-safety, atomic persistence and observability of the prompt cache."""

from __future__ import annotations

import json
import threading

import pytest

from repro.llm import CachingLLMClient, PromptCacheStore, SimulatedSemanticLLM, prompts


class TestPromptCacheStore:
    def test_get_put_and_stats(self):
        store = PromptCacheStore()
        assert store.get("k1") is None
        store.put("k1", "v1")
        assert store.get("k1") == "v1"
        stats = store.stats()
        assert stats == {"hits": 1, "misses": 1, "hit_rate": 0.5, "size": 1}
        assert "k1" in store and len(store) == 1

    def test_peek_does_not_count(self):
        store = PromptCacheStore()
        store.put("k", "v")
        assert store.peek("k") == "v"
        assert store.peek("absent") is None
        assert store.stats()["hits"] == 0 and store.stats()["misses"] == 0

    def test_persistence_round_trip(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PromptCacheStore(path)
        store.put("a", "1")
        store.put("b", "2")
        reloaded = PromptCacheStore(path)
        assert reloaded.peek("a") == "1" and reloaded.peek("b") == "2"

    def test_flush_every_batches_writes(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PromptCacheStore(path, flush_every=3)
        store.put("a", "1")
        store.put("b", "2")
        assert not path.exists()  # below the batch threshold, nothing on disk
        store.put("c", "3")
        assert json.loads(path.read_text()) == {"a": "1", "b": "2", "c": "3"}
        store.put("d", "4")
        assert "d" not in json.loads(path.read_text())
        store.flush()
        assert json.loads(path.read_text())["d"] == "4"

    def test_no_temp_file_debris(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PromptCacheStore(path)
        for i in range(10):
            store.put(f"k{i}", "v")
        assert [p.name for p in tmp_path.iterdir()] == ["cache.json"]

    def test_file_always_valid_json_under_concurrent_writes(self, tmp_path):
        path = tmp_path / "cache.json"
        store = PromptCacheStore(path, flush_every=1)
        errors = []

        def writer(tag):
            try:
                for i in range(50):
                    store.put(f"{tag}-{i}", "x" * 100)
                    if path.exists():
                        json.loads(path.read_text())  # must never observe a torn file
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(json.loads(path.read_text())) == 8 * 50

    def test_thread_hammer_counters_stay_coherent(self):
        store = PromptCacheStore()
        per_thread = 200
        threads_n = 8

        def hammer(tag):
            for i in range(per_thread):
                key = f"shared-{i % 20}"
                if store.get(key) is None:
                    store.put(key, f"value-{i % 20}")

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = store.stats()
        assert stats["hits"] + stats["misses"] == threads_n * per_thread
        assert stats["size"] == 20

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError):
            PromptCacheStore(flush_every=0)


class TestCachingLLMClient:
    def test_stats_dict(self):
        llm = CachingLLMClient(SimulatedSemanticLLM())
        prompt = prompts.dmv_detection("c", [("N/A", 1)])
        llm.complete(prompt)
        llm.complete(prompt)
        assert llm.stats() == {"hits": 1, "misses": 1, "hit_rate": 0.5, "size": 1}

    def test_rejects_store_and_path_together(self, tmp_path):
        with pytest.raises(ValueError):
            CachingLLMClient(
                SimulatedSemanticLLM(),
                cache_path=tmp_path / "c.json",
                store=PromptCacheStore(),
            )

    def test_shared_store_across_clients(self):
        store = PromptCacheStore()
        first = CachingLLMClient(SimulatedSemanticLLM(), store=store)
        second = CachingLLMClient(SimulatedSemanticLLM(), store=store)
        prompt = prompts.dmv_detection("c", [("N/A", 1)])
        text_first = first.complete(prompt).text
        text_second = second.complete(prompt).text  # hit: reuses first's response
        assert text_first == text_second
        assert store.stats()["misses"] == 1 and store.stats()["hits"] == 1
        # The second client never had to invoke its inner model.
        assert second.inner.call_count == 0

    def test_concurrent_clients_agree_and_do_not_corrupt(self):
        store = PromptCacheStore()
        prompt_set = [prompts.dmv_detection(f"col{i}", [("N/A", 1), ("--", 2)]) for i in range(5)]
        responses = {}
        errors = []
        lock = threading.Lock()

        def worker():
            try:
                client = CachingLLMClient(SimulatedSemanticLLM(), store=store)
                for prompt in prompt_set * 10:
                    text = client.complete(prompt).text
                    with lock:
                        previous = responses.setdefault(prompt, text)
                    assert previous == text
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert store.stats()["size"] == len(prompt_set)

    def test_flush_persists_shared_store(self, tmp_path):
        path = tmp_path / "cache.json"
        llm = CachingLLMClient(SimulatedSemanticLLM(), cache_path=path, flush_every=100)
        llm.complete(prompts.dmv_detection("c", [("N/A", 1)]))
        assert not path.exists()
        llm.flush()
        assert len(json.loads(path.read_text())) == 1
