"""Tests for the semantic engine, knowledge bases and the simulated LLM."""

import pytest

from repro.llm import SimulatedSemanticLLM, CachingLLMClient, parsing, prompts
from repro.llm.knowledge.abbreviations import concept_key, parse_duration_minutes
from repro.llm.knowledge.languages import language_code, language_variants
from repro.llm.knowledge.nullwords import is_disguised_missing
from repro.llm.knowledge.types import expected_numeric_range, looks_like_identifier_column, semantic_boolean
from repro.llm.semantic import SemanticModel, edit_distance, value_shape


class TestKnowledge:
    def test_language_codes(self):
        assert language_code("English") == "eng"
        assert language_code("FRENCH") == "fre"
        assert language_code("klingon") is None
        assert "eng" in language_variants("English")

    def test_concept_keys_group_synonyms(self):
        assert concept_key("oz") == concept_key("ounce")
        assert concept_key("Alabama") == concept_key("AL")
        assert concept_key("yes") == concept_key("Y")
        assert concept_key("zzz-unknown") is None

    def test_durations(self):
        assert parse_duration_minutes("90 min") == 90
        assert parse_duration_minutes("1 hr. 30 min.") == 90
        assert parse_duration_minutes("2 hours") == 120
        assert parse_duration_minutes("ninety") is None

    def test_quantity_with_unit_synonym(self):
        assert concept_key("12.0 oz") == concept_key("12.0 ounce")

    def test_null_words(self):
        assert is_disguised_missing("N/A")
        assert is_disguised_missing("--")
        assert not is_disguised_missing("Nebraska")

    def test_identifier_columns(self):
        assert looks_like_identifier_column("provider_number")
        assert looks_like_identifier_column("ZipCode")
        assert not looks_like_identifier_column("description")

    def test_numeric_ranges(self):
        assert expected_numeric_range("patient_age") == (0, 120)
        assert expected_numeric_range("rating_count")[1] >= 1e9
        assert expected_numeric_range("mystery_column") is None

    def test_semantic_boolean(self):
        assert semantic_boolean("yes") is True
        assert semantic_boolean("N") is False
        assert semantic_boolean("maybe") is None


class TestSemanticModel:
    def setup_method(self):
        self.model = SemanticModel()

    def test_edit_distance(self):
        assert edit_distance("abc", "abc") == 0
        assert edit_distance("abc", "abd") == 1
        assert edit_distance("abc", "xyz", 2) > 2

    def test_value_shape(self):
        assert value_shape("12/05/2004") == r"\d{2}/\d{2}/\d{4}"
        assert value_shape("AA-1733") == r"[A-Za-z]{2}\-\d{4}"

    def test_language_review_and_mapping(self):
        counts = [("eng", 464), ("English", 95), ("fre", 30), ("French", 8)]
        review = self.model.review_string_values("article_language", counts)
        assert review.unusual
        _, mapping = self.model.map_string_values("article_language", review.summary,
                                                  [v for v, _ in counts], counts)
        assert mapping["English"] == "eng"
        assert mapping["French"] == "fre"

    def test_typo_mapping(self):
        counts = [("heart attack", 120), ("heart attakc", 2), ("pneumonia", 80)]
        _, mapping = self.model.map_string_values("measure", "typos", [v for v, _ in counts], counts)
        assert mapping == {"heart attakc": "heart attack"}

    def test_distinct_names_are_not_typos(self):
        counts = [("Robert Wilson", 3), ("Robert Nelson", 9), ("James Wilson", 4)]
        review = self.model.review_string_values("director", counts)
        assert not review.unusual

    def test_sequels_are_not_typos(self):
        counts = [("Frozen River 2", 1), ("Frozen River 3", 4)]
        assert self.model._typo_suspects(counts) == {}

    def test_durations_are_not_typos_of_each_other(self):
        counts = [("149 min", 1), ("183 min", 9)]
        assert self.model._typo_suspects(counts) == {}

    def test_dmv_detection(self):
        _, dmvs = self.model.detect_dmv("notes", [("fine", 10), ("N/A", 3), ("--", 1)])
        assert set(dmvs) == {"N/A", "--"}

    def test_type_suggestion_boolean(self):
        suggestion = self.model.suggest_type("EmergencyService", "VARCHAR", [("yes", 60), ("no", 40)])
        assert suggestion.suggested_type == "BOOLEAN"
        assert suggestion.value_mapping["yes"] == "True"

    def test_type_suggestion_durations(self):
        counts = [("90 min", 5), ("1 hr. 30 min.", 2), ("100 min", 4)]
        suggestion = self.model.suggest_type("duration", "VARCHAR", counts)
        assert suggestion.suggested_type == "DOUBLE"
        assert suggestion.value_mapping["1 hr. 30 min."] == "90"

    def test_type_suggestion_identifier_stays_text(self):
        suggestion = self.model.suggest_type("zip_code", "VARCHAR", [("10001", 5), ("02134", 3)])
        assert suggestion.suggested_type == "VARCHAR"

    def test_numeric_range_review(self):
        review = self.model.review_numeric_range("age", "INTEGER", 0, 851, 44.0)
        assert review.has_outliers
        assert review.acceptable_max == 120
        review2 = self.model.review_numeric_range("mystery", "INTEGER", 0, 10, 5.0)
        assert not review2.has_outliers

    def test_pattern_generation_and_consistency(self):
        counts = [("01/05/2004", 40), ("2004-01-07", 5)]
        _, patterns = self.model.generate_patterns("date", counts)
        assert r"\d{2}/\d{2}/\d{4}" in patterns
        _, inconsistent, standard = self.model.judge_pattern_consistency(
            "date", [(r"\d{2}/\d{2}/\d{4}", 40), (r"\d{4}-\d{2}-\d{2}", 5)]
        )
        assert inconsistent
        assert standard == r"\d{2}/\d{2}/\d{4}"

    def test_variable_length_numbers_are_consistent(self):
        _, inconsistent, _ = self.model.judge_pattern_consistency(
            "id", [(r"\d{1}", 9), (r"\d{2}", 11)]
        )
        assert not inconsistent

    def test_normalise_to_pattern(self):
        assert self.model.normalise_to_pattern("2004-01-07", r"\d{2}/\d{2}/\d{4}") == "01/07/2004"
        assert self.model.normalise_to_pattern("1/1/2000x", r"\d{1}/\d{1}/\d{4}") == "1/1/2000"
        assert self.model.normalise_to_pattern("hello", r"\d+") is None

    def test_fd_judgement(self):
        _, meaningful = self.model.judge_fd("zip_code", "city", 0.95, [])
        assert meaningful
        _, flights = self.model.judge_fd("flight", "actual_arrival_time", 0.95, [])
        assert not flights
        _, spurious = self.model.judge_fd("city", "brewery_id", 0.9, [])
        assert not spurious
        _, measure = self.model.judge_fd("MeasureCode", "Score", 0.9, [])
        assert not measure

    def test_fd_correction_majority(self):
        _, mapping = self.model.correct_fd("zip", "city", [("10001", [("New York", 12), ("New Yrok", 1)])])
        assert mapping == {"10001": "New York"}

    def test_duplicate_judgement(self):
        _, erroneous = self.model.judge_duplicates("hospital", 4, [{"id": 1, "name": "x"}])
        assert erroneous
        _, log_ok = self.model.judge_duplicates("sensor_log", 4, [{"reading": 1}])
        assert not log_ok

    def test_uniqueness_judgement(self):
        _, unique, order = self.model.judge_uniqueness("provider_id", 0.99, "VARCHAR", ["updated_at"])
        assert unique
        assert order == "updated_at"
        _, not_unique, _ = self.model.judge_uniqueness("city", 0.30, "VARCHAR", [])
        assert not not_unique


class TestSimulatedLLM:
    def test_detection_and_cleaning_round_trip(self):
        llm = SimulatedSemanticLLM()
        counts = [("eng", 464), ("English", 95), ("fre", 30), ("French", 8)]
        detection = parsing.extract_json(
            llm.complete(prompts.string_outlier_detection("article_language", counts)).text
        )
        assert detection["Unusualness"] is True
        cleaning = llm.complete(
            prompts.string_outlier_cleaning("article_language", detection["Summary"], [v for v, _ in counts])
        )
        _, mapping = parsing.parse_mapping_yaml(cleaning.text)
        assert mapping["English"] == "eng"

    def test_history_records_calls(self):
        llm = SimulatedSemanticLLM()
        llm.complete(prompts.dmv_detection("c", [("N/A", 1)]), purpose="dmv")
        assert llm.call_count == 1
        assert llm.calls_for("dmv")[0].purpose == "dmv"

    def test_unknown_prompt_yields_parseable_json(self):
        llm = SimulatedSemanticLLM()
        data = parsing.extract_json(llm.complete("What is the weather like?").text)
        assert data["Unusualness"] is False

    def test_caching_client(self):
        llm = CachingLLMClient(SimulatedSemanticLLM())
        prompt = prompts.dmv_detection("c", [("N/A", 1)])
        first = llm.complete(prompt).text
        second = llm.complete(prompt).text
        assert first == second
        assert llm.hits == 1 and llm.misses == 1
        assert 0 < llm.hit_rate < 1

    def test_provider_clients_fail_cleanly_offline(self):
        from repro.llm.providers import AnthropicClient, ProviderError

        client = AnthropicClient(api_key="")
        with pytest.raises(ProviderError):
            client.complete("hello")
