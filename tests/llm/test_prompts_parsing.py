"""Tests for prompt construction and response parsing."""

import pytest

from repro.llm import parsing, prompts
from repro.llm.parsing import ResponseParseError


class TestPromptTemplates:
    def test_string_outlier_detection_matches_figure2(self):
        prompt = prompts.string_outlier_detection("article_language", [("eng", 464), ("English", 95)])
        assert prompt.startswith("article_language has the following distinct values:")
        assert "Strange characters or typos" in prompt
        assert '"Unusualness": true/false' in prompt
        assert "'eng' (464 rows)" in prompt

    def test_string_outlier_cleaning_matches_figure3(self):
        prompt = prompts.string_outlier_cleaning("article_language", "values are unusual", ["eng", "English"])
        assert "Maps those unusual values to the correct ones" in prompt
        assert "If old values are meaningless, map to empty string." in prompt
        assert "```yml" in prompt

    def test_values_with_quotes_are_escaped(self):
        prompt = prompts.string_outlier_detection("name", [("O'Brien", 3)])
        assert "O''Brien" in prompt

    def test_all_issue_prompts_render(self):
        assert "regular expression patterns" in prompts.pattern_generation("c", [("a", 1)])
        assert "inconsistent representations" in prompts.pattern_consistency("c", [("\\d+", 5)])
        assert "standard pattern" in prompts.pattern_cleaning("c", r"\d+", ["x1"])
        assert "semantically mean that the value is missing" in prompts.dmv_detection("c", [("N/A", 1)])
        assert "most suitable data type" in prompts.column_type_suggestion("c", "VARCHAR", [("yes", 1)])
        assert "acceptable range" in prompts.numeric_range_review("c", "INTEGER", 0, 10, 5)
        assert "functional dependency" in prompts.fd_review("a", "b", 0.95, [])
        assert "correct mapping" in prompts.fd_correction("a", "b", [("x", [("y", 2)])])
        assert "duplicated rows" in prompts.duplication_review("t", 3, [{"a": 1}])
        assert "unique ratio" in prompts.uniqueness_review("c", 0.99, "VARCHAR", ["updated_at"])


class TestJsonExtraction:
    def test_fenced_json(self):
        data = parsing.extract_json('```json\n{"A": 1}\n```')
        assert data == {"A": 1}

    def test_json_embedded_in_prose(self):
        data = parsing.extract_json('Sure! Here is the answer: {"ok": true} hope that helps')
        assert data == {"ok": True}

    def test_python_style_booleans(self):
        data = parsing.extract_json('{"flag": True, "other": None}')
        assert data["flag"] is True
        assert data["other"] is None

    def test_booleans_inside_strings_untouched(self):
        data = parsing.extract_json('{"mapping": {"yes": "True"}}')
        assert data["mapping"]["yes"] == "True"

    def test_trailing_comma_tolerated(self):
        data = parsing.extract_json('{"a": 1,}')
        assert data == {"a": 1}

    def test_no_json_raises(self):
        with pytest.raises(ResponseParseError):
            parsing.extract_json("no json here")


class TestMappingYaml:
    def test_round_trip(self):
        text = parsing.render_mapping_yaml("because", {"English": "eng", "N/A": ""})
        explanation, mapping = parsing.parse_mapping_yaml(text)
        assert "because" in explanation
        assert mapping == {"English": "eng", "N/A": ""}

    def test_figure3_style_document(self):
        text = (
            "```yml\n"
            "explanation: >\n"
            "  The problem is mixed codes. The correct values are ISO codes.\n"
            "mapping:\n"
            "  English: eng\n"
            "  'French': 'fre'\n"
            "```"
        )
        explanation, mapping = parsing.parse_mapping_yaml(text)
        assert mapping == {"English": "eng", "French": "fre"}
        assert "mixed codes" in explanation

    def test_values_with_quotes(self):
        text = parsing.render_mapping_yaml("x", {"it's": "its"})
        _, mapping = parsing.parse_mapping_yaml(text)
        assert mapping == {"it's": "its"}

    def test_empty_mapping(self):
        _, mapping = parsing.parse_mapping_yaml(parsing.render_mapping_yaml("nothing", {}))
        assert mapping == {}

    def test_render_json_is_parseable(self):
        payload = {"Reasoning": "r", "Unusualness": False}
        assert parsing.extract_json(parsing.render_json(payload)) == payload
