"""Query executor: evaluates parsed statements against the catalog.

The executor walks the AST produced by :mod:`repro.sql.parser` and evaluates
it against the tables registered in a :class:`repro.sql.catalog.Catalog`.
Rows travel through the pipeline as plain dicts (column name -> value, plus
``alias.column`` qualified keys whenever a join needs disambiguation).

Join strategy
-------------
``JOIN ... ON`` conditions are planned per join:

* Equality predicates linking one side to the other (``l.k = r.k``) are
  extracted from the ``ON`` conjunction and drive an **index-backed hash
  join**: the smaller input becomes the build side, the other side probes,
  and any remaining conjuncts (non-equi predicates, or further equalities
  beyond the hash key) are evaluated only on probe hits.  Hash keys use the
  same implicit numeric/string coercion as ``=`` so results are identical to
  the nested loop's.
* Joins whose condition contains no extractable equality fall back to the
  original nested loop.

``WHERE`` conjuncts that reference columns of exactly one join input are
pushed below the join (left-side conjuncts below any join, right-side
conjuncts below ``INNER`` joins only, since filtering the right input of a
``LEFT`` join would change its null-padding).  Both behaviours can be
disabled per :class:`Executor` via ``hash_join`` / ``predicate_pushdown`` —
the benchmarks use this to measure the nested-loop baseline.

Execution engines
-----------------
Every SELECT is first **planned** (:func:`repro.sql.planner.plan_select`)
into an explicit stage pipeline, then dispatched to one of two engines:

* the **columnar engine** runs single-table queries over column vectors:
  every predicate/expression is compiled *once per query* into a closure by
  :mod:`repro.sql.compiler`, filters gather vectors by index, projection
  reuses source vectors where it can, and per-row dict materialisation
  disappears from the hot path entirely;
* the **row-dict engine** is the original interpreter (rows as dicts with
  ``alias.column`` qualified keys) and still runs every join query, SELECTs
  without FROM, and everything when ``compiled=False``.

Both engines produce cell-identical tables and emit the same observability
spans; the differential suites run every query through both.
"""

from __future__ import annotations

import math
import os
import re
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataframe.column import Column
from repro.dataframe.schema import coerce_value, is_null
from repro.dataframe.table import Table
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    CreateTableAs,
    DropTable,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    WindowFunction,
)
from repro.obs import span as obs_span
from repro.sql.catalog import Catalog
from repro.sql.comparison import compare_values, numeric_pair, sql_equal
from repro.sql.compiler import ColumnarBinding
from repro.sql.errors import ExecutionError
from repro.sql.functions import AGGREGATE_NAMES, call_scalar, make_aggregate
from repro.sql.planner import SelectPlan, plan_select

# Comparison semantics live in repro.sql.comparison so the aggregates in
# repro.sql.functions can share them without importing this module; the old
# private names stay importable here for existing callers and tests.
_numeric_pair = numeric_pair
_sql_equal = sql_equal
_compare = compare_values

Row = Dict[str, Any]


class Executor:
    """Evaluates statements produced by :mod:`repro.sql.parser`.

    Parameters
    ----------
    catalog:
        The table registry queries resolve names against.
    hash_join:
        When True (default), joins with extractable equality predicates run
        as hash joins; when False every join uses the nested loop.
    predicate_pushdown:
        When True (default), single-side ``WHERE`` conjuncts are evaluated
        below the join instead of on the joined rows.
    compiled:
        When True (default), eligible single-table SELECTs run on the
        columnar engine with once-per-query expression compilation; when
        False every query runs on the row-dict interpreter.  ``None`` reads
        the ``REPRO_SQL_COMPILED`` environment variable (any value other
        than ``"0"`` enables), so differential CI jobs can force the
        interpreter without touching call sites.

    All flags are plain attributes and may be toggled between queries; the
    benchmark harness relies on this to time the pre-optimisation plan.
    ``last_execution_mode`` records which engine ran the outermost SELECT of
    the most recent query (``"columnar"`` or ``"rowdict"``), for tests.
    """

    def __init__(
        self,
        catalog: Catalog,
        hash_join: bool = True,
        predicate_pushdown: bool = True,
        compiled: Optional[bool] = None,
    ):
        self.catalog = catalog
        self.hash_join = hash_join
        self.predicate_pushdown = predicate_pushdown
        if compiled is None:
            compiled = os.environ.get("REPRO_SQL_COMPILED", "1") != "0"
        self.compiled = compiled
        self.last_execution_mode: Optional[str] = None

    # -- public API -----------------------------------------------------------
    def execute(self, statement: Statement) -> Optional[Table]:
        if isinstance(statement, Select):
            return self._execute_select(statement, result_name="result")
        if isinstance(statement, CreateTableAs):
            table = self._execute_select(statement.query, result_name=statement.name)
            self.catalog.register(table, replace=statement.or_replace)
            return table
        if isinstance(statement, DropTable):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            return None
        raise ExecutionError(f"Unsupported statement type: {type(statement).__name__}")

    # -- SELECT pipeline --------------------------------------------------------
    def _execute_select(self, select: Select, result_name: str) -> Table:
        plan = plan_select(select)
        use_columnar = self.compiled and plan.columnar_eligible
        if use_columnar:
            table = self._execute_columnar(plan, result_name)
        else:
            table = self._execute_rowdict(plan, result_name)
        # Set after subqueries so the outermost SELECT's engine wins.
        self.last_execution_mode = "columnar" if use_columnar else "rowdict"
        return table

    # -- row-dict engine --------------------------------------------------------
    def _execute_rowdict(self, plan: SelectPlan, result_name: str) -> Table:
        select = plan.select
        rows, source_columns, where = self._resolve_from(select)
        if where is not None:
            with obs_span("sql.filter", rows_in=len(rows)) as sp:
                rows = [r for r in rows if _truthy(self._eval(where, r))]
                sp.annotate(rows_out=len(rows))

        source_rows: Optional[List[Row]] = None
        if plan.group is not None:
            with obs_span(
                "sql.aggregate", rows_in=len(rows), group_keys=len(select.group_by)
            ) as sp:
                out_names, out_rows = self._execute_grouped(select, rows)
                sp.annotate(rows_out=len(out_rows))
        else:
            window_values = self._compute_windows(plan.windows, rows)
            with obs_span("sql.project", rows_in=len(rows)) as sp:
                out_names, out_rows = self._project(select, rows, window_values, source_columns)
                sp.annotate(columns=len(out_names))
            source_rows = list(rows)
            if select.qualify is not None:
                with obs_span("sql.qualify", rows_in=len(rows)) as sp:
                    keep = []
                    for i, row in enumerate(rows):
                        value = self._eval(select.qualify, row, window_values=window_values, row_index=i)
                        if _truthy(value):
                            keep.append(i)
                    out_rows = [out_rows[i] for i in keep]
                    source_rows = [source_rows[i] for i in keep]
                    sp.annotate(rows_out=len(out_rows))

        if select.distinct:
            with obs_span("sql.distinct", rows_in=len(out_rows)) as sp:
                source_rows = None
                seen = set()
                deduped = []
                for row in out_rows:
                    key = tuple("\0null" if is_null(v) else str(v) for v in row)
                    if key in seen:
                        continue
                    seen.add(key)
                    deduped.append(row)
                out_rows = deduped
                sp.annotate(rows_out=len(out_rows))

        if select.order_by:
            with obs_span("sql.sort", rows_in=len(out_rows), keys=len(select.order_by)):
                out_rows = self._order_output(select, out_names, out_rows, source_rows)

        if select.offset is not None:
            out_rows = out_rows[select.offset:]
        if select.limit is not None:
            out_rows = out_rows[: select.limit]

        return Table.from_rows(result_name, out_names, out_rows)

    # -- columnar engine --------------------------------------------------------
    def _execute_columnar(self, plan: SelectPlan, result_name: str) -> Table:
        """Run a planned single-table SELECT over column vectors.

        Expressions are compiled once per query (see
        :class:`repro.sql.compiler.ColumnarBinding`); rows are represented
        as an index into parallel vectors until the very end.  Every stage
        emits the same observability span the row-dict engine does, and the
        output is cell-identical by construction — the differential suites
        hold both engines to that.
        """
        select = plan.select
        ref = plan.scan.ref
        with obs_span("sql.scan", source=ref.name or (ref.alias or "subquery")) as sp:
            if ref.subquery is not None:
                table = self._execute_select(ref.subquery, result_name=ref.alias or "subquery")
            else:
                table = self.catalog.get(ref.name)
            names = list(table.column_names)
            vectors: List[List[Any]] = [c.values for c in table.columns]
            # A zero-column table has no rows to scan, matching the row-dict
            # engine (which materialises no dicts without column names).
            n = len(vectors[0]) if vectors else 0
            sp.annotate(rows_out=n)

        if plan.filter is not None:
            predicate = ColumnarBinding(self, names, vectors).compile(plan.filter.predicate)
            with obs_span("sql.filter", rows_in=n) as sp:
                keep = [i for i in range(n) if _truthy(predicate(i))]
                if len(keep) != n:
                    vectors = [[vec[i] for i in keep] for vec in vectors]
                n = len(keep)
                sp.annotate(rows_out=n)

        binding = ColumnarBinding(self, names, vectors)

        if plan.group is not None:
            with obs_span("sql.aggregate", rows_in=n, group_keys=len(select.group_by)) as sp:
                out_names, out_rows = self._columnar_grouped(select, binding, n)
                sp.annotate(rows_out=len(out_rows))
            return self._finish_rows(select, result_name, out_names, out_rows, binding, positions=None)

        window_values: Dict[int, List[Any]] = {}
        if plan.windows:
            with obs_span("sql.window", functions=len(plan.windows), rows_in=n):
                for node in plan.windows:
                    window_values[id(node)] = self._columnar_window(node, binding, n)

        with obs_span("sql.project", rows_in=n) as sp:
            out_names = self._output_names(select, names)
            out_vectors: List[List[Any]] = []
            for item in select.items:
                if isinstance(item.expression, Star):
                    out_vectors.extend(vectors)
                    continue
                if isinstance(item.expression, ColumnRef):
                    vec = binding.vector_for(item.expression)
                    if vec is not None:
                        out_vectors.append(vec)
                        continue
                fn = binding.compile(item.expression, windows=window_values)
                out_vectors.append([fn(i) for i in range(n)])
            sp.annotate(columns=len(out_names))

        # `positions` maps output rows back to source rows for ORDER BY
        # expressions that reference unprojected columns.
        positions: Optional[List[int]] = list(range(n))
        if select.qualify is not None:
            qualify_fn = binding.compile(select.qualify, windows=window_values)
            with obs_span("sql.qualify", rows_in=n) as sp:
                keep = [i for i in range(n) if _truthy(qualify_fn(i))]
                if len(keep) != n:
                    out_vectors = [[vec[i] for i in keep] for vec in out_vectors]
                positions = keep
                sp.annotate(rows_out=len(keep))

        if select.distinct or select.order_by:
            out_rows = [list(cells) for cells in zip(*out_vectors)]
            return self._finish_rows(select, result_name, out_names, out_rows, binding, positions)

        # Pure vector tail: slice and build columns directly (no transpose).
        if select.offset is not None:
            out_vectors = [vec[select.offset:] for vec in out_vectors]
        if select.limit is not None:
            out_vectors = [vec[: select.limit] for vec in out_vectors]
        return Table(result_name, [Column(name, vec) for name, vec in zip(out_names, out_vectors)])

    def _finish_rows(
        self,
        select: Select,
        result_name: str,
        out_names: List[str],
        out_rows: List[List[Any]],
        binding: ColumnarBinding,
        positions: Optional[List[int]],
    ) -> Table:
        """Row-major tail of the columnar engine: DISTINCT, ORDER BY, LIMIT."""
        if select.distinct:
            with obs_span("sql.distinct", rows_in=len(out_rows)) as sp:
                positions = None
                seen = set()
                deduped = []
                for row in out_rows:
                    key = tuple("\0null" if is_null(v) else str(v) for v in row)
                    if key in seen:
                        continue
                    seen.add(key)
                    deduped.append(row)
                out_rows = deduped
                sp.annotate(rows_out=len(out_rows))

        if select.order_by:
            with obs_span("sql.sort", rows_in=len(out_rows), keys=len(select.order_by)):
                out_rows = self._columnar_order(select, out_names, out_rows, binding, positions)

        if select.offset is not None:
            out_rows = out_rows[select.offset:]
        if select.limit is not None:
            out_rows = out_rows[: select.limit]
        return Table.from_rows(result_name, out_names, out_rows)

    def _columnar_order(
        self,
        select: Select,
        names: List[str],
        out_rows: List[List[Any]],
        binding: ColumnarBinding,
        positions: Optional[List[int]],
    ) -> List[List[Any]]:
        """ORDER BY over columnar output, mirroring :meth:`_order_output`.

        Each key resolves once per query: projected columns and ordinal
        positions read the output row; other expressions compile against
        the source vectors (without window context, like the interpreter)
        when source positions survive, else evaluate on a dict of the
        output row (post-DISTINCT).
        """
        name_index = {name: i for i, name in enumerate(names)}
        resolvers: List[Tuple[str, Any]] = []
        for item in select.order_by:
            expr = item.expression
            if isinstance(expr, ColumnRef) and expr.name in name_index:
                resolvers.append(("out", name_index[expr.name]))
            elif isinstance(expr, Literal) and isinstance(expr.value, int):
                resolvers.append(("out", expr.value - 1))
            elif positions is not None:
                resolvers.append(("src", binding.compile(expr)))
            else:
                resolvers.append(("dict", expr))

        def key(position: int) -> Tuple:
            row = out_rows[position]
            parts = []
            for (kind, target), item in zip(resolvers, select.order_by):
                if kind == "out":
                    value = row[target]
                elif kind == "src":
                    value = target(positions[position])
                else:
                    value = self._eval(target, dict(zip(names, row)))
                parts.append(_sort_key(value, item.descending))
            return tuple(parts)

        order = sorted(range(len(out_rows)), key=key)
        return [out_rows[i] for i in order]

    def _columnar_grouped(
        self, select: Select, binding: ColumnarBinding, n: int
    ) -> Tuple[List[str], List[List[Any]]]:
        """GROUP BY over vectors: groups hold row indices, aggregates fold them."""
        groups: Dict[Tuple, List[int]] = {}
        order: List[Tuple] = []
        if select.group_by:
            key_fns = [binding.compile(e) for e in select.group_by]
            for i in range(n):
                key = tuple(_hashable(fn(i)) for fn in key_fns)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(i)
        else:
            groups[()] = list(range(n))
            order.append(())

        names = self._output_names(select, source_columns=[])
        item_fns = [binding.compile_aggregate(item.expression) for item in select.items]
        having_fn = binding.compile_aggregate(select.having) if select.having is not None else None
        out_rows: List[List[Any]] = []
        for key in order:
            indices = groups[key]
            if having_fn is not None and not _truthy(having_fn(indices)):
                continue
            out_rows.append([fn(indices) for fn in item_fns])
        return names, out_rows

    def _columnar_window(self, node: WindowFunction, binding: ColumnarBinding, n: int) -> List[Any]:
        """One window function over vectors, mirroring :meth:`_evaluate_window`."""
        partition_fns = [binding.compile(e) for e in node.window.partition_by]
        order_fns = [binding.compile(item.expression) for item in node.window.order_by]
        partitions: Dict[Tuple, List[int]] = {}
        for i in range(n):
            key = tuple(_hashable(fn(i)) for fn in partition_fns)
            partitions.setdefault(key, []).append(i)
        result: List[Any] = [None] * n
        name = node.name.upper()
        arg_fn = None
        if name in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
            if node.args and not isinstance(node.args[0], Star):
                arg_fn = binding.compile(node.args[0])
        for indices in partitions.values():
            ordered = indices
            if node.window.order_by:
                ordered = sorted(
                    indices,
                    key=lambda i: tuple(
                        _sort_key(fn(i), item.descending)
                        for fn, item in zip(order_fns, node.window.order_by)
                    ),
                )
            if name == "ROW_NUMBER":
                for rank, i in enumerate(ordered, start=1):
                    result[i] = rank
            elif name in ("RANK", "DENSE_RANK"):
                prev_key: Any = object()
                rank = 0
                dense = 0
                for position, i in enumerate(ordered, start=1):
                    # Tie detection uses raw expression values, not sort keys.
                    key = tuple(fn(i) for fn in order_fns)
                    if key != prev_key:
                        dense += 1
                        rank = position
                        prev_key = key
                    result[i] = rank if name == "RANK" else dense
            elif name in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
                agg = make_aggregate(
                    name,
                    count_star=(len(node.args) == 1 and isinstance(node.args[0], Star)) or not node.args,
                )
                for i in ordered:
                    agg.add_checked(arg_fn(i) if arg_fn is not None else 1)
                total = agg.result()
                for i in ordered:
                    result[i] = total
            else:
                raise ExecutionError(f"Unsupported window function: {node.name}")
        return result

    # -- FROM / JOIN ------------------------------------------------------------
    def _resolve_from(self, select: Select) -> Tuple[List[Row], List[str], Optional[Expression]]:
        """Scan the FROM clause and apply joins.

        Returns ``(rows, output_columns, residual_where)``: the WHERE
        conjuncts that could be pushed below a join have already been applied
        and only the residual predicate (possibly None) remains for the
        caller.
        """
        if select.from_table is None:
            # SELECT without FROM evaluates expressions once against an empty row.
            return [{}], [], select.where
        if not select.joins:
            # Single-table scan: qualified `alias.column` duplicate keys are
            # only needed for join disambiguation, so skip building them.
            rows, columns, _ = self._table_rows(select.from_table, qualify=False)
            return rows, columns, select.where

        left_rows, columns, left_keys = self._table_rows(select.from_table, qualify=True)
        sides = [self._table_rows(join.table, qualify=True) for join in select.joins]

        where = select.where
        if where is not None and self.predicate_pushdown:
            key_sets = [frozenset(left_keys)] + [frozenset(keys) for _, _, keys in sides]
            residual: List[Expression] = []
            pushed: List[List[Expression]] = [[] for _ in key_sets]
            for conjunct in _split_conjuncts(where):
                side = _sole_side(conjunct, key_sets)
                # Right-side conjuncts only move below INNER joins: filtering
                # the right input of a LEFT join would turn filtered matches
                # into null-padded rows instead of removing them.
                if side == 0 or (side is not None and select.joins[side - 1].kind == "INNER"):
                    pushed[side].append(conjunct)
                else:
                    residual.append(conjunct)
            if pushed[0]:
                left_rows = self._filter_rows(left_rows, pushed[0])
            for i, preds in enumerate(pushed[1:]):
                if preds:
                    rows_i, cols_i, keys_i = sides[i]
                    sides[i] = (self._filter_rows(rows_i, preds), cols_i, keys_i)
            where = _conjoin(residual)

        left_key_set = set(left_keys)
        for join, (right_rows, right_columns, right_keys) in zip(select.joins, sides):
            left_rows, columns = self._apply_join(
                left_rows, columns, left_key_set, join, right_rows, right_columns, right_keys
            )
            left_key_set.update(right_keys)
        return left_rows, columns, where

    def _filter_rows(self, rows: List[Row], predicates: Sequence[Expression]) -> List[Row]:
        for predicate in predicates:
            rows = [r for r in rows if _truthy(self._eval(predicate, r))]
        return rows

    def _table_rows(self, ref: TableRef, qualify: bool) -> Tuple[List[Row], List[str], List[str]]:
        """Materialise a FROM item as row dicts.

        Returns ``(rows, column_names, row_keys)`` where ``row_keys`` lists
        every key a row dict of this table carries — the plain column names
        plus, when ``qualify`` is set, the ``alias.column`` duplicates used
        to disambiguate columns across join inputs.
        """
        with obs_span(
            "sql.scan", source=ref.name or (ref.alias or "subquery")
        ) as sp:
            if ref.subquery is not None:
                table = self._execute_select(ref.subquery, result_name=ref.alias or "subquery")
            else:
                table = self.catalog.get(ref.name)
            names = list(table.column_names)
            values = [c.values for c in table.columns]
            if qualify:
                alias = ref.alias or (ref.name if ref.name else table.name)
                keys = names + [f"{alias}.{name}" for name in names]
                rows = [dict(zip(keys, cells + cells)) for cells in zip(*values)] if names else []
            else:
                keys = names
                rows = [dict(zip(keys, cells)) for cells in zip(*values)] if names else []
            sp.annotate(rows_out=len(rows))
        return rows, names, keys

    def _apply_join(
        self,
        left_rows: List[Row],
        left_columns: List[str],
        left_keys: set,
        join: Join,
        right_rows: List[Row],
        right_columns: List[str],
        right_keys: Sequence[str],
    ) -> Tuple[List[Row], List[str]]:
        columns = left_columns + [c for c in right_columns if c not in left_columns]
        equi: List[Tuple[Expression, Expression]] = []
        residual: List[Expression] = []
        if self.hash_join:
            equi, residual = _extract_equi_predicates(join.condition, left_keys, set(right_keys))
        with obs_span(
            "sql.join",
            kind=join.kind,
            strategy="hash" if equi else "nested_loop",
            rows_left=len(left_rows),
            rows_right=len(right_rows),
        ) as sp:
            if equi:
                out = self._hash_join(left_rows, right_rows, right_keys, join.kind, equi, residual)
            else:
                out = self._nested_loop_join(left_rows, right_rows, right_keys, join.kind, join.condition)
            sp.annotate(rows_out=len(out))
        return out, columns

    def _nested_loop_join(
        self,
        left_rows: List[Row],
        right_rows: List[Row],
        right_keys: Sequence[str],
        kind: str,
        condition: Expression,
    ) -> List[Row]:
        out: List[Row] = []
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                merged = _merge_rows(lrow, rrow)
                if _truthy(self._eval(condition, merged)):
                    matched = True
                    out.append(merged)
            if not matched and kind == "LEFT":
                out.append(_pad_row(lrow, right_keys))
        return out

    def _hash_join(
        self,
        left_rows: List[Row],
        right_rows: List[Row],
        right_keys: Sequence[str],
        kind: str,
        equi: List[Tuple[Expression, Expression]],
        residual: List[Expression],
    ) -> List[Row]:
        """Index-backed equi-join producing nested-loop-identical output.

        The first extracted equality supplies the hash key; every further
        conjunct (equality or not) is verified on probe hits.  The smaller
        input is the build side, and output rows are emitted in left-major,
        then right, order so results match the nested loop row for row.
        """
        # Empty inputs: return without evaluating any key expression, exactly
        # like the nested loop (whose condition never runs when either side
        # is empty) — an expression that would raise must not raise here.
        if not left_rows or (not right_rows and kind != "LEFT"):
            return []
        if not right_rows:
            return [_pad_row(lrow, right_keys) for lrow in left_rows]

        left_expr, right_expr = equi[0]
        residual = [BinaryOp("=", l, r) for l, r in equi[1:]] + residual

        def accept(merged: Row) -> bool:
            return all(_truthy(self._eval(p, merged)) for p in residual)

        out: List[Row] = []
        if len(right_rows) <= len(left_rows):
            # Build on the right input, probe with left rows.
            index: Dict[Tuple[str, Any], List[int]] = {}
            for j, rrow in enumerate(right_rows):
                for key in _hash_keys_build(self._eval(right_expr, rrow)):
                    index.setdefault(key, []).append(j)
            for lrow in left_rows:
                matched = False
                candidates = _probe(index, self._eval(left_expr, lrow))
                for j in candidates:
                    merged = _merge_rows(lrow, right_rows[j])
                    if accept(merged):
                        matched = True
                        out.append(merged)
                if not matched and kind == "LEFT":
                    out.append(_pad_row(lrow, right_keys))
        else:
            # Build on the left input, probe with right rows; buffer matches
            # per left row so the output stays in left-major order.
            index = {}
            for i, lrow in enumerate(left_rows):
                for key in _hash_keys_build(self._eval(left_expr, lrow)):
                    index.setdefault(key, []).append(i)
            buckets: List[List[Row]] = [[] for _ in left_rows]
            for rrow in right_rows:
                for i in _probe(index, self._eval(right_expr, rrow)):
                    merged = _merge_rows(left_rows[i], rrow)
                    if accept(merged):
                        buckets[i].append(merged)
            for i, lrow in enumerate(left_rows):
                if buckets[i]:
                    out.extend(buckets[i])
                elif kind == "LEFT":
                    out.append(_pad_row(lrow, right_keys))
        return out

    # -- projection ---------------------------------------------------------------
    def _project(
        self,
        select: Select,
        rows: List[Row],
        window_values: Dict[int, List[Any]],
        source_columns: List[str],
    ) -> Tuple[List[str], List[List[Any]]]:
        names = self._output_names(select, source_columns)
        out_rows: List[List[Any]] = []
        for i, row in enumerate(rows):
            out_row: List[Any] = []
            for item in select.items:
                if isinstance(item.expression, Star):
                    out_row.extend(row.get(c) for c in source_columns)
                else:
                    out_row.append(self._eval(item.expression, row, window_values=window_values, row_index=i))
            out_rows.append(out_row)
        return names, out_rows

    def _output_names(self, select: Select, source_columns: List[str]) -> List[str]:
        names: List[str] = []
        for item in select.items:
            if isinstance(item.expression, Star):
                names.extend(source_columns)
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expression, ColumnRef):
                names.append(item.expression.name)
            else:
                names.append(_expression_label(item.expression, len(names)))
        # De-duplicate while preserving order (SQL allows duplicate output names; Table does not).
        seen: Dict[str, int] = {}
        unique: List[str] = []
        for name in names:
            if name in seen:
                seen[name] += 1
                unique.append(f"{name}_{seen[name]}")
            else:
                seen[name] = 0
                unique.append(name)
        return unique

    # -- grouping -------------------------------------------------------------------
    def _execute_grouped(self, select: Select, rows: List[Row]) -> Tuple[List[str], List[List[Any]]]:
        groups: Dict[Tuple, List[Row]] = {}
        order: List[Tuple] = []
        if select.group_by:
            for row in rows:
                key = tuple(_hashable(self._eval(e, row)) for e in select.group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            key = ()
            groups[key] = list(rows)
            order.append(key)

        names = self._output_names(select, source_columns=[])
        out_rows: List[List[Any]] = []
        for key in order:
            group_rows = groups[key]
            if select.having is not None:
                having_value = self._eval_aggregate_expr(select.having, group_rows)
                if not _truthy(having_value):
                    continue
            out_row = [self._eval_aggregate_expr(item.expression, group_rows) for item in select.items]
            out_rows.append(out_row)
        return names, out_rows

    def _eval_aggregate_expr(self, expr: Expression, group_rows: List[Row]) -> Any:
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_NAMES:
            count_star = len(expr.args) == 1 and isinstance(expr.args[0], Star)
            separator = ","
            if expr.name in ("STRING_AGG", "GROUP_CONCAT") and len(expr.args) > 1:
                sep_expr = expr.args[1]
                if isinstance(sep_expr, Literal):
                    separator = str(sep_expr.value)
            agg = make_aggregate(expr.name, distinct=expr.distinct, count_star=count_star, separator=separator)
            for row in group_rows:
                if count_star:
                    agg.add_checked(1)
                else:
                    agg.add_checked(self._eval(expr.args[0], row))
            return agg.result()
        if isinstance(expr, BinaryOp):
            return _apply_binary(
                expr.op,
                self._eval_aggregate_expr(expr.left, group_rows),
                self._eval_aggregate_expr(expr.right, group_rows),
            )
        if isinstance(expr, UnaryOp):
            return _apply_unary(expr.op, self._eval_aggregate_expr(expr.operand, group_rows))
        if isinstance(expr, Like):
            value = self._eval_aggregate_expr(expr.operand, group_rows)
            pattern = self._eval_aggregate_expr(expr.pattern, group_rows)
            escape = (
                self._eval_aggregate_expr(expr.escape, group_rows)
                if expr.escape is not None
                else None
            )
            if is_null(value) or is_null(pattern) or (expr.escape is not None and is_null(escape)):
                return None
            return _like_match(value, pattern, escape)
        if isinstance(expr, Cast):
            return coerce_value(self._eval_aggregate_expr(expr.operand, group_rows), expr.target)
        if isinstance(expr, FunctionCall):
            args = [self._eval_aggregate_expr(a, group_rows) for a in expr.args]
            return call_scalar(expr.name, args)
        if isinstance(expr, CaseWhen):
            return self._eval_case(expr, group_rows[0] if group_rows else {}, None, None)
        # Non-aggregate expression inside a grouped query: evaluate on the first
        # row of the group (it is a grouping expression, so constant per group).
        row = group_rows[0] if group_rows else {}
        return self._eval(expr, row)

    # -- window functions ---------------------------------------------------------------
    def _compute_windows(
        self, window_nodes: List[WindowFunction], rows: List[Row]
    ) -> Dict[int, List[Any]]:
        if not window_nodes:
            return {}
        values: Dict[int, List[Any]] = {}
        with obs_span("sql.window", functions=len(window_nodes), rows_in=len(rows)):
            for node in window_nodes:
                values[id(node)] = self._evaluate_window(node, rows)
        return values

    def _evaluate_window(self, node: WindowFunction, rows: List[Row]) -> List[Any]:
        n = len(rows)
        partitions: Dict[Tuple, List[int]] = {}
        for i, row in enumerate(rows):
            key = tuple(_hashable(self._eval(e, row)) for e in node.window.partition_by)
            partitions.setdefault(key, []).append(i)
        result: List[Any] = [None] * n
        for indices in partitions.values():
            ordered = indices
            if node.window.order_by:
                ordered = sorted(
                    indices,
                    key=lambda i: tuple(
                        _sort_key(self._eval(item.expression, rows[i]), item.descending)
                        for item in node.window.order_by
                    ),
                )
            name = node.name.upper()
            if name == "ROW_NUMBER":
                for rank, i in enumerate(ordered, start=1):
                    result[i] = rank
            elif name in ("RANK", "DENSE_RANK"):
                prev_key = object()
                rank = 0
                dense = 0
                for position, i in enumerate(ordered, start=1):
                    key = tuple(self._eval(item.expression, rows[i]) for item in node.window.order_by)
                    if key != prev_key:
                        dense += 1
                        rank = position
                        prev_key = key
                    result[i] = rank if name == "RANK" else dense
            elif name in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
                agg = make_aggregate(name, count_star=(len(node.args) == 1 and isinstance(node.args[0], Star)) or not node.args)
                for i in ordered:
                    if node.args and not isinstance(node.args[0], Star):
                        agg.add_checked(self._eval(node.args[0], rows[i]))
                    else:
                        agg.add_checked(1)
                total = agg.result()
                for i in ordered:
                    result[i] = total
            else:
                raise ExecutionError(f"Unsupported window function: {node.name}")
        return result

    # -- ORDER BY on output ----------------------------------------------------------------
    def _order_output(
        self,
        select: Select,
        names: List[str],
        out_rows: List[List[Any]],
        source_rows: Optional[List[Row]] = None,
    ) -> List[List[Any]]:
        name_index = {name: i for i, name in enumerate(names)}

        def key(position: int) -> Tuple:
            row = out_rows[position]
            parts = []
            for item in select.order_by:
                expr = item.expression
                if isinstance(expr, ColumnRef) and expr.name in name_index:
                    value = row[name_index[expr.name]]
                elif isinstance(expr, Literal) and isinstance(expr.value, int):
                    value = row[expr.value - 1]
                elif source_rows is not None:
                    # ORDER BY may reference source columns that were not projected.
                    value = self._eval(expr, source_rows[position])
                else:
                    value = self._eval(expr, dict(zip(names, row)))
                parts.append(_sort_key(value, item.descending))
            return tuple(parts)

        order = sorted(range(len(out_rows)), key=key)
        return [out_rows[i] for i in order]

    # -- expression evaluation ----------------------------------------------------------------
    def _eval(
        self,
        expr: Expression,
        row: Row,
        window_values: Optional[Dict[int, List[Any]]] = None,
        row_index: Optional[int] = None,
    ) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            key = expr.qualified if expr.table else expr.name
            if key in row:
                return row[key]
            if expr.name in row:
                return row[expr.name]
            raise ExecutionError(f"Unknown column {key!r}; available: {sorted(k for k in row if '.' not in k)}")
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
        if isinstance(expr, UnaryOp):
            return _apply_unary(expr.op, self._eval(expr.operand, row, window_values, row_index))
        if isinstance(expr, BinaryOp):
            if expr.op == "AND":
                left = self._eval(expr.left, row, window_values, row_index)
                if left is False:
                    return False
                right = self._eval(expr.right, row, window_values, row_index)
                if right is False:
                    return False
                if is_null(left) or is_null(right):
                    return None
                return _truthy(left) and _truthy(right)
            if expr.op == "OR":
                left = self._eval(expr.left, row, window_values, row_index)
                if _truthy(left):
                    return True
                right = self._eval(expr.right, row, window_values, row_index)
                if _truthy(right):
                    return True
                if is_null(left) or is_null(right):
                    return None
                return False
            left = self._eval(expr.left, row, window_values, row_index)
            right = self._eval(expr.right, row, window_values, row_index)
            return _apply_binary(expr.op, left, right)
        if isinstance(expr, Like):
            value = self._eval(expr.operand, row, window_values, row_index)
            pattern = self._eval(expr.pattern, row, window_values, row_index)
            escape = self._eval(expr.escape, row, window_values, row_index) if expr.escape is not None else None
            if is_null(value) or is_null(pattern) or (expr.escape is not None and is_null(escape)):
                return None
            return _like_match(value, pattern, escape)
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, row, window_values, row_index)
            return (not is_null(value)) if expr.negated else is_null(value)
        if isinstance(expr, InList):
            value = self._eval(expr.operand, row, window_values, row_index)
            if is_null(value):
                return None
            items = [self._eval(i, row, window_values, row_index) for i in expr.items]
            found = any((not is_null(i)) and _sql_equal(value, i) for i in items)
            return (not found) if expr.negated else found
        if isinstance(expr, Between):
            value = self._eval(expr.operand, row, window_values, row_index)
            low = self._eval(expr.low, row, window_values, row_index)
            high = self._eval(expr.high, row, window_values, row_index)
            if is_null(value) or is_null(low) or is_null(high):
                return None
            inside = low <= value <= high
            return (not inside) if expr.negated else inside
        if isinstance(expr, CaseWhen):
            return self._eval_case(expr, row, window_values, row_index)
        if isinstance(expr, Cast):
            return coerce_value(self._eval(expr.operand, row, window_values, row_index), expr.target)
        if isinstance(expr, WindowFunction):
            if window_values is None or row_index is None or id(expr) not in window_values:
                raise ExecutionError("Window function used outside of a windowed context")
            return window_values[id(expr)][row_index]
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_NAMES and expr.name not in ("MIN", "MAX"):
                raise ExecutionError(f"Aggregate {expr.name} used outside GROUP BY context")
            args = [self._eval(a, row, window_values, row_index) for a in expr.args]
            return call_scalar(expr.name, args)
        raise ExecutionError(f"Unsupported expression node: {type(expr).__name__}")

    def _eval_case(
        self,
        expr: CaseWhen,
        row: Row,
        window_values: Optional[Dict[int, List[Any]]],
        row_index: Optional[int],
    ) -> Any:
        if expr.operand is not None:
            subject = self._eval(expr.operand, row, window_values, row_index)
            # Fast path: CASE col WHEN <literal> THEN ... with literal branches is a
            # dictionary lookup; cleaning queries generate hundreds of branches.
            lookup = getattr(expr, "_literal_lookup", None)
            if lookup is None and all(isinstance(cond, Literal) for cond, _ in expr.whens):
                lookup = {str(cond.value): result for cond, result in expr.whens}
                setattr(expr, "_literal_lookup", lookup)
            if lookup is not None:
                if not is_null(subject) and str(subject) in lookup:
                    return self._eval(lookup[str(subject)], row, window_values, row_index)
            else:
                for condition, result in expr.whens:
                    candidate = self._eval(condition, row, window_values, row_index)
                    if not is_null(subject) and not is_null(candidate) and _sql_equal(subject, candidate):
                        return self._eval(result, row, window_values, row_index)
        else:
            for condition, result in expr.whens:
                if _truthy(self._eval(condition, row, window_values, row_index)):
                    return self._eval(result, row, window_values, row_index)
        if expr.default is not None:
            return self._eval(expr.default, row, window_values, row_index)
        return None


# --------------------------------------------------------------------------
# join planning helpers
# --------------------------------------------------------------------------
def _split_conjuncts(expr: Expression) -> List[Expression]:
    """Flatten a tree of top-level ANDs into its conjuncts."""
    out: List[Expression] = []
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, BinaryOp) and node.op == "AND":
            stack.append(node.right)
            stack.append(node.left)
        else:
            out.append(node)
    return out


def _conjoin(conjuncts: Sequence[Expression]) -> Optional[Expression]:
    """Rebuild an AND tree from conjuncts (None when there are none left)."""
    result: Optional[Expression] = None
    for conjunct in conjuncts:
        result = conjunct if result is None else BinaryOp("AND", result, conjunct)
    return result


def _collect_refs(expr: Expression, out: List[ColumnRef]) -> bool:
    """Collect every ColumnRef in ``expr``; False if the expression contains
    a node whose value could depend on more than the current row (so the
    caller must not move it around)."""
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, ColumnRef):
        out.append(expr)
        return True
    if isinstance(expr, UnaryOp):
        return _collect_refs(expr.operand, out)
    if isinstance(expr, BinaryOp):
        return _collect_refs(expr.left, out) and _collect_refs(expr.right, out)
    if isinstance(expr, (IsNull, Between)):
        parts = [expr.operand] + ([expr.low, expr.high] if isinstance(expr, Between) else [])
        return all(_collect_refs(p, out) for p in parts)
    if isinstance(expr, Like):
        parts = [expr.operand, expr.pattern] + ([expr.escape] if expr.escape is not None else [])
        return all(_collect_refs(p, out) for p in parts)
    if isinstance(expr, InList):
        return _collect_refs(expr.operand, out) and all(_collect_refs(i, out) for i in expr.items)
    if isinstance(expr, Cast):
        return _collect_refs(expr.operand, out)
    if isinstance(expr, CaseWhen):
        parts = [p for pair in expr.whens for p in pair]
        if expr.default is not None:
            parts.append(expr.default)
        if expr.operand is not None:
            parts.append(expr.operand)
        return all(_collect_refs(p, out) for p in parts)
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            return False
        return all(_collect_refs(a, out) for a in expr.args)
    # Star, WindowFunction, anything unknown: not movable.
    return False


def _ref_side(ref: ColumnRef, key_sets: Sequence[frozenset]) -> Optional[int]:
    """Which join input a column reference resolves against.

    Mirrors ``Executor._eval``'s lookup on a merged row: the qualified key is
    tried first, then the bare name; for a key present in several inputs the
    merge keeps the first input's value, so the first matching side wins.
    Qualified keys duplicated across inputs (a repeated alias) are
    order-dependent in the merge, so they resolve to no side.
    """
    key = ref.qualified if ref.table else ref.name
    for candidate in (key, ref.name):
        hits = [i for i, keys in enumerate(key_sets) if candidate in keys]
        if hits:
            if "." in candidate and len(hits) > 1:
                return None
            return hits[0]
    return None


def _sole_side(expr: Expression, key_sets: Sequence[frozenset]) -> Optional[int]:
    """The single join input ``expr`` reads from, or None."""
    refs: List[ColumnRef] = []
    if not _collect_refs(expr, refs) or not refs:
        return None
    sides = {_ref_side(ref, key_sets) for ref in refs}
    if len(sides) == 1 and None not in sides:
        return sides.pop()
    return None


def _extract_equi_predicates(
    condition: Expression, left_keys: frozenset, right_keys: frozenset
) -> Tuple[List[Tuple[Expression, Expression]], List[Expression]]:
    """Split an ON condition into hashable equalities and a residual.

    An equality qualifies when one operand reads only left-input columns and
    the other only right-input columns; pairs are returned as
    ``(left_expr, right_expr)``.  Everything else stays in the residual list,
    to be evaluated on probe hits.
    """
    key_sets = (left_keys, right_keys)
    equi: List[Tuple[Expression, Expression]] = []
    residual: List[Expression] = []
    for conjunct in _split_conjuncts(condition):
        pair = None
        if isinstance(conjunct, BinaryOp) and conjunct.op == "=":
            lside = _sole_side(conjunct.left, key_sets)
            rside = _sole_side(conjunct.right, key_sets)
            if lside == 0 and rside == 1:
                pair = (conjunct.left, conjunct.right)
            elif lside == 1 and rside == 0:
                pair = (conjunct.right, conjunct.left)
        if pair is not None:
            equi.append(pair)
        else:
            residual.append(conjunct)
    return equi, residual


def _merge_rows(lrow: Row, rrow: Row) -> Row:
    merged = dict(lrow)
    for key, value in rrow.items():
        if key not in merged or "." in key:
            merged[key] = value
    return merged


def _pad_row(lrow: Row, right_keys: Sequence[str]) -> Row:
    """Null-pad an unmatched LEFT-join row from the right input's schema."""
    merged = dict(lrow)
    for key in right_keys:
        merged.setdefault(key, None)
    return merged


def _hash_keys_build(value: Any) -> Tuple[Tuple[str, Any], ...]:
    """Hash-table keys a build-side value is stored under.

    Keys are tagged so bucket membership coincides exactly with
    :func:`_sql_equal`: numbers live under ``("n", float)``, any other value
    under its string form ``("s", str)``, and numeric-looking strings
    additionally under ``("x", float)`` so a *number* on the probe side can
    reach them (string-vs-string comparison stays textual, exactly like
    ``=``).  NULLs never match, so they produce no keys at all.

    ``'nan'``/``'inf'`` strings are *not* numbers under ``_numeric_pair``, so
    they carry no ``"x"`` key; non-finite floats (±inf) fall back to textual
    comparison against strings, so they carry a ``"s"`` key too — both keep
    bucket membership identical to :func:`_sql_equal`.
    """
    if is_null(value):
        return ()
    if isinstance(value, bool):
        # Bools compare numerically AND textually: TRUE = 1 and TRUE = 'True'
        # both hold under _sql_equal (its str() fallback), so store both keys.
        # int/float need no text key — their str() form always parses back to
        # the same float, so the numeric key already covers it.
        return (("n", float(value)), ("s", str(value)))
    if isinstance(value, (int, float)):
        if not math.isfinite(value):
            return (("n", float(value)), ("s", str(value)))
        return (("n", float(value)),)
    text = str(value)
    try:
        number = float(text.strip())
    except ValueError:
        return (("s", text),)
    if not math.isfinite(number):
        return (("s", text),)
    return (("s", text), ("x", number))


def _hash_keys_probe(value: Any) -> Tuple[Tuple[str, Any], ...]:
    """Hash-table keys probed for a value; the mirror of :func:`_hash_keys_build`."""
    if is_null(value):
        return ()
    if isinstance(value, bool):
        number = float(value)
        return (("n", number), ("x", number), ("s", str(value)))
    if isinstance(value, (int, float)):
        number = float(value)
        if not math.isfinite(number):
            return (("n", number), ("s", str(value)))
        return (("n", number), ("x", number))
    text = str(value)
    try:
        number = float(text.strip())
    except ValueError:
        return (("s", text),)
    if not math.isfinite(number):
        return (("s", text),)
    return (("s", text), ("n", number))


def _probe(index: Dict[Tuple[str, Any], List[int]], value: Any) -> Sequence[int]:
    """Indices of build rows equal to ``value`` (in build-row order)."""
    buckets = [index[k] for k in _hash_keys_probe(value) if k in index]
    if not buckets:
        return ()
    if len(buckets) == 1:
        return buckets[0]
    # A probe can hit several buckets (numeric builds via "n", numeric-string
    # builds via "x", bool builds via "s" too); a bool-vs-bool match appears
    # in two of them, so dedupe, and a sort restores build order.
    return sorted(set().union(*buckets))


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------
def _truthy(value: Any) -> bool:
    if is_null(value):
        return False
    return bool(value)


def _hashable(value: Any) -> Any:
    if is_null(value):
        return "\0null"
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _sort_key(value: Any, descending: bool) -> Tuple:
    # NULL and NaN (is_null covers both) sort after every real value in
    # either direction, so sort keys stay total over floats incl. NaN/inf.
    if is_null(value):
        return (1, "")
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, (int, float)):
        return (0, -value) if descending else (0, value)
    key = str(value)
    if descending:
        key = "".join(chr(0x10FFFF - ord(c)) for c in key)
    return (0, key)


def _like_to_regex(pattern: str, escape: Optional[str] = None) -> str:
    """Translate a LIKE pattern to an anchored regex.

    With an ``ESCAPE`` character, the character following it is taken
    literally — the standard way to match a literal ``%`` or ``_`` (or the
    escape character itself).  A pattern ending in a dangling escape is
    malformed.
    """
    out = []
    i = 0
    n = len(pattern)
    while i < n:
        ch = pattern[i]
        if escape is not None and ch == escape:
            if i + 1 >= n:
                raise ExecutionError(f"LIKE pattern {pattern!r} ends with its ESCAPE character")
            out.append(re.escape(pattern[i + 1]))
            i += 2
            continue
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
        i += 1
    return "^" + "".join(out) + "$"


@lru_cache(maxsize=512)
def _like_regex(pattern: str, escape: Optional[str]) -> "re.Pattern":
    """Compiled, case-insensitive regex for a LIKE pattern.

    Cached per ``(pattern, escape)`` so repeated evaluation — one call per
    row in the interpreter, and the compiled engine's closures — translates
    and compiles each distinct pattern once.  ``lru_cache`` does not cache
    raised exceptions, so malformed patterns (dangling ESCAPE) keep raising
    on every evaluation, exactly like the uncached code did.
    """
    return re.compile(_like_to_regex(pattern, escape), re.IGNORECASE)


def _like_match(value: Any, pattern: Any, escape: Any = None) -> bool:
    """Non-null LIKE evaluation shared by the Like node, BinaryOp('LIKE') and
    the compiled engine's Like closures."""
    escape_char: Optional[str] = None
    if escape is not None:
        escape_char = str(escape)
        if len(escape_char) != 1:
            raise ExecutionError(f"ESCAPE must be a single character, got {escape_char!r}")
    return _like_regex(str(pattern), escape_char).match(str(value)) is not None


def _apply_unary(op: str, value: Any) -> Any:
    if op == "NOT":
        if is_null(value):
            return None
        return not _truthy(value)
    if is_null(value):
        return None
    if op == "-":
        return -value
    if op == "+":
        return +value
    raise ExecutionError(f"Unknown unary operator {op}")


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if op == "||":
        if is_null(left) or is_null(right):
            return None
        return f"{left}{right}"
    if op == "LIKE":
        if is_null(left) or is_null(right):
            return None
        return _like_match(left, right)
    if is_null(left) or is_null(right):
        return None
    if op == "=":
        return _sql_equal(left, right)
    if op == "<>":
        return not _sql_equal(left, right)
    if op in ("<", ">", "<=", ">="):
        cmp = _compare(left, right)
        if cmp is None:
            return None
        return {"<": cmp < 0, ">": cmp > 0, "<=": cmp <= 0, ">=": cmp >= 0}[op]
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        result = left / right
        return result
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise ExecutionError(f"Unknown binary operator {op}")


def _expression_label(expr: Expression, index: int) -> str:
    if isinstance(expr, FunctionCall):
        return expr.name.lower()
    if isinstance(expr, WindowFunction):
        return expr.name.lower()
    if isinstance(expr, Cast):
        inner = expr.operand
        if isinstance(inner, ColumnRef):
            return inner.name
    if isinstance(expr, CaseWhen):
        return f"case_{index}"
    return f"col_{index}"
