"""Query executor: evaluates parsed statements against the catalog."""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataframe.column import Column
from repro.dataframe.schema import ColumnType, coerce_value, is_null
from repro.dataframe.table import Table
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    CreateTableAs,
    DropTable,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    WindowFunction,
)
from repro.sql.catalog import Catalog
from repro.sql.errors import ExecutionError
from repro.sql.functions import AGGREGATE_NAMES, call_scalar, make_aggregate

Row = Dict[str, Any]


class Executor:
    """Evaluates statements produced by :mod:`repro.sql.parser`."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # -- public API -----------------------------------------------------------
    def execute(self, statement: Statement) -> Optional[Table]:
        if isinstance(statement, Select):
            return self._execute_select(statement, result_name="result")
        if isinstance(statement, CreateTableAs):
            table = self._execute_select(statement.query, result_name=statement.name)
            self.catalog.register(table, replace=statement.or_replace)
            return table
        if isinstance(statement, DropTable):
            self.catalog.drop(statement.name, if_exists=statement.if_exists)
            return None
        raise ExecutionError(f"Unsupported statement type: {type(statement).__name__}")

    # -- SELECT pipeline --------------------------------------------------------
    def _execute_select(self, select: Select, result_name: str) -> Table:
        rows, source_columns = self._resolve_from(select)
        if select.where is not None:
            rows = [r for r in rows if _truthy(self._eval(select.where, r))]

        has_group = bool(select.group_by)
        has_aggregate = any(_contains_aggregate(item.expression) for item in select.items) or (
            select.having is not None and _contains_aggregate(select.having)
        )

        source_rows: Optional[List[Row]] = None
        if has_group or has_aggregate:
            out_names, out_rows = self._execute_grouped(select, rows)
        else:
            window_values = self._compute_windows(select, rows)
            out_names, out_rows = self._project(select, rows, window_values, source_columns)
            source_rows = list(rows)
            if select.qualify is not None:
                keep = []
                for i, row in enumerate(rows):
                    value = self._eval(select.qualify, row, window_values=window_values, row_index=i)
                    if _truthy(value):
                        keep.append(i)
                out_rows = [out_rows[i] for i in keep]
                source_rows = [source_rows[i] for i in keep]

        if select.distinct:
            source_rows = None
            seen = set()
            deduped = []
            for row in out_rows:
                key = tuple("\0null" if is_null(v) else str(v) for v in row)
                if key in seen:
                    continue
                seen.add(key)
                deduped.append(row)
            out_rows = deduped

        if select.order_by:
            out_rows = self._order_output(select, out_names, out_rows, source_rows)

        if select.offset is not None:
            out_rows = out_rows[select.offset:]
        if select.limit is not None:
            out_rows = out_rows[: select.limit]

        return Table.from_rows(result_name, out_names, out_rows)

    # -- FROM / JOIN ------------------------------------------------------------
    def _resolve_from(self, select: Select) -> Tuple[List[Row], List[str]]:
        if select.from_table is None:
            # SELECT without FROM evaluates expressions once against an empty row.
            return [{}], []
        rows, columns = self._table_rows(select.from_table)
        for join in select.joins:
            rows, columns = self._apply_join(rows, columns, join)
        return rows, columns

    def _table_rows(self, ref: TableRef) -> Tuple[List[Row], List[str]]:
        if ref.subquery is not None:
            table = self._execute_select(ref.subquery, result_name=ref.alias or "subquery")
        else:
            table = self.catalog.get(ref.name)
        alias = ref.alias or (ref.name if ref.name else table.name)
        rows: List[Row] = []
        for i in range(table.num_rows):
            row: Row = {}
            for col in table.columns:
                row[col.name] = col[i]
                row[f"{alias}.{col.name}"] = col[i]
            rows.append(row)
        return rows, list(table.column_names)

    def _apply_join(self, left_rows: List[Row], left_columns: List[str], join: Join) -> Tuple[List[Row], List[str]]:
        right_rows, right_columns = self._table_rows(join.table)
        out: List[Row] = []
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                merged = dict(lrow)
                for key, value in rrow.items():
                    if key not in merged or "." in key:
                        merged[key] = value
                if _truthy(self._eval(join.condition, merged)):
                    matched = True
                    out.append(merged)
            if not matched and join.kind == "LEFT":
                merged = dict(lrow)
                for key in right_rows[0].keys() if right_rows else []:
                    merged.setdefault(key, None)
                out.append(merged)
        columns = left_columns + [c for c in right_columns if c not in left_columns]
        return out, columns

    # -- projection ---------------------------------------------------------------
    def _project(
        self,
        select: Select,
        rows: List[Row],
        window_values: Dict[int, List[Any]],
        source_columns: List[str],
    ) -> Tuple[List[str], List[List[Any]]]:
        names = self._output_names(select, source_columns)
        out_rows: List[List[Any]] = []
        for i, row in enumerate(rows):
            out_row: List[Any] = []
            for item in select.items:
                if isinstance(item.expression, Star):
                    out_row.extend(row.get(c) for c in source_columns)
                else:
                    out_row.append(self._eval(item.expression, row, window_values=window_values, row_index=i))
            out_rows.append(out_row)
        return names, out_rows

    def _output_names(self, select: Select, source_columns: List[str]) -> List[str]:
        names: List[str] = []
        for item in select.items:
            if isinstance(item.expression, Star):
                names.extend(source_columns)
                continue
            if item.alias:
                names.append(item.alias)
            elif isinstance(item.expression, ColumnRef):
                names.append(item.expression.name)
            else:
                names.append(_expression_label(item.expression, len(names)))
        # De-duplicate while preserving order (SQL allows duplicate output names; Table does not).
        seen: Dict[str, int] = {}
        unique: List[str] = []
        for name in names:
            if name in seen:
                seen[name] += 1
                unique.append(f"{name}_{seen[name]}")
            else:
                seen[name] = 0
                unique.append(name)
        return unique

    # -- grouping -------------------------------------------------------------------
    def _execute_grouped(self, select: Select, rows: List[Row]) -> Tuple[List[str], List[List[Any]]]:
        groups: Dict[Tuple, List[Row]] = {}
        order: List[Tuple] = []
        if select.group_by:
            for row in rows:
                key = tuple(_hashable(self._eval(e, row)) for e in select.group_by)
                if key not in groups:
                    groups[key] = []
                    order.append(key)
                groups[key].append(row)
        else:
            key = ()
            groups[key] = list(rows)
            order.append(key)

        names = self._output_names(select, source_columns=[])
        out_rows: List[List[Any]] = []
        for key in order:
            group_rows = groups[key]
            if select.having is not None:
                having_value = self._eval_aggregate_expr(select.having, group_rows)
                if not _truthy(having_value):
                    continue
            out_row = [self._eval_aggregate_expr(item.expression, group_rows) for item in select.items]
            out_rows.append(out_row)
        return names, out_rows

    def _eval_aggregate_expr(self, expr: Expression, group_rows: List[Row]) -> Any:
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_NAMES:
            count_star = len(expr.args) == 1 and isinstance(expr.args[0], Star)
            separator = ","
            if expr.name in ("STRING_AGG", "GROUP_CONCAT") and len(expr.args) > 1:
                sep_expr = expr.args[1]
                if isinstance(sep_expr, Literal):
                    separator = str(sep_expr.value)
            agg = make_aggregate(expr.name, distinct=expr.distinct, count_star=count_star, separator=separator)
            for row in group_rows:
                if count_star:
                    agg.add(1)
                else:
                    agg.add(self._eval(expr.args[0], row))
            return agg.result()
        if isinstance(expr, BinaryOp):
            return _apply_binary(
                expr.op,
                self._eval_aggregate_expr(expr.left, group_rows),
                self._eval_aggregate_expr(expr.right, group_rows),
            )
        if isinstance(expr, UnaryOp):
            return _apply_unary(expr.op, self._eval_aggregate_expr(expr.operand, group_rows))
        if isinstance(expr, Cast):
            return coerce_value(self._eval_aggregate_expr(expr.operand, group_rows), expr.target)
        if isinstance(expr, FunctionCall):
            args = [self._eval_aggregate_expr(a, group_rows) for a in expr.args]
            return call_scalar(expr.name, args)
        if isinstance(expr, CaseWhen):
            return self._eval_case(expr, group_rows[0] if group_rows else {}, None, None)
        # Non-aggregate expression inside a grouped query: evaluate on the first
        # row of the group (it is a grouping expression, so constant per group).
        row = group_rows[0] if group_rows else {}
        return self._eval(expr, row)

    # -- window functions ---------------------------------------------------------------
    def _compute_windows(self, select: Select, rows: List[Row]) -> Dict[int, List[Any]]:
        window_nodes: List[WindowFunction] = []
        for item in select.items:
            _collect_windows(item.expression, window_nodes)
        if select.qualify is not None:
            _collect_windows(select.qualify, window_nodes)
        values: Dict[int, List[Any]] = {}
        for node in window_nodes:
            values[id(node)] = self._evaluate_window(node, rows)
        return values

    def _evaluate_window(self, node: WindowFunction, rows: List[Row]) -> List[Any]:
        n = len(rows)
        partitions: Dict[Tuple, List[int]] = {}
        for i, row in enumerate(rows):
            key = tuple(_hashable(self._eval(e, row)) for e in node.window.partition_by)
            partitions.setdefault(key, []).append(i)
        result: List[Any] = [None] * n
        for indices in partitions.values():
            ordered = indices
            if node.window.order_by:
                ordered = sorted(
                    indices,
                    key=lambda i: tuple(
                        _sort_key(self._eval(item.expression, rows[i]), item.descending)
                        for item in node.window.order_by
                    ),
                )
            name = node.name.upper()
            if name == "ROW_NUMBER":
                for rank, i in enumerate(ordered, start=1):
                    result[i] = rank
            elif name in ("RANK", "DENSE_RANK"):
                prev_key = object()
                rank = 0
                dense = 0
                for position, i in enumerate(ordered, start=1):
                    key = tuple(self._eval(item.expression, rows[i]) for item in node.window.order_by)
                    if key != prev_key:
                        dense += 1
                        rank = position
                        prev_key = key
                    result[i] = rank if name == "RANK" else dense
            elif name in ("COUNT", "SUM", "MIN", "MAX", "AVG"):
                agg = make_aggregate(name, count_star=(len(node.args) == 1 and isinstance(node.args[0], Star)) or not node.args)
                for i in ordered:
                    if node.args and not isinstance(node.args[0], Star):
                        agg.add(self._eval(node.args[0], rows[i]))
                    else:
                        agg.add(1)
                total = agg.result()
                for i in ordered:
                    result[i] = total
            else:
                raise ExecutionError(f"Unsupported window function: {node.name}")
        return result

    # -- ORDER BY on output ----------------------------------------------------------------
    def _order_output(
        self,
        select: Select,
        names: List[str],
        out_rows: List[List[Any]],
        source_rows: Optional[List[Row]] = None,
    ) -> List[List[Any]]:
        name_index = {name: i for i, name in enumerate(names)}

        def key(position: int) -> Tuple:
            row = out_rows[position]
            parts = []
            for item in select.order_by:
                expr = item.expression
                if isinstance(expr, ColumnRef) and expr.name in name_index:
                    value = row[name_index[expr.name]]
                elif isinstance(expr, Literal) and isinstance(expr.value, int):
                    value = row[expr.value - 1]
                elif source_rows is not None:
                    # ORDER BY may reference source columns that were not projected.
                    value = self._eval(expr, source_rows[position])
                else:
                    value = self._eval(expr, dict(zip(names, row)))
                parts.append(_sort_key(value, item.descending))
            return tuple(parts)

        order = sorted(range(len(out_rows)), key=key)
        return [out_rows[i] for i in order]

    # -- expression evaluation ----------------------------------------------------------------
    def _eval(
        self,
        expr: Expression,
        row: Row,
        window_values: Optional[Dict[int, List[Any]]] = None,
        row_index: Optional[int] = None,
    ) -> Any:
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, ColumnRef):
            key = expr.qualified if expr.table else expr.name
            if key in row:
                return row[key]
            if expr.name in row:
                return row[expr.name]
            raise ExecutionError(f"Unknown column {key!r}; available: {sorted(k for k in row if '.' not in k)}")
        if isinstance(expr, Star):
            raise ExecutionError("'*' is only valid in a select list or COUNT(*)")
        if isinstance(expr, UnaryOp):
            return _apply_unary(expr.op, self._eval(expr.operand, row, window_values, row_index))
        if isinstance(expr, BinaryOp):
            if expr.op == "AND":
                left = self._eval(expr.left, row, window_values, row_index)
                if left is False:
                    return False
                right = self._eval(expr.right, row, window_values, row_index)
                if right is False:
                    return False
                if is_null(left) or is_null(right):
                    return None
                return _truthy(left) and _truthy(right)
            if expr.op == "OR":
                left = self._eval(expr.left, row, window_values, row_index)
                if _truthy(left):
                    return True
                right = self._eval(expr.right, row, window_values, row_index)
                if _truthy(right):
                    return True
                if is_null(left) or is_null(right):
                    return None
                return False
            left = self._eval(expr.left, row, window_values, row_index)
            right = self._eval(expr.right, row, window_values, row_index)
            return _apply_binary(expr.op, left, right)
        if isinstance(expr, IsNull):
            value = self._eval(expr.operand, row, window_values, row_index)
            return (not is_null(value)) if expr.negated else is_null(value)
        if isinstance(expr, InList):
            value = self._eval(expr.operand, row, window_values, row_index)
            if is_null(value):
                return None
            items = [self._eval(i, row, window_values, row_index) for i in expr.items]
            found = any((not is_null(i)) and _sql_equal(value, i) for i in items)
            return (not found) if expr.negated else found
        if isinstance(expr, Between):
            value = self._eval(expr.operand, row, window_values, row_index)
            low = self._eval(expr.low, row, window_values, row_index)
            high = self._eval(expr.high, row, window_values, row_index)
            if is_null(value) or is_null(low) or is_null(high):
                return None
            inside = low <= value <= high
            return (not inside) if expr.negated else inside
        if isinstance(expr, CaseWhen):
            return self._eval_case(expr, row, window_values, row_index)
        if isinstance(expr, Cast):
            return coerce_value(self._eval(expr.operand, row, window_values, row_index), expr.target)
        if isinstance(expr, WindowFunction):
            if window_values is None or row_index is None or id(expr) not in window_values:
                raise ExecutionError("Window function used outside of a windowed context")
            return window_values[id(expr)][row_index]
        if isinstance(expr, FunctionCall):
            if expr.name in AGGREGATE_NAMES and expr.name not in ("MIN", "MAX"):
                raise ExecutionError(f"Aggregate {expr.name} used outside GROUP BY context")
            args = [self._eval(a, row, window_values, row_index) for a in expr.args]
            return call_scalar(expr.name, args)
        raise ExecutionError(f"Unsupported expression node: {type(expr).__name__}")

    def _eval_case(
        self,
        expr: CaseWhen,
        row: Row,
        window_values: Optional[Dict[int, List[Any]]],
        row_index: Optional[int],
    ) -> Any:
        if expr.operand is not None:
            subject = self._eval(expr.operand, row, window_values, row_index)
            # Fast path: CASE col WHEN <literal> THEN ... with literal branches is a
            # dictionary lookup; cleaning queries generate hundreds of branches.
            lookup = getattr(expr, "_literal_lookup", None)
            if lookup is None and all(isinstance(cond, Literal) for cond, _ in expr.whens):
                lookup = {str(cond.value): result for cond, result in expr.whens}
                setattr(expr, "_literal_lookup", lookup)
            if lookup is not None:
                if not is_null(subject) and str(subject) in lookup:
                    return self._eval(lookup[str(subject)], row, window_values, row_index)
            else:
                for condition, result in expr.whens:
                    candidate = self._eval(condition, row, window_values, row_index)
                    if not is_null(subject) and not is_null(candidate) and _sql_equal(subject, candidate):
                        return self._eval(result, row, window_values, row_index)
        else:
            for condition, result in expr.whens:
                if _truthy(self._eval(condition, row, window_values, row_index)):
                    return self._eval(result, row, window_values, row_index)
        if expr.default is not None:
            return self._eval(expr.default, row, window_values, row_index)
        return None


# --------------------------------------------------------------------------
# helpers
# --------------------------------------------------------------------------
def _truthy(value: Any) -> bool:
    if is_null(value):
        return False
    return bool(value)


def _hashable(value: Any) -> Any:
    if is_null(value):
        return "\0null"
    if isinstance(value, (list, dict, set)):
        return str(value)
    return value


def _sort_key(value: Any, descending: bool) -> Tuple:
    if is_null(value):
        return (1, "")
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, (int, float)):
        return (0, -value) if descending else (0, value)
    key = str(value)
    if descending:
        key = "".join(chr(0x10FFFF - ord(c)) for c in key)
    return (0, key)


def _numeric_pair(left: Any, right: Any) -> Optional[Tuple[float, float]]:
    """Return both operands as floats when a numeric comparison makes sense.

    When exactly one side is a number and the other is a numeric-looking
    string, the string is implicitly cast — matching the behaviour of the SQL
    engines the paper targets.
    """
    def to_num(v: Any) -> Optional[float]:
        if isinstance(v, bool):
            return float(v)
        if isinstance(v, (int, float)):
            return float(v)
        return None

    def parse_num(v: Any) -> Optional[float]:
        try:
            return float(str(v).strip())
        except (TypeError, ValueError):
            return None

    a, b = to_num(left), to_num(right)
    if a is not None and b is not None:
        return a, b
    if a is not None and b is None:
        parsed = parse_num(right)
        if parsed is not None:
            return a, parsed
    if b is not None and a is None:
        parsed = parse_num(left)
        if parsed is not None:
            return parsed, b
    return None


def _sql_equal(left: Any, right: Any) -> bool:
    pair = _numeric_pair(left, right)
    if pair is not None:
        return pair[0] == pair[1]
    return str(left) == str(right)


def _compare(left: Any, right: Any) -> Optional[int]:
    pair = _numeric_pair(left, right)
    if pair is not None:
        a, b = pair
    else:
        try:
            a, b = left, right
            if a < b or a > b or a == b:
                pass
        except TypeError:
            a, b = str(left), str(right)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def _like_to_regex(pattern: str) -> str:
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return "^" + "".join(out) + "$"


def _apply_unary(op: str, value: Any) -> Any:
    if op == "NOT":
        if is_null(value):
            return None
        return not _truthy(value)
    if is_null(value):
        return None
    if op == "-":
        return -value
    if op == "+":
        return +value
    raise ExecutionError(f"Unknown unary operator {op}")


def _apply_binary(op: str, left: Any, right: Any) -> Any:
    if op == "||":
        if is_null(left) or is_null(right):
            return None
        return f"{left}{right}"
    if op == "LIKE":
        if is_null(left) or is_null(right):
            return None
        return re.match(_like_to_regex(str(right)), str(left), flags=re.IGNORECASE) is not None
    if is_null(left) or is_null(right):
        return None
    if op == "=":
        return _sql_equal(left, right)
    if op == "<>":
        return not _sql_equal(left, right)
    if op in ("<", ">", "<=", ">="):
        cmp = _compare(left, right)
        if cmp is None:
            return None
        return {"<": cmp < 0, ">": cmp > 0, "<=": cmp <= 0, ">=": cmp >= 0}[op]
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None
        result = left / right
        return result
    if op == "%":
        if right == 0:
            return None
        return left % right
    raise ExecutionError(f"Unknown binary operator {op}")


def _contains_aggregate(expr: Expression) -> bool:
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            return True
        return any(_contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, Cast):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, CaseWhen):
        parts: List[Expression] = []
        for cond, res in expr.whens:
            parts.extend([cond, res])
        if expr.default is not None:
            parts.append(expr.default)
        if expr.operand is not None:
            parts.append(expr.operand)
        return any(_contains_aggregate(p) for p in parts)
    if isinstance(expr, (IsNull, Between)):
        return _contains_aggregate(expr.operand)
    if isinstance(expr, InList):
        return _contains_aggregate(expr.operand) or any(_contains_aggregate(i) for i in expr.items)
    return False


def _collect_windows(expr: Expression, out: List[WindowFunction]) -> None:
    if isinstance(expr, WindowFunction):
        out.append(expr)
        return
    if isinstance(expr, FunctionCall):
        for a in expr.args:
            _collect_windows(a, out)
    elif isinstance(expr, BinaryOp):
        _collect_windows(expr.left, out)
        _collect_windows(expr.right, out)
    elif isinstance(expr, UnaryOp):
        _collect_windows(expr.operand, out)
    elif isinstance(expr, Cast):
        _collect_windows(expr.operand, out)
    elif isinstance(expr, CaseWhen):
        for cond, res in expr.whens:
            _collect_windows(cond, out)
            _collect_windows(res, out)
        if expr.default is not None:
            _collect_windows(expr.default, out)
        if expr.operand is not None:
            _collect_windows(expr.operand, out)
    elif isinstance(expr, (IsNull, Between)):
        _collect_windows(expr.operand, out)
    elif isinstance(expr, InList):
        _collect_windows(expr.operand, out)
        for i in expr.items:
            _collect_windows(i, out)


def _expression_label(expr: Expression, index: int) -> str:
    if isinstance(expr, FunctionCall):
        return expr.name.lower()
    if isinstance(expr, WindowFunction):
        return expr.name.lower()
    if isinstance(expr, Cast):
        inner = expr.operand
        if isinstance(inner, ColumnRef):
            return inner.name
    if isinstance(expr, CaseWhen):
        return f"case_{index}"
    return f"col_{index}"
