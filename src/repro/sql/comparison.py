"""Value comparison semantics shared across the SQL engine.

One definition of "equal", "less than" and "sorts before" serves the whole
engine: ``=`` / ``<`` / ORDER BY in :mod:`repro.sql.executor`, hash-join
bucket membership, and the MIN/MAX aggregates in
:mod:`repro.sql.functions`.  Before this module existed the aggregates
compared with raw ``<`` / ``>``, so a mixed ``str``/``int`` column raised
``TypeError`` and a NaN that arrived first stuck forever (every
``value < nan`` is False) — MIN/MAX disagreed with ORDER BY over the very
same column.

The rules, in order:

* Exactly one numeric operand coerces a numeric-looking *finite* string on
  the other side (``7 = '7'`` holds; ``'nan' >= 5`` does not — non-finite
  strings are text, matching PR 5's comparison fix).
* Otherwise values compare textually via ``str()``.
* The total order puts NaN after every real value in either direction, so
  sort keys and MIN/MAX stay trichotomous over floats including NaN/inf.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple


def to_num(v: Any) -> Optional[float]:
    """The operand as a float when it already is a number (bools count)."""
    if isinstance(v, bool):
        return float(v)
    if isinstance(v, (int, float)):
        return float(v)
    return None


def parse_num(v: Any) -> Optional[float]:
    """A numeric-looking string as a finite float, else None.

    Python's float() accepts 'nan'/'inf'/'Infinity', but SQL numeric
    literals don't — treating those strings as numbers made
    ``'nan' >= 5`` true (NaN probes all compare False, see compare_values).
    """
    try:
        parsed = float(str(v).strip())
    except (TypeError, ValueError):
        return None
    return parsed if math.isfinite(parsed) else None


def numeric_pair(left: Any, right: Any) -> Optional[Tuple[float, float]]:
    """Return both operands as floats when a numeric comparison makes sense.

    When exactly one side is a number and the other is a numeric-looking
    string, the string is implicitly cast — matching the behaviour of the SQL
    engines the paper targets.
    """
    a, b = to_num(left), to_num(right)
    if a is not None and b is not None:
        return a, b
    if a is not None and b is None:
        parsed = parse_num(right)
        if parsed is not None:
            return a, parsed
    if b is not None and a is None:
        parsed = parse_num(left)
        if parsed is not None:
            return parsed, b
    return None


def sql_equal(left: Any, right: Any) -> bool:
    """SQL ``=`` over non-null operands: numeric when sensible, else textual."""
    pair = numeric_pair(left, right)
    if pair is not None:
        return pair[0] == pair[1]
    return str(left) == str(right)


def compare_values(left: Any, right: Any) -> Optional[int]:
    """Deterministic total order: -1/0/1, with NaN after every other value.

    NaN operands would otherwise fail all three probes below and read as
    "equal to everything", collapsing ``>=``/``<=`` and ORDER BY into
    nonsense.  NULL-semantics normally filter NaN out before it gets here,
    but direct float NaN (or a non-finite arithmetic result) must still get
    a trichotomous answer.
    """
    pair = numeric_pair(left, right)
    if pair is not None:
        a, b = pair
    else:
        try:
            a, b = left, right
            if a < b or a > b or a == b:
                pass
        except TypeError:
            a, b = str(left), str(right)
    a_nan = isinstance(a, float) and math.isnan(a)
    b_nan = isinstance(b, float) and math.isnan(b)
    if a_nan or b_nan:
        if a_nan and b_nan:
            return 0
        return 1 if a_nan else -1
    if a < b:
        return -1
    if a > b:
        return 1
    return 0
