"""Abstract syntax tree node definitions for the mini SQL engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Union

from repro.dataframe.schema import ColumnType


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------
class Expression:
    """Base class for all expression nodes."""


@dataclass
class Literal(Expression):
    value: Any


@dataclass
class ColumnRef(Expression):
    name: str
    table: Optional[str] = None

    @property
    def qualified(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass
class Star(Expression):
    """``*`` in a select list or within COUNT(*)."""
    table: Optional[str] = None


@dataclass
class UnaryOp(Expression):
    op: str          # 'NOT', '-', '+'
    operand: Expression


@dataclass
class BinaryOp(Expression):
    op: str          # '=', '<>', '<', '>', '<=', '>=', 'AND', 'OR', '+', '-', '*', '/', '%', '||', 'LIKE'
    left: Expression
    right: Expression


@dataclass
class Like(Expression):
    """``operand LIKE pattern [ESCAPE escape]``.

    ``escape`` names a single character that makes the following ``%``/``_``
    (or the escape character itself) literal.  Plain ``LIKE`` may also appear
    as ``BinaryOp('LIKE', …)`` when an AST is built by hand; the parser always
    produces this node.
    """
    operand: Expression
    pattern: Expression
    escape: Optional[Expression] = None


@dataclass
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclass
class InList(Expression):
    operand: Expression
    items: List[Expression]
    negated: bool = False


@dataclass
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass
class CaseWhen(Expression):
    """``CASE [operand] WHEN cond THEN value ... [ELSE default] END``."""
    whens: List[tuple]                 # list of (condition_expr, result_expr)
    default: Optional[Expression] = None
    operand: Optional[Expression] = None


@dataclass
class Cast(Expression):
    operand: Expression
    target: ColumnType


@dataclass
class FunctionCall(Expression):
    name: str
    args: List[Expression]
    distinct: bool = False


@dataclass
class WindowSpec:
    partition_by: List[Expression] = field(default_factory=list)
    order_by: List["OrderItem"] = field(default_factory=list)


@dataclass
class WindowFunction(Expression):
    name: str
    args: List[Expression]
    window: WindowSpec = field(default_factory=WindowSpec)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------
@dataclass
class SelectItem:
    expression: Expression
    alias: Optional[str] = None


@dataclass
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclass
class TableRef:
    """A named table or a derived table (subquery) in FROM."""
    name: Optional[str] = None
    subquery: Optional["Select"] = None
    alias: Optional[str] = None


@dataclass
class Join:
    kind: str                 # 'INNER' or 'LEFT'
    table: TableRef
    condition: Expression


@dataclass
class Select:
    items: List[SelectItem]
    from_table: Optional[TableRef] = None
    joins: List[Join] = field(default_factory=list)
    where: Optional[Expression] = None
    group_by: List[Expression] = field(default_factory=list)
    having: Optional[Expression] = None
    qualify: Optional[Expression] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass
class CreateTableAs:
    name: str
    query: Select
    or_replace: bool = False
    is_view: bool = False


@dataclass
class DropTable:
    name: str
    if_exists: bool = False


Statement = Union[Select, CreateTableAs, DropTable]
