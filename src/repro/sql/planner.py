"""Query planning: a SELECT becomes an explicit pipeline of stage nodes.

:func:`plan_select` turns a parsed :class:`~repro.sql.ast_nodes.Select` into a
:class:`SelectPlan` — the *logical* plan the executor runs.  The plan phase
happens exactly once per query and hoists every decision that used to be
re-derived inside ``Executor._execute_select`` on the fly:

* which stages the query needs (scan → join → filter → group → window →
  project → qualify → distinct → order → limit), as explicit nodes;
* whether the query aggregates (``GROUP BY`` present, or any aggregate
  function in the select list / ``HAVING``);
* the set of window-function nodes referenced by the select list and
  ``QUALIFY`` (collected once, not per execution phase);
* whether the **columnar engine** may run the query: single-table queries
  (a real ``FROM`` item, no joins) evaluate over column vectors with every
  predicate/expression compiled once per query by
  :mod:`repro.sql.compiler`; anything else runs on the row-dict engine.

Physical choices that depend on the *data* — hash join vs nested loop,
which ``WHERE`` conjuncts move below a join — still bind at execution time
when the input schemas are known; the plan records the logical stages they
apply to.  ``SelectPlan.describe()`` renders the stage pipeline for humans
and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Like,
    OrderItem,
    Select,
    SelectItem,
    TableRef,
    UnaryOp,
    WindowFunction,
)
from repro.sql.functions import AGGREGATE_NAMES


# --------------------------------------------------------------------------
# stage nodes
# --------------------------------------------------------------------------
@dataclass
class ScanNode:
    """Materialise one FROM item (named table or derived subquery)."""

    ref: TableRef

    @property
    def label(self) -> str:
        return f"Scan({self.ref.name or (self.ref.alias or 'subquery')})"


@dataclass
class JoinNode:
    """One JOIN against the rows produced so far.

    The hash-vs-nested-loop strategy and the equi-key extraction bind at
    execution time (they need the input schemas); the node records the
    logical join.
    """

    join: Join

    @property
    def label(self) -> str:
        return f"Join({self.join.kind}, {self.join.table.name or 'subquery'})"


@dataclass
class FilterNode:
    """Apply the WHERE predicate.

    On joined queries, single-side conjuncts may be evaluated below a join
    (predicate pushdown) at execution time; the node holds the full
    predicate.
    """

    predicate: Expression

    @property
    def label(self) -> str:
        return "Filter"


@dataclass
class GroupNode:
    """GROUP BY / aggregate evaluation (with optional HAVING)."""

    keys: List[Expression]
    having: Optional[Expression]

    @property
    def label(self) -> str:
        return f"Group(keys={len(self.keys)})"


@dataclass
class WindowNode:
    """Evaluate every window function referenced by the query, once."""

    functions: List[WindowFunction]

    @property
    def label(self) -> str:
        return f"Window(functions={len(self.functions)})"


@dataclass
class ProjectNode:
    """Evaluate the select list into output rows."""

    items: List[SelectItem]

    @property
    def label(self) -> str:
        return f"Project(items={len(self.items)})"


@dataclass
class QualifyNode:
    """Filter on window-function results (QUALIFY)."""

    predicate: Expression

    @property
    def label(self) -> str:
        return "Qualify"


@dataclass
class DistinctNode:
    """Drop duplicate output rows (first occurrence wins)."""

    @property
    def label(self) -> str:
        return "Distinct"


@dataclass
class OrderNode:
    """Sort output rows by the ORDER BY items."""

    items: List[OrderItem]

    @property
    def label(self) -> str:
        return f"Order(keys={len(self.items)})"


@dataclass
class LimitNode:
    """OFFSET / LIMIT applied to the ordered output."""

    limit: Optional[int]
    offset: Optional[int]

    @property
    def label(self) -> str:
        return f"Limit(limit={self.limit}, offset={self.offset})"


@dataclass
class SelectPlan:
    """The planned form of one SELECT, consumed by both executor engines."""

    select: Select
    scan: Optional[ScanNode]
    joins: List[JoinNode] = field(default_factory=list)
    filter: Optional[FilterNode] = None
    group: Optional[GroupNode] = None
    window: Optional[WindowNode] = None
    project: Optional[ProjectNode] = None
    qualify: Optional[QualifyNode] = None
    distinct: Optional[DistinctNode] = None
    order: Optional[OrderNode] = None
    limit: Optional[LimitNode] = None
    #: True when the columnar engine can run this plan (single-table query);
    #: ``columnar_blocked_by`` names the reason when it cannot.
    columnar_eligible: bool = True
    columnar_blocked_by: Optional[str] = None

    @property
    def windows(self) -> List[WindowFunction]:
        return self.window.functions if self.window is not None else []

    def stages(self) -> List[object]:
        """The stage nodes in execution order (omitting absent stages)."""
        out: List[object] = []
        if self.scan is not None:
            out.append(self.scan)
        out.extend(self.joins)
        if self.filter is not None:
            out.append(self.filter)
        if self.group is not None:
            out.append(self.group)
        else:
            if self.window is not None:
                out.append(self.window)
            if self.project is not None:
                out.append(self.project)
            if self.qualify is not None:
                out.append(self.qualify)
        if self.distinct is not None:
            out.append(self.distinct)
        if self.order is not None:
            out.append(self.order)
        if self.limit is not None:
            out.append(self.limit)
        return out

    def describe(self) -> str:
        """Human-readable pipeline, one stage per line (for tests and EXPLAIN)."""
        engine = "columnar" if self.columnar_eligible else "rowdict"
        lines = [f"SelectPlan engine={engine}"]
        if not self.columnar_eligible and self.columnar_blocked_by:
            lines[0] += f" (blocked by: {self.columnar_blocked_by})"
        lines.extend(f"  {i}: {stage.label}" for i, stage in enumerate(self.stages()))
        return "\n".join(lines)


# --------------------------------------------------------------------------
# planning
# --------------------------------------------------------------------------
def contains_aggregate(expr: Expression) -> bool:
    """True when ``expr`` contains an aggregate function call."""
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_NAMES:
            return True
        return any(contains_aggregate(a) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Cast):
        return contains_aggregate(expr.operand)
    if isinstance(expr, CaseWhen):
        parts: List[Expression] = []
        for cond, res in expr.whens:
            parts.extend([cond, res])
        if expr.default is not None:
            parts.append(expr.default)
        if expr.operand is not None:
            parts.append(expr.operand)
        return any(contains_aggregate(p) for p in parts)
    if isinstance(expr, (IsNull, Between)):
        return contains_aggregate(expr.operand)
    if isinstance(expr, Like):
        return contains_aggregate(expr.operand) or contains_aggregate(expr.pattern)
    if isinstance(expr, InList):
        return contains_aggregate(expr.operand) or any(contains_aggregate(i) for i in expr.items)
    return False


def collect_windows(expr: Expression, out: List[WindowFunction]) -> None:
    """Append every WindowFunction node in ``expr`` to ``out`` (pre-order)."""
    if isinstance(expr, WindowFunction):
        out.append(expr)
        return
    if isinstance(expr, FunctionCall):
        for a in expr.args:
            collect_windows(a, out)
    elif isinstance(expr, BinaryOp):
        collect_windows(expr.left, out)
        collect_windows(expr.right, out)
    elif isinstance(expr, UnaryOp):
        collect_windows(expr.operand, out)
    elif isinstance(expr, Cast):
        collect_windows(expr.operand, out)
    elif isinstance(expr, CaseWhen):
        for cond, res in expr.whens:
            collect_windows(cond, out)
            collect_windows(res, out)
        if expr.default is not None:
            collect_windows(expr.default, out)
        if expr.operand is not None:
            collect_windows(expr.operand, out)
    elif isinstance(expr, (IsNull, Between)):
        collect_windows(expr.operand, out)
    elif isinstance(expr, Like):
        collect_windows(expr.operand, out)
        collect_windows(expr.pattern, out)
        if expr.escape is not None:
            collect_windows(expr.escape, out)
    elif isinstance(expr, InList):
        collect_windows(expr.operand, out)
        for i in expr.items:
            collect_windows(i, out)


def plan_select(select: Select) -> SelectPlan:
    """Build the stage-node plan for ``select`` (once per query)."""
    has_group = bool(select.group_by)
    has_aggregate = any(contains_aggregate(item.expression) for item in select.items) or (
        select.having is not None and contains_aggregate(select.having)
    )

    window_nodes: List[WindowFunction] = []
    for item in select.items:
        collect_windows(item.expression, window_nodes)
    if select.qualify is not None:
        collect_windows(select.qualify, window_nodes)

    plan = SelectPlan(
        select=select,
        scan=ScanNode(select.from_table) if select.from_table is not None else None,
        joins=[JoinNode(join) for join in select.joins],
        filter=FilterNode(select.where) if select.where is not None else None,
        group=GroupNode(list(select.group_by), select.having) if has_group or has_aggregate else None,
        window=WindowNode(window_nodes) if window_nodes else None,
        project=ProjectNode(list(select.items)),
        qualify=QualifyNode(select.qualify) if select.qualify is not None else None,
        distinct=DistinctNode() if select.distinct else None,
        order=OrderNode(list(select.order_by)) if select.order_by else None,
        limit=LimitNode(select.limit, select.offset)
        if select.limit is not None or select.offset is not None
        else None,
    )
    if select.from_table is None:
        plan.columnar_eligible = False
        plan.columnar_blocked_by = "no FROM clause"
    elif select.joins:
        plan.columnar_eligible = False
        plan.columnar_blocked_by = "joins"
    return plan
