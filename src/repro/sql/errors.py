"""Exception hierarchy for the mini SQL engine."""


class SQLError(Exception):
    """Base class for all SQL engine errors."""


class ParseError(SQLError):
    """Raised when a SQL string cannot be tokenized or parsed."""

    def __init__(self, message: str, position: int = -1, sql: str = ""):
        self.position = position
        self.sql = sql
        if position >= 0 and sql:
            context = sql[max(0, position - 20): position + 20]
            message = f"{message} (near position {position}: ...{context}...)"
        super().__init__(message)


class CatalogError(SQLError):
    """Raised for missing or duplicate tables/columns in the catalog."""


class ExecutionError(SQLError):
    """Raised when a parsed query cannot be evaluated."""
