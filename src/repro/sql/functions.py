"""Scalar and aggregate function implementations for the SQL engine.

All scalar functions follow SQL NULL semantics: a NULL input yields NULL
unless the function is explicitly NULL-aware (COALESCE, NULLIF, IFNULL).
"""

from __future__ import annotations

import math
import re
from decimal import ROUND_HALF_UP, Decimal, InvalidOperation
from typing import Any, Callable, Dict, List, Optional, Sequence, Union

from repro.dataframe.schema import is_null
from repro.sql.comparison import compare_values
from repro.sql.errors import ExecutionError


# --------------------------------------------------------------------------
# Scalar functions
# --------------------------------------------------------------------------
def _null_safe(func: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(is_null(a) for a in args):
            return None
        return func(*args)

    return wrapper


def _to_str(value: Any) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, float) and float(value).is_integer():
        return str(int(value))
    return str(value)


def _substr(value: Any, start: int, length: Optional[int] = None) -> str:
    text = _to_str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin: begin + int(length)]


def _round(value: Any, digits: int = 0) -> float:
    # SQL engines (sqlite, DuckDB, Postgres) round halves away from zero;
    # Python's round() uses banker's rounding, so ROUND(2.5) diverged (2 vs 3).
    # Decimal(str(x)) keeps the decimal digits the user sees, not the binary
    # float expansion.
    number = float(value)
    if not math.isfinite(number):
        return number
    quantum = Decimal(1).scaleb(-int(digits))
    try:
        return float(Decimal(str(number)).quantize(quantum, rounding=ROUND_HALF_UP))
    except InvalidOperation as exc:
        raise ValueError(f"cannot round {value!r} to {digits} digits") from exc


def _pad(value: Any, n: Any, pad: Any, left: bool) -> str:
    """LPAD/RPAD with standard cycle-and-truncate semantics (sqlite/Postgres):
    the pad string repeats as a whole and the result is truncated to exactly
    ``n`` characters; an empty pad can only shorten, never extend."""
    text = _to_str(value)
    length = int(n)
    if length <= len(text):
        return text[:max(length, 0)]
    fill = _to_str(pad)
    if not fill:
        return text
    need = length - len(text)
    filler = (fill * (need // len(fill) + 1))[:need]
    return filler + text if left else text + filler


def _regexp_matches(value: Any, pattern: str) -> bool:
    return re.search(pattern, _to_str(value)) is not None

def _regexp_full_match(value: Any, pattern: str) -> bool:
    return re.fullmatch(pattern, _to_str(value)) is not None


def _regexp_replace(value: Any, pattern: str, replacement: str, flags: str = "") -> str:
    count = 0 if "g" in flags else 1
    return re.sub(pattern, replacement, _to_str(value), count=count)


def _regexp_extract(value: Any, pattern: str, group: int = 0) -> Optional[str]:
    match = re.search(pattern, _to_str(value))
    if match is None:
        return None
    try:
        return match.group(int(group))
    except IndexError:
        return None


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if not is_null(arg):
            return arg
    return None


def _nullif(a: Any, b: Any) -> Any:
    if is_null(a):
        return None
    if not is_null(b) and a == b:
        return None
    return a


def _ifnull(a: Any, b: Any) -> Any:
    return b if is_null(a) else a


def _try_float(value: Any) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "UPPER": _null_safe(lambda v: _to_str(v).upper()),
    "LOWER": _null_safe(lambda v: _to_str(v).lower()),
    "TRIM": _null_safe(lambda v: _to_str(v).strip()),
    "LTRIM": _null_safe(lambda v: _to_str(v).lstrip()),
    "RTRIM": _null_safe(lambda v: _to_str(v).rstrip()),
    "LENGTH": _null_safe(lambda v: len(_to_str(v))),
    "LEN": _null_safe(lambda v: len(_to_str(v))),
    "SUBSTR": _null_safe(_substr),
    "SUBSTRING": _null_safe(_substr),
    "REPLACE": _null_safe(lambda v, a, b: _to_str(v).replace(_to_str(a), _to_str(b))),
    "CONCAT": lambda *args: "".join(_to_str(a) for a in args if not is_null(a)),
    "ABS": _null_safe(lambda v: abs(v)),
    "ROUND": _null_safe(_round),
    "FLOOR": _null_safe(lambda v: math.floor(float(v))),
    "CEIL": _null_safe(lambda v: math.ceil(float(v))),
    "CEILING": _null_safe(lambda v: math.ceil(float(v))),
    "SQRT": _null_safe(lambda v: math.sqrt(float(v))),
    "LN": _null_safe(lambda v: math.log(float(v))),
    "LOG": _null_safe(lambda v: math.log10(float(v))),
    "POWER": _null_safe(lambda a, b: float(a) ** float(b)),
    "MOD": _null_safe(lambda a, b: a % b),
    "REGEXP_MATCHES": _null_safe(_regexp_matches),
    "REGEXP_FULL_MATCH": _null_safe(_regexp_full_match),
    "REGEXP_REPLACE": _null_safe(_regexp_replace),
    "REGEXP_EXTRACT": _null_safe(_regexp_extract),
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "IFNULL": _ifnull,
    "NVL": _ifnull,
    "REVERSE": _null_safe(lambda v: _to_str(v)[::-1]),
    "LPAD": _null_safe(lambda v, n, p=" ": _pad(v, n, p, left=True)),
    "RPAD": _null_safe(lambda v, n, p=" ": _pad(v, n, p, left=False)),
    "LEFT": _null_safe(lambda v, n: _to_str(v)[: int(n)]),
    "RIGHT": _null_safe(lambda v, n: _to_str(v)[-int(n):] if int(n) > 0 else ""),
    "CONTAINS": _null_safe(lambda v, s: _to_str(s) in _to_str(v)),
    "STARTS_WITH": _null_safe(lambda v, s: _to_str(v).startswith(_to_str(s))),
    "ENDS_WITH": _null_safe(lambda v, s: _to_str(v).endswith(_to_str(s))),
    "TRY_CAST_DOUBLE": _null_safe(_try_float),
    "TYPEOF": lambda v: type(v).__name__ if not is_null(v) else "NULL",
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    func = SCALAR_FUNCTIONS.get(name.upper())
    if func is None:
        raise ExecutionError(f"Unknown scalar function: {name}")
    try:
        return func(*args)
    except (ValueError, TypeError, re.error) as exc:
        raise ExecutionError(f"Error evaluating {name}({args!r}): {exc}") from exc


# --------------------------------------------------------------------------
# Aggregate functions
# --------------------------------------------------------------------------
def _numeric_addend(name: str, value: Any) -> Union[int, float]:
    """The one numeric-coercion rule for SUM/AVG/STDDEV inputs.

    Previously SUM('3') raised a bare TypeError while AVG('3') silently
    coerced via float() — the same column summed and averaged under two
    different type systems.  Now both accept bools (as 0/1), ints and floats
    as-is (so SUM over ints stays an int), coerce numeric-looking *finite*
    strings, and reject everything else with :class:`ExecutionError`.
    Non-finite strings ('nan', 'inf') are text, matching comparison rules.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    try:
        parsed = float(str(value).strip())
    except (TypeError, ValueError):
        raise ExecutionError(f"{name} requires numeric input, got {value!r}") from None
    if not math.isfinite(parsed):
        raise ExecutionError(f"{name} requires numeric input, got {value!r}")
    return parsed


class Aggregate:
    """Incremental aggregate accumulator."""

    #: Display name for error messages; set by :func:`make_aggregate`.
    name: str = "AGGREGATE"

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def add_checked(self, value: Any) -> None:
        """``add`` with errors wrapped in :class:`ExecutionError`.

        Scalar calls were already wrapped by :func:`call_scalar`, but a bad
        aggregate input used to escape as a raw TypeError; executors should
        accumulate through this entry point.
        """
        try:
            self.add(value)
        except ExecutionError:
            raise
        except (TypeError, ValueError) as exc:
            raise ExecutionError(f"Error accumulating {self.name}({value!r}): {exc}") from exc

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAgg(Aggregate):
    def __init__(self, distinct: bool = False, count_star: bool = False):
        self.distinct = distinct
        self.count_star = count_star
        self.count = 0
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if self.count_star:
            self.count += 1
            return
        if is_null(value):
            return
        if self.distinct:
            self.seen.add(str(value))
        else:
            self.count += 1

    def result(self) -> int:
        return len(self.seen) if self.distinct else self.count


class SumAgg(Aggregate):
    def __init__(self) -> None:
        self.total: Optional[float] = None

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.total = (self.total or 0) + _numeric_addend(self.name, value)

    def result(self) -> Optional[float]:
        return self.total


class AvgAgg(Aggregate):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.total += float(_numeric_addend(self.name, value))
        self.count += 1

    def result(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MinAgg(Aggregate):
    """MIN under the engine's total order (:func:`compare_values`).

    Raw ``<`` raised TypeError on mixed str/int columns and disagreed with
    ORDER BY's numeric/string coercion over the same values.
    """

    def __init__(self) -> None:
        self.value: Any = None
        self.empty = True

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        if self.empty or compare_values(value, self.value) < 0:
            self.value = value
            self.empty = False

    def result(self) -> Any:
        return self.value


class MaxAgg(Aggregate):
    """MAX under the engine's total order — see :class:`MinAgg`."""

    def __init__(self) -> None:
        self.value: Any = None
        self.empty = True

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        if self.empty or compare_values(value, self.value) > 0:
            self.value = value
            self.empty = False

    def result(self) -> Any:
        return self.value


class StddevAgg(Aggregate):
    def __init__(self) -> None:
        self.values: List[float] = []

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.values.append(float(_numeric_addend(self.name, value)))

    def result(self) -> Optional[float]:
        n = len(self.values)
        if n < 2:
            return None
        mean = sum(self.values) / n
        variance = sum((v - mean) ** 2 for v in self.values) / (n - 1)
        return math.sqrt(variance)


class StringAgg(Aggregate):
    def __init__(self, separator: str = ",") -> None:
        self.separator = separator
        self.parts: List[str] = []

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.parts.append(_to_str(value))

    def result(self) -> Optional[str]:
        return self.separator.join(self.parts) if self.parts else None


AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "STDDEV_SAMP", "STRING_AGG", "GROUP_CONCAT"}
WINDOW_NAMES = {"ROW_NUMBER", "RANK", "DENSE_RANK", "COUNT", "SUM", "MIN", "MAX", "AVG"}


def make_aggregate(name: str, distinct: bool = False, count_star: bool = False, separator: str = ",") -> Aggregate:
    upper = name.upper()
    agg: Optional[Aggregate] = None
    if upper == "COUNT":
        agg = CountAgg(distinct=distinct, count_star=count_star)
    elif upper == "SUM":
        agg = SumAgg()
    elif upper == "AVG":
        agg = AvgAgg()
    elif upper == "MIN":
        agg = MinAgg()
    elif upper == "MAX":
        agg = MaxAgg()
    elif upper in ("STDDEV", "STDDEV_SAMP"):
        agg = StddevAgg()
    elif upper in ("STRING_AGG", "GROUP_CONCAT"):
        agg = StringAgg(separator)
    if agg is None:
        raise ExecutionError(f"Unknown aggregate function: {name}")
    agg.name = upper
    return agg
