"""Scalar and aggregate function implementations for the SQL engine.

All scalar functions follow SQL NULL semantics: a NULL input yields NULL
unless the function is explicitly NULL-aware (COALESCE, NULLIF, IFNULL).
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.dataframe.schema import is_null
from repro.sql.errors import ExecutionError


# --------------------------------------------------------------------------
# Scalar functions
# --------------------------------------------------------------------------
def _null_safe(func: Callable[..., Any]) -> Callable[..., Any]:
    def wrapper(*args: Any) -> Any:
        if any(is_null(a) for a in args):
            return None
        return func(*args)

    return wrapper


def _to_str(value: Any) -> str:
    if isinstance(value, bool):
        return "True" if value else "False"
    if isinstance(value, float) and float(value).is_integer():
        return str(int(value))
    return str(value)


def _substr(value: Any, start: int, length: Optional[int] = None) -> str:
    text = _to_str(value)
    begin = max(int(start) - 1, 0)
    if length is None:
        return text[begin:]
    return text[begin: begin + int(length)]


def _round(value: Any, digits: int = 0) -> float:
    result = round(float(value), int(digits))
    return result


def _regexp_matches(value: Any, pattern: str) -> bool:
    return re.search(pattern, _to_str(value)) is not None

def _regexp_full_match(value: Any, pattern: str) -> bool:
    return re.fullmatch(pattern, _to_str(value)) is not None


def _regexp_replace(value: Any, pattern: str, replacement: str, flags: str = "") -> str:
    count = 0 if "g" in flags else 1
    return re.sub(pattern, replacement, _to_str(value), count=count)


def _regexp_extract(value: Any, pattern: str, group: int = 0) -> Optional[str]:
    match = re.search(pattern, _to_str(value))
    if match is None:
        return None
    try:
        return match.group(int(group))
    except IndexError:
        return None


def _coalesce(*args: Any) -> Any:
    for arg in args:
        if not is_null(arg):
            return arg
    return None


def _nullif(a: Any, b: Any) -> Any:
    if is_null(a):
        return None
    if not is_null(b) and a == b:
        return None
    return a


def _ifnull(a: Any, b: Any) -> Any:
    return b if is_null(a) else a


def _try_float(value: Any) -> Optional[float]:
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


SCALAR_FUNCTIONS: Dict[str, Callable[..., Any]] = {
    "UPPER": _null_safe(lambda v: _to_str(v).upper()),
    "LOWER": _null_safe(lambda v: _to_str(v).lower()),
    "TRIM": _null_safe(lambda v: _to_str(v).strip()),
    "LTRIM": _null_safe(lambda v: _to_str(v).lstrip()),
    "RTRIM": _null_safe(lambda v: _to_str(v).rstrip()),
    "LENGTH": _null_safe(lambda v: len(_to_str(v))),
    "LEN": _null_safe(lambda v: len(_to_str(v))),
    "SUBSTR": _null_safe(_substr),
    "SUBSTRING": _null_safe(_substr),
    "REPLACE": _null_safe(lambda v, a, b: _to_str(v).replace(_to_str(a), _to_str(b))),
    "CONCAT": lambda *args: "".join(_to_str(a) for a in args if not is_null(a)),
    "ABS": _null_safe(lambda v: abs(v)),
    "ROUND": _null_safe(_round),
    "FLOOR": _null_safe(lambda v: math.floor(float(v))),
    "CEIL": _null_safe(lambda v: math.ceil(float(v))),
    "CEILING": _null_safe(lambda v: math.ceil(float(v))),
    "SQRT": _null_safe(lambda v: math.sqrt(float(v))),
    "LN": _null_safe(lambda v: math.log(float(v))),
    "LOG": _null_safe(lambda v: math.log10(float(v))),
    "POWER": _null_safe(lambda a, b: float(a) ** float(b)),
    "MOD": _null_safe(lambda a, b: a % b),
    "REGEXP_MATCHES": _null_safe(_regexp_matches),
    "REGEXP_FULL_MATCH": _null_safe(_regexp_full_match),
    "REGEXP_REPLACE": _null_safe(_regexp_replace),
    "REGEXP_EXTRACT": _null_safe(_regexp_extract),
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "IFNULL": _ifnull,
    "NVL": _ifnull,
    "REVERSE": _null_safe(lambda v: _to_str(v)[::-1]),
    "LPAD": _null_safe(lambda v, n, p=" ": _to_str(v).rjust(int(n), _to_str(p)[0])),
    "RPAD": _null_safe(lambda v, n, p=" ": _to_str(v).ljust(int(n), _to_str(p)[0])),
    "LEFT": _null_safe(lambda v, n: _to_str(v)[: int(n)]),
    "RIGHT": _null_safe(lambda v, n: _to_str(v)[-int(n):] if int(n) > 0 else ""),
    "CONTAINS": _null_safe(lambda v, s: _to_str(s) in _to_str(v)),
    "STARTS_WITH": _null_safe(lambda v, s: _to_str(v).startswith(_to_str(s))),
    "ENDS_WITH": _null_safe(lambda v, s: _to_str(v).endswith(_to_str(s))),
    "TRY_CAST_DOUBLE": _null_safe(_try_float),
    "TYPEOF": lambda v: type(v).__name__ if not is_null(v) else "NULL",
}


def call_scalar(name: str, args: Sequence[Any]) -> Any:
    func = SCALAR_FUNCTIONS.get(name.upper())
    if func is None:
        raise ExecutionError(f"Unknown scalar function: {name}")
    try:
        return func(*args)
    except (ValueError, TypeError, re.error) as exc:
        raise ExecutionError(f"Error evaluating {name}({args!r}): {exc}") from exc


# --------------------------------------------------------------------------
# Aggregate functions
# --------------------------------------------------------------------------
class Aggregate:
    """Incremental aggregate accumulator."""

    def add(self, value: Any) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def result(self) -> Any:  # pragma: no cover - interface
        raise NotImplementedError


class CountAgg(Aggregate):
    def __init__(self, distinct: bool = False, count_star: bool = False):
        self.distinct = distinct
        self.count_star = count_star
        self.count = 0
        self.seen: set = set()

    def add(self, value: Any) -> None:
        if self.count_star:
            self.count += 1
            return
        if is_null(value):
            return
        if self.distinct:
            self.seen.add(str(value))
        else:
            self.count += 1

    def result(self) -> int:
        return len(self.seen) if self.distinct else self.count


class SumAgg(Aggregate):
    def __init__(self) -> None:
        self.total: Optional[float] = None

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.total = (self.total or 0) + value

    def result(self) -> Optional[float]:
        return self.total


class AvgAgg(Aggregate):
    def __init__(self) -> None:
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.total += float(value)
        self.count += 1

    def result(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MinAgg(Aggregate):
    def __init__(self) -> None:
        self.value: Any = None

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        if self.value is None or value < self.value:
            self.value = value

    def result(self) -> Any:
        return self.value


class MaxAgg(Aggregate):
    def __init__(self) -> None:
        self.value: Any = None

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        if self.value is None or value > self.value:
            self.value = value

    def result(self) -> Any:
        return self.value


class StddevAgg(Aggregate):
    def __init__(self) -> None:
        self.values: List[float] = []

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.values.append(float(value))

    def result(self) -> Optional[float]:
        n = len(self.values)
        if n < 2:
            return None
        mean = sum(self.values) / n
        variance = sum((v - mean) ** 2 for v in self.values) / (n - 1)
        return math.sqrt(variance)


class StringAgg(Aggregate):
    def __init__(self, separator: str = ",") -> None:
        self.separator = separator
        self.parts: List[str] = []

    def add(self, value: Any) -> None:
        if is_null(value):
            return
        self.parts.append(_to_str(value))

    def result(self) -> Optional[str]:
        return self.separator.join(self.parts) if self.parts else None


AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDDEV", "STDDEV_SAMP", "STRING_AGG", "GROUP_CONCAT"}
WINDOW_NAMES = {"ROW_NUMBER", "RANK", "DENSE_RANK", "COUNT", "SUM", "MIN", "MAX", "AVG"}


def make_aggregate(name: str, distinct: bool = False, count_star: bool = False, separator: str = ",") -> Aggregate:
    upper = name.upper()
    if upper == "COUNT":
        return CountAgg(distinct=distinct, count_star=count_star)
    if upper == "SUM":
        return SumAgg()
    if upper == "AVG":
        return AvgAgg()
    if upper == "MIN":
        return MinAgg()
    if upper == "MAX":
        return MaxAgg()
    if upper in ("STDDEV", "STDDEV_SAMP"):
        return StddevAgg()
    if upper in ("STRING_AGG", "GROUP_CONCAT"):
        return StringAgg(separator)
    raise ExecutionError(f"Unknown aggregate function: {name}")
