"""The Database facade: the object the rest of the system connects to.

Cocoon "connects to databases" — Snowflake, DuckDB, BigQuery, SQL Server in
the paper.  Here the same role is played by :class:`Database`, an in-process
engine with the familiar ``register`` / ``sql`` / ``table`` API (mirroring
DuckDB's Python API shape) so that the cleaning pipeline, the profiler and
the baselines all issue real SQL.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataframe.schema import ColumnType
from repro.dataframe.table import Table
from repro.obs import get_tracer
from repro.obs import span as obs_span
from repro.obs.report import render_explain
from repro.sql.catalog import Catalog
from repro.sql.executor import Executor
from repro.sql.parser import parse


def summarise_sql(query: str, limit: int = 120) -> str:
    """One-line summary of a statement for span attributes: comments stripped,
    whitespace collapsed, truncated with an ellipsis."""
    no_comments = re.sub(r"--[^\n]*", " ", query)
    collapsed = " ".join(no_comments.split())
    if len(collapsed) > limit:
        return collapsed[: limit - 1] + "…"
    return collapsed


class QueryLog:
    """Record of every statement executed, for interpretability and tests."""

    def __init__(self) -> None:
        self.statements: List[str] = []

    def record(self, sql: str) -> None:
        self.statements.append(sql)

    def __len__(self) -> int:
        return len(self.statements)


class Database:
    """An in-memory SQL database."""

    def __init__(self, name: str = "memory", compiled: Optional[bool] = None) -> None:
        """``compiled`` passes through to :class:`Executor` (None reads the
        ``REPRO_SQL_COMPILED`` environment variable)."""
        self.name = name
        self.catalog = Catalog()
        self.executor = Executor(self.catalog, compiled=compiled)
        self.query_log = QueryLog()

    # -- table management -----------------------------------------------------
    def register(self, table: Table, name: Optional[str] = None, replace: bool = True) -> None:
        """Register an in-memory table under ``name`` (defaults to its own name)."""
        if name is not None and name != table.name:
            table = table.rename(name)
        self.catalog.register(table, replace=replace)

    def table(self, name: str) -> Table:
        return self.catalog.get(name)

    def has_table(self, name: str) -> bool:
        return self.catalog.has(name)

    def drop_table(self, name: str, if_exists: bool = True) -> None:
        self.catalog.drop(name, if_exists=if_exists)

    def table_names(self) -> List[str]:
        return self.catalog.table_names()

    def schema(self, name: str) -> Dict[str, ColumnType]:
        return self.catalog.schema(name)

    # -- query execution ---------------------------------------------------------
    def sql(self, query: str) -> Optional[Table]:
        """Parse and execute a SQL statement, returning a result table (or None)."""
        self.query_log.record(query)
        with obs_span("sql.query", statement=summarise_sql(query)) as sp:
            statement = parse(query)
            result = self.executor.execute(statement)
            if result is not None:
                sp.annotate(rows_out=result.num_rows)
        return result

    def explain_analyze(self, query: str) -> Tuple[Optional[Table], str]:
        """Execute a statement under a forced trace root and report per-plan-node
        timings in an ``EXPLAIN ANALYZE``-style rendering.

        Works regardless of whether tracing is globally enabled: the root span
        is forced, and the executor's stage spans (scan, join, filter,
        aggregate, window, project, qualify, distinct, sort) nest beneath it.
        Returns ``(result_table, report_text)``.
        """
        self.query_log.record(query)
        with get_tracer().span(
            "sql.query", force=True, statement=summarise_sql(query)
        ) as sp:
            statement = parse(query)
            result = self.executor.execute(statement)
            if result is not None:
                sp.annotate(rows_out=result.num_rows)
        return result, render_explain(sp.to_dict())

    def execute_script(self, script: str) -> Optional[Table]:
        """Execute a ``;``-separated script, returning the last result."""
        result: Optional[Table] = None
        for statement in split_statements(script):
            result = self.sql(statement)
        return result

    # -- convenience helpers used by the pipeline ----------------------------------
    def scalar(self, query: str) -> Any:
        """Run a query expected to return a single cell."""
        result = self.sql(query)
        if result is None or result.num_rows == 0 or result.num_columns == 0:
            return None
        return result.cell(0, result.column_names[0])

    def column_values(self, query: str) -> List[Any]:
        """Run a query and return the first output column as a list."""
        result = self.sql(query)
        if result is None or result.num_columns == 0:
            return []
        return list(result.columns[0].values)


def split_statements(script: str) -> List[str]:
    """Split a SQL script on ``;`` while respecting string literals and comments."""
    statements: List[str] = []
    buf: List[str] = []
    in_string = False
    in_line_comment = False
    i = 0
    while i < len(script):
        ch = script[i]
        if in_line_comment:
            buf.append(ch)
            if ch == "\n":
                in_line_comment = False
            i += 1
            continue
        if in_string:
            buf.append(ch)
            if ch == "'":
                if i + 1 < len(script) and script[i + 1] == "'":
                    buf.append("'")
                    i += 2
                    continue
                in_string = False
            i += 1
            continue
        if ch == "'":
            in_string = True
            buf.append(ch)
            i += 1
            continue
        if ch == "-" and script.startswith("--", i):
            in_line_comment = True
            buf.append(ch)
            i += 1
            continue
        if ch == ";":
            text = "".join(buf).strip()
            if text:
                statements.append(text)
            buf = []
            i += 1
            continue
        buf.append(ch)
        i += 1
    text = "".join(buf).strip()
    if text and not all(line.strip().startswith("--") or not line.strip() for line in text.splitlines()):
        statements.append(text)
    return statements
