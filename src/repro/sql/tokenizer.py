"""SQL tokenizer.

Splits a SQL string into a stream of typed tokens.  Supports single-quoted
string literals with doubled-quote escaping, double-quoted identifiers,
numeric literals, line comments (``--``) and block comments (``/* */``),
and multi-character operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.sql.errors import ParseError


class TokenType(enum.Enum):
    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    NUMBER = "NUMBER"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER",
    "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS", "NULL", "LIKE",
    "ESCAPE", "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "CAST", "ASC", "DESC",
    "CREATE", "OR", "REPLACE", "TABLE", "VIEW", "DROP", "IF", "EXISTS",
    "INSERT", "INTO", "VALUES", "OVER", "PARTITION", "ROWS", "TRUE", "FALSE",
    "UNION", "ALL", "JOIN", "ON", "INNER", "LEFT", "OUTER", "QUALIFY",
}

_OPERATORS = ["<>", "!=", ">=", "<=", "||", "=", "<", ">", "+", "-", "*", "/", "%"]
_PUNCT = ["(", ")", ",", ".", ";"]


@dataclass
class Token:
    type: TokenType
    value: str
    position: int

    def is_keyword(self, *names: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value in names

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.value!r})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql`` into a list of tokens ending with EOF."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and sql[i + 1] == "*":
            end = sql.find("*/", i + 2)
            if end == -1:
                raise ParseError("Unterminated block comment", i, sql)
            i = end + 2
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while True:
                if j >= n:
                    raise ParseError("Unterminated string literal", i, sql)
                if sql[j] == "'":
                    if j + 1 < n and sql[j + 1] == "'":
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(sql[j])
                j += 1
            tokens.append(Token(TokenType.STRING, "".join(buf), i))
            i = j + 1
            continue
        if ch == '"':
            j = sql.find('"', i + 1)
            if j == -1:
                raise ParseError("Unterminated quoted identifier", i, sql)
            tokens.append(Token(TokenType.IDENTIFIER, sql[i + 1: j], i))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            j = i
            saw_dot = False
            saw_exp = False
            while j < n:
                c = sql[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not saw_dot and not saw_exp:
                    saw_dot = True
                    j += 1
                elif c in "eE" and not saw_exp and j > i:
                    saw_exp = True
                    j += 1
                    if j < n and sql[j] in "+-":
                        j += 1
                else:
                    break
            tokens.append(Token(TokenType.NUMBER, sql[i:j], i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (sql[j].isalnum() or sql[j] == "_"):
                j += 1
            word = sql[i:j]
            if word.upper() in KEYWORDS:
                tokens.append(Token(TokenType.KEYWORD, word.upper(), i))
            else:
                tokens.append(Token(TokenType.IDENTIFIER, word, i))
            i = j
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token(TokenType.OPERATOR, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in _PUNCT:
            tokens.append(Token(TokenType.PUNCT, ch, i))
            i += 1
            continue
        raise ParseError(f"Unexpected character {ch!r}", i, sql)
    tokens.append(Token(TokenType.EOF, "", n))
    return tokens
