"""Table catalog: the engine's registry of named tables.

A :class:`Catalog` is the single source of truth for which
:class:`~repro.dataframe.table.Table` objects a query can see.  The
:class:`~repro.sql.executor.Executor` resolves every ``FROM``/``JOIN`` name
through it, ``CREATE TABLE … AS`` registers into it, and ``DROP TABLE``
removes from it.  Each :class:`~repro.sql.database.Database` owns exactly one
catalog; nothing here is shared across databases.
"""

from __future__ import annotations

from typing import Dict, List

from repro.dataframe.schema import ColumnType
from repro.dataframe.table import Table
from repro.sql.errors import CatalogError


class Catalog:
    """Holds the named tables visible to queries.

    Table names are case-insensitive, matching the behaviour of the engines
    the paper targets (DuckDB, Snowflake, BigQuery).
    """

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def _key(self, name: str) -> str:
        return name.lower()

    def register(self, table: Table, replace: bool = True) -> None:
        """Make ``table`` visible to queries under its own name.

        With ``replace`` False a name collision raises
        :class:`~repro.sql.errors.CatalogError` instead of overwriting.
        """
        key = self._key(table.name)
        if not replace and key in self._tables:
            raise CatalogError(f"Table {table.name!r} already exists")
        self._tables[key] = table

    def get(self, name: str) -> Table:
        """Look up a table by (case-insensitive) name, raising ``CatalogError`` if absent."""
        key = self._key(name)
        if key not in self._tables:
            raise CatalogError(f"Table {name!r} does not exist; known tables: {self.table_names()}")
        return self._tables[key]

    def has(self, name: str) -> bool:
        """Whether a table of this name is registered."""
        return self._key(name) in self._tables

    def drop(self, name: str, if_exists: bool = False) -> None:
        """Remove a table; with ``if_exists`` a missing name is a no-op."""
        key = self._key(name)
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"Cannot drop missing table {name!r}")
        del self._tables[key]

    def table_names(self) -> List[str]:
        """Registered table names (original casing), sorted."""
        return sorted(t.name for t in self._tables.values())

    def schema(self, name: str) -> Dict[str, ColumnType]:
        """Column name → type mapping, as exposed by a database catalog."""
        table = self.get(name)
        return {c.name: c.dtype for c in table.columns}
