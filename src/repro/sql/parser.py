"""Recursive-descent parser producing :mod:`repro.sql.ast_nodes` trees.

The module's entry points are :func:`parse` (one full statement — ``SELECT``,
``CREATE [OR REPLACE] TABLE/VIEW … AS``, ``DROP TABLE/VIEW``) and
:func:`parse_expression` (a standalone scalar expression, as used by tests
and the SQL generator).  Both raise :class:`~repro.sql.errors.ParseError`
with the offending position on malformed input.  Parsing is side-effect
free: the returned AST references no catalog, so one parse can be executed
against any :class:`~repro.sql.database.Database`.
"""

from __future__ import annotations

from typing import List, Optional

from repro.dataframe.schema import parse_type
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    CreateTableAs,
    DropTable,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Join,
    Like,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    WindowFunction,
    WindowSpec,
)
from repro.sql.errors import ParseError
from repro.sql.tokenizer import Token, TokenType, tokenize


def parse(sql: str) -> Statement:
    """Parse a single SQL statement into its AST.

    Accepts an optional trailing ``;`` but exactly one statement — use
    :meth:`repro.sql.database.Database.execute_script` for ``;``-separated
    scripts.  Raises :class:`~repro.sql.errors.ParseError` on malformed or
    trailing input.
    """
    return Parser(sql).parse_statement()


def parse_expression(sql: str) -> Expression:
    """Parse a standalone scalar expression (used by tests and the SQL generator).

    The expression grammar is the same one ``SELECT`` items and ``WHERE``
    clauses use: operators with SQL precedence, ``CASE``/``CAST``/function
    calls, ``IN``/``BETWEEN``/``IS NULL``/``LIKE``.
    """
    return Parser(sql).parse_standalone_expression()


class Parser:
    """A hand-written recursive-descent parser for the supported SQL subset."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens: List[Token] = tokenize(sql)
        self.pos = 0

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.type is not TokenType.EOF:
            self.pos += 1
        return token

    def _check_keyword(self, *names: str) -> bool:
        return self._peek().is_keyword(*names)

    def _match_keyword(self, *names: str) -> bool:
        if self._check_keyword(*names):
            self._advance()
            return True
        return False

    def _expect_keyword(self, name: str) -> Token:
        token = self._peek()
        if not token.is_keyword(name):
            raise ParseError(f"Expected {name}, found {token.value!r}", token.position, self.sql)
        return self._advance()

    def _match_punct(self, value: str) -> bool:
        token = self._peek()
        if token.type is TokenType.PUNCT and token.value == value:
            self._advance()
            return True
        return False

    def _expect_punct(self, value: str) -> Token:
        token = self._peek()
        if token.type is not TokenType.PUNCT or token.value != value:
            raise ParseError(f"Expected {value!r}, found {token.value!r}", token.position, self.sql)
        return self._advance()

    def _match_operator(self, *values: str) -> Optional[str]:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value in values:
            self._advance()
            return token.value
        return None

    def _expect_identifier(self) -> str:
        token = self._peek()
        if token.type is TokenType.IDENTIFIER:
            self._advance()
            return token.value
        # Allow non-reserved keywords to be used as identifiers where sensible.
        if token.type is TokenType.KEYWORD and token.value in ("TABLE", "VIEW", "ROWS"):
            self._advance()
            return token.value.lower()
        raise ParseError(f"Expected identifier, found {token.value!r}", token.position, self.sql)

    # -- statements -----------------------------------------------------------
    def parse_statement(self) -> Statement:
        statement = self._parse_statement_inner()
        self._match_punct(";")
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(f"Unexpected trailing input: {token.value!r}", token.position, self.sql)
        return statement

    def _parse_statement_inner(self) -> Statement:
        if self._check_keyword("SELECT"):
            return self._parse_select()
        if self._check_keyword("CREATE"):
            return self._parse_create()
        if self._check_keyword("DROP"):
            return self._parse_drop()
        token = self._peek()
        raise ParseError(f"Expected a statement, found {token.value!r}", token.position, self.sql)

    def parse_standalone_expression(self) -> Expression:
        expr = self._parse_expression()
        token = self._peek()
        if token.type is not TokenType.EOF:
            raise ParseError(f"Unexpected trailing input: {token.value!r}", token.position, self.sql)
        return expr

    def _parse_create(self) -> CreateTableAs:
        self._expect_keyword("CREATE")
        or_replace = False
        if self._match_keyword("OR"):
            self._expect_keyword("REPLACE")
            or_replace = True
        is_view = False
        if self._match_keyword("VIEW"):
            is_view = True
        else:
            self._expect_keyword("TABLE")
        name = self._expect_identifier()
        self._expect_keyword("AS")
        query = self._parse_select()
        return CreateTableAs(name=name, query=query, or_replace=or_replace, is_view=is_view)

    def _parse_drop(self) -> DropTable:
        self._expect_keyword("DROP")
        if not self._match_keyword("TABLE"):
            self._expect_keyword("VIEW")
        if_exists = False
        if self._match_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        name = self._expect_identifier()
        return DropTable(name=name, if_exists=if_exists)

    # -- SELECT ----------------------------------------------------------------
    def _parse_select(self) -> Select:
        self._expect_keyword("SELECT")
        distinct = False
        if self._match_keyword("DISTINCT"):
            distinct = True
        elif self._match_keyword("ALL"):
            pass
        items = [self._parse_select_item()]
        while self._match_punct(","):
            items.append(self._parse_select_item())
        from_table: Optional[TableRef] = None
        joins: List[Join] = []
        where = None
        group_by: List[Expression] = []
        having = None
        qualify = None
        order_by: List[OrderItem] = []
        limit = None
        offset = None
        if self._match_keyword("FROM"):
            from_table = self._parse_table_ref()
            while self._check_keyword("JOIN", "INNER", "LEFT"):
                joins.append(self._parse_join())
        if self._match_keyword("WHERE"):
            where = self._parse_expression()
        if self._match_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self._parse_expression())
            while self._match_punct(","):
                group_by.append(self._parse_expression())
        if self._match_keyword("HAVING"):
            having = self._parse_expression()
        if self._match_keyword("QUALIFY"):
            qualify = self._parse_expression()
        if self._match_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by.append(self._parse_order_item())
            while self._match_punct(","):
                order_by.append(self._parse_order_item())
        if self._match_keyword("LIMIT"):
            limit = self._parse_integer()
        if self._match_keyword("OFFSET"):
            offset = self._parse_integer()
        return Select(
            items=items,
            from_table=from_table,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            qualify=qualify,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_integer(self) -> int:
        token = self._peek()
        if token.type is not TokenType.NUMBER:
            raise ParseError(f"Expected integer, found {token.value!r}", token.position, self.sql)
        self._advance()
        return int(float(token.value))

    def _parse_select_item(self) -> SelectItem:
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            return SelectItem(Star())
        expr = self._parse_expression()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return SelectItem(expr, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self._parse_expression()
        descending = False
        if self._match_keyword("DESC"):
            descending = True
        elif self._match_keyword("ASC"):
            pass
        return OrderItem(expr, descending)

    def _parse_table_ref(self) -> TableRef:
        if self._match_punct("("):
            query = self._parse_select()
            self._expect_punct(")")
            alias = None
            if self._match_keyword("AS"):
                alias = self._expect_identifier()
            elif self._peek().type is TokenType.IDENTIFIER:
                alias = self._expect_identifier()
            return TableRef(subquery=query, alias=alias)
        name = self._expect_identifier()
        alias = None
        if self._match_keyword("AS"):
            alias = self._expect_identifier()
        elif self._peek().type is TokenType.IDENTIFIER:
            alias = self._expect_identifier()
        return TableRef(name=name, alias=alias)

    def _parse_join(self) -> Join:
        kind = "INNER"
        if self._match_keyword("LEFT"):
            self._match_keyword("OUTER")
            kind = "LEFT"
        elif self._match_keyword("INNER"):
            kind = "INNER"
        self._expect_keyword("JOIN")
        table = self._parse_table_ref()
        self._expect_keyword("ON")
        condition = self._parse_expression()
        return Join(kind=kind, table=table, condition=condition)

    # -- expressions (precedence climbing) ---------------------------------------
    def _parse_expression(self) -> Expression:
        return self._parse_or()

    def _parse_or(self) -> Expression:
        left = self._parse_and()
        while self._match_keyword("OR"):
            left = BinaryOp("OR", left, self._parse_and())
        return left

    def _parse_and(self) -> Expression:
        left = self._parse_not()
        while self._match_keyword("AND"):
            left = BinaryOp("AND", left, self._parse_not())
        return left

    def _parse_not(self) -> Expression:
        if self._match_keyword("NOT"):
            return UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> Expression:
        left = self._parse_additive()
        while True:
            op = self._match_operator("=", "<>", "!=", "<", ">", "<=", ">=")
            if op is not None:
                op = "<>" if op == "!=" else op
                left = BinaryOp(op, left, self._parse_additive())
                continue
            if self._check_keyword("IS"):
                self._advance()
                negated = bool(self._match_keyword("NOT"))
                self._expect_keyword("NULL")
                left = IsNull(left, negated)
                continue
            if self._check_keyword("NOT") and self._peek(1).is_keyword("IN", "LIKE", "BETWEEN"):
                self._advance()
                left = self._parse_in_like_between(left, negated=True)
                continue
            if self._check_keyword("IN", "LIKE", "BETWEEN"):
                left = self._parse_in_like_between(left, negated=False)
                continue
            return left

    def _parse_in_like_between(self, left: Expression, negated: bool) -> Expression:
        if self._match_keyword("IN"):
            self._expect_punct("(")
            items = [self._parse_expression()]
            while self._match_punct(","):
                items.append(self._parse_expression())
            self._expect_punct(")")
            return InList(left, items, negated)
        if self._match_keyword("LIKE"):
            right = self._parse_additive()
            escape = None
            if self._match_keyword("ESCAPE"):
                escape = self._parse_additive()
            expr: Expression = Like(left, right, escape)
            return UnaryOp("NOT", expr) if negated else expr
        self._expect_keyword("BETWEEN")
        low = self._parse_additive()
        self._expect_keyword("AND")
        high = self._parse_additive()
        return Between(left, low, high, negated)

    def _parse_additive(self) -> Expression:
        left = self._parse_multiplicative()
        while True:
            op = self._match_operator("+", "-", "||")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_multiplicative())

    def _parse_multiplicative(self) -> Expression:
        left = self._parse_unary()
        while True:
            op = self._match_operator("*", "/", "%")
            if op is None:
                return left
            left = BinaryOp(op, left, self._parse_unary())

    def _parse_unary(self) -> Expression:
        op = self._match_operator("-", "+")
        if op is not None:
            return UnaryOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> Expression:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.value
            if "." in text or "e" in text.lower():
                return Literal(float(text))
            return Literal(int(text))
        if token.type is TokenType.STRING:
            self._advance()
            return Literal(token.value)
        if token.is_keyword("NULL"):
            self._advance()
            return Literal(None)
        if token.is_keyword("TRUE"):
            self._advance()
            return Literal(True)
        if token.is_keyword("FALSE"):
            self._advance()
            return Literal(False)
        if token.is_keyword("CASE"):
            return self._parse_case()
        if token.is_keyword("CAST"):
            return self._parse_cast()
        if token.type is TokenType.PUNCT and token.value == "(":
            self._advance()
            expr = self._parse_expression()
            self._expect_punct(")")
            return expr
        if token.type is TokenType.IDENTIFIER or token.is_keyword("LEFT", "REPLACE"):
            # LEFT and REPLACE are both keywords and scalar function names.
            return self._parse_identifier_expression()
        raise ParseError(f"Unexpected token {token.value!r} in expression", token.position, self.sql)

    def _parse_case(self) -> CaseWhen:
        self._expect_keyword("CASE")
        operand = None
        if not self._check_keyword("WHEN"):
            operand = self._parse_expression()
        whens = []
        while self._match_keyword("WHEN"):
            condition = self._parse_expression()
            self._expect_keyword("THEN")
            result = self._parse_expression()
            whens.append((condition, result))
        default = None
        if self._match_keyword("ELSE"):
            default = self._parse_expression()
        self._expect_keyword("END")
        if not whens:
            raise ParseError("CASE requires at least one WHEN clause", self._peek().position, self.sql)
        return CaseWhen(whens=whens, default=default, operand=operand)

    def _parse_cast(self) -> Cast:
        self._expect_keyword("CAST")
        self._expect_punct("(")
        operand = self._parse_expression()
        self._expect_keyword("AS")
        type_name = self._expect_identifier() if self._peek().type is TokenType.IDENTIFIER else self._advance().value
        # Allow parameterised types such as VARCHAR(20).
        if self._match_punct("("):
            while not self._match_punct(")"):
                self._advance()
        self._expect_punct(")")
        return Cast(operand, parse_type(type_name))

    def _parse_identifier_expression(self) -> Expression:
        token = self._advance()
        name = token.value
        if self._peek().type is TokenType.PUNCT and self._peek().value == "(":
            return self._parse_function_call(name)
        if self._match_punct("."):
            nxt = self._peek()
            if nxt.type is TokenType.OPERATOR and nxt.value == "*":
                self._advance()
                return Star(table=name)
            column = self._expect_identifier()
            return ColumnRef(column, table=name)
        return ColumnRef(name)

    def _parse_function_call(self, name: str) -> Expression:
        self._expect_punct("(")
        distinct = bool(self._match_keyword("DISTINCT"))
        args: List[Expression] = []
        token = self._peek()
        if token.type is TokenType.OPERATOR and token.value == "*":
            self._advance()
            args.append(Star())
        elif not (token.type is TokenType.PUNCT and token.value == ")"):
            args.append(self._parse_expression())
            while self._match_punct(","):
                args.append(self._parse_expression())
        self._expect_punct(")")
        if self._match_keyword("OVER"):
            self._expect_punct("(")
            window = WindowSpec()
            if self._match_keyword("PARTITION"):
                self._expect_keyword("BY")
                window.partition_by.append(self._parse_expression())
                while self._match_punct(","):
                    window.partition_by.append(self._parse_expression())
            if self._match_keyword("ORDER"):
                self._expect_keyword("BY")
                window.order_by.append(self._parse_order_item())
                while self._match_punct(","):
                    window.order_by.append(self._parse_order_item())
            self._expect_punct(")")
            return WindowFunction(name.upper(), args, window)
        return FunctionCall(name.upper(), args, distinct)
