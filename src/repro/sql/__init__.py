"""A miniature in-memory SQL engine.

The paper's system executes all of its error detection and cleaning through
SQL against a database (DuckDB in the authors' experiments) so the result is
"scalable, interpretable, and reusable".  This package is the reproduction's
database substrate: a from-scratch SQL engine covering the surface that the
Cocoon pipeline emits and the profiler issues —

* ``SELECT`` lists with arbitrary expressions, aliases and ``DISTINCT``
* ``CASE WHEN … THEN … ELSE … END``
* ``CAST(expr AS type)``
* scalar functions (``UPPER``/``LOWER``/``TRIM``/``REGEXP_MATCHES``/
  ``REGEXP_REPLACE``/``COALESCE``/``NULLIF`` …)
* aggregates with ``GROUP BY`` / ``HAVING``
* window function ``ROW_NUMBER() OVER (PARTITION BY … ORDER BY …)``
* ``INNER``/``LEFT`` joins — planned as index-backed hash joins whenever the
  ``ON`` condition contains an equality between the two sides (with residual
  predicates checked on probe hits), falling back to a nested loop for pure
  non-equi conditions; single-side ``WHERE`` conjuncts are pushed below joins
* ``WHERE``, ``ORDER BY``, ``LIMIT``, derived tables in ``FROM``
* ``CREATE [OR REPLACE] TABLE/VIEW … AS SELECT`` and ``DROP TABLE``

The entry point is :class:`repro.sql.database.Database`; the layers beneath
it are :mod:`repro.sql.tokenizer` → :mod:`repro.sql.parser` (AST in
:mod:`repro.sql.ast_nodes`) → :mod:`repro.sql.executor` over a
:mod:`repro.sql.catalog`.  ``docs/architecture.md`` places the package in
the full system; ``docs/benchmarks.md`` tracks executor performance.
"""

from repro.sql.errors import SQLError, ParseError, ExecutionError, CatalogError
from repro.sql.database import Database
from repro.sql.parser import parse, parse_expression

__all__ = [
    "Database",
    "SQLError",
    "ParseError",
    "ExecutionError",
    "CatalogError",
    "parse",
    "parse_expression",
]
