"""A miniature in-memory SQL engine.

The paper's system executes all of its error detection and cleaning through
SQL against a database (DuckDB in the authors' experiments) so the result is
"scalable, interpretable, and reusable".  This package is the reproduction's
database substrate: a from-scratch SQL engine covering the surface that the
Cocoon pipeline emits and the profiler issues —

* ``SELECT`` lists with arbitrary expressions, aliases and ``DISTINCT``
* ``CASE WHEN … THEN … ELSE … END``
* ``CAST(expr AS type)``
* scalar functions (``UPPER``/``LOWER``/``TRIM``/``REGEXP_MATCHES``/
  ``REGEXP_REPLACE``/``COALESCE``/``NULLIF`` …)
* aggregates with ``GROUP BY`` / ``HAVING``
* window function ``ROW_NUMBER() OVER (PARTITION BY … ORDER BY …)``
* ``WHERE``, ``ORDER BY``, ``LIMIT``, derived tables in ``FROM``
* ``CREATE [OR REPLACE] TABLE/VIEW … AS SELECT`` and ``DROP TABLE``

The entry point is :class:`repro.sql.database.Database`.
"""

from repro.sql.errors import SQLError, ParseError, ExecutionError, CatalogError
from repro.sql.database import Database

__all__ = ["Database", "SQLError", "ParseError", "ExecutionError", "CatalogError"]
