"""Differential testing: emitted cleaning scripts vs the in-process engine.

The paper's output artifact is a reusable SQL script; the dialect layer
(:mod:`repro.core.dialects`) claims that script can run on an external
engine.  This module *proves* it, per dataset and per scenario:

1. clean the dirty table in-process (simulated LLM, deterministic) and
   extract the replayable :class:`~repro.core.plan.CleaningPlan`;
2. re-run ``plan.emit(ReproDialect())`` through a fresh in-process database
   and check it reproduces the pipeline's cleaned table exactly — the plan
   really is the whole cleaning run;
3. run ``plan.emit(SqliteDialect())`` through stdlib ``sqlite3`` and compare
   the final table cell-by-cell under
   :func:`~repro.datasets.base.strict_differs`, keyed by the hidden row-id
   column so row removals must agree too.

Representation differences that are storage artefacts, not semantic
divergences, are normalised before comparison: sqlite has no boolean or
date storage classes, so when the in-process cell is a bool/date/datetime
the sqlite cell is first pulled through the same
:func:`~repro.dataframe.schema.coerce_value` the engine itself uses.
Everything else must match textually — a ``'120'`` vs ``120.0`` difference
is reported, because downstream consumers would see it.

Run it from the command line::

    python -m repro.sql.differential                 # everything
    python -m repro.sql.differential --datasets beers --scenarios typo-storm

Exit status 1 on any mismatch; ``--json`` dumps the full report.  The same
checks are a tier-1 test (``tests/sql/test_differential.py``) and a CI job.
"""

from __future__ import annotations

import argparse
import datetime as _dt
import json
import sqlite3
import sys
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.context import ROW_ID_COLUMN, CleaningConfig
from repro.core.dialects import ReproDialect, SqliteDialect
from repro.core.pipeline import CocoonCleaner
from repro.core.plan import CleaningPlan, extract_plan
from repro.dataframe.column import Column
from repro.dataframe.schema import ColumnType, coerce_value, is_null
from repro.dataframe.table import Table
from repro.datasets.base import strict_differs
from repro.sql.database import Database

_SQLITE_TYPES = {
    ColumnType.INTEGER: "INTEGER",
    ColumnType.DOUBLE: "REAL",
    ColumnType.BOOLEAN: "INTEGER",
}


@dataclass(frozen=True)
class CellMismatch:
    """One cell (or row) where the two engines disagree."""

    row_id: Optional[int]
    column: str
    in_process: Any
    sqlite: Any
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "row_id": self.row_id,
            "column": self.column,
            "in_process": None if is_null(self.in_process) else str(self.in_process),
            "sqlite": None if is_null(self.sqlite) else str(self.sqlite),
            "note": self.note,
        }


@dataclass
class DifferentialResult:
    """Outcome of one dataset's / scenario's differential run."""

    name: str
    kind: str                      # "dataset" | "scenario"
    rows: int
    columns: int
    steps: int
    cells_compared: int = 0
    mismatches: List[CellMismatch] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "rows": self.rows,
            "columns": self.columns,
            "steps": self.steps,
            "cells_compared": self.cells_compared,
            "ok": self.ok,
            "mismatches": [m.to_dict() for m in self.mismatches[:50]],
            "mismatch_count": len(self.mismatches),
        }


# --------------------------------------------------------------------------
# engines
# --------------------------------------------------------------------------
def _with_row_ids(table: Table, name: str) -> Table:
    if ROW_ID_COLUMN in table.column_names:
        return table.rename(name)
    ids = Column(ROW_ID_COLUMN, list(range(table.num_rows)), ColumnType.INTEGER)
    return Table(name, [ids] + list(table.columns))


def run_plan_in_process(plan: CleaningPlan, dirty_with_ids: Table) -> Table:
    """Execute ``plan.emit(ReproDialect())`` on a fresh in-process database."""
    db = Database()
    db.register(dirty_with_ids.rename(plan.base_table), replace=True)
    db.execute_script(plan.emit(ReproDialect()))
    return db.table(plan.final_table())


def run_plan_sqlite(plan: CleaningPlan, dirty_with_ids: Table) -> List[Dict[str, Any]]:
    """Execute ``plan.emit(SqliteDialect())`` on stdlib sqlite3.

    Returns the final table's rows as dicts.  The dirty data is loaded with
    typed columns so sqlite's storage classes mirror the in-process column
    types (bools as 0/1, dates as ISO text — sqlite has no richer classes).
    """
    dialect = SqliteDialect()
    connection = sqlite3.connect(":memory:")
    try:
        column_defs = ", ".join(
            f"{dialect.quote_identifier(col.name)} {_SQLITE_TYPES.get(col.dtype, 'TEXT')}"
            for col in dirty_with_ids.columns
        )
        table_sql = dialect.quote_identifier(plan.base_table)
        connection.execute(f"CREATE TABLE {table_sql} ({column_defs})")
        placeholders = ", ".join("?" for _ in dirty_with_ids.columns)
        connection.executemany(
            f"INSERT INTO {table_sql} VALUES ({placeholders})",
            (
                tuple(_bind_value(v) for v in row)
                for row in zip(*(col.values for col in dirty_with_ids.columns))
            ),
        )
        connection.executescript(plan.emit(dialect))
        final = dialect.quote_identifier(plan.final_table())
        cursor = connection.execute(f"SELECT * FROM {final}")
        names = [d[0] for d in cursor.description]
        return [dict(zip(names, row)) for row in cursor.fetchall()]
    finally:
        connection.close()


def _bind_value(value: Any) -> Any:
    if is_null(value):
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (_dt.date, _dt.datetime)):
        return str(value)
    return value


# --------------------------------------------------------------------------
# comparison
# --------------------------------------------------------------------------
def _cells_equal(in_process: Any, from_sqlite: Any) -> bool:
    """``strict_differs`` with sqlite's storage-class gaps normalised away.

    Only the representations sqlite *cannot* express are coerced (booleans,
    dates, timestamps), and only when the in-process side actually holds one
    — so a genuine value divergence is never masked by the normalisation.
    """
    if isinstance(in_process, bool):
        from_sqlite = coerce_value(from_sqlite, ColumnType.BOOLEAN)
    elif isinstance(in_process, _dt.datetime):
        from_sqlite = coerce_value(from_sqlite, ColumnType.TIMESTAMP)
    elif isinstance(in_process, _dt.date):
        from_sqlite = coerce_value(from_sqlite, ColumnType.DATE)
    return not strict_differs(in_process, from_sqlite)


def compare_tables(
    reference: Table, sqlite_rows: List[Dict[str, Any]], result: DifferentialResult
) -> None:
    """Cell-by-cell comparison keyed by the hidden row id, into ``result``."""
    columns = [c for c in reference.column_names if c != ROW_ID_COLUMN]
    ref_by_id: Dict[Any, Dict[str, Any]] = {}
    id_values = reference.column(ROW_ID_COLUMN).values
    for i, row_id in enumerate(id_values):
        ref_by_id[row_id] = {c: reference.column(c).values[i] for c in columns}
    sqlite_by_id = {row.get(ROW_ID_COLUMN): row for row in sqlite_rows}

    for row_id in sorted(set(ref_by_id) - set(sqlite_by_id)):
        result.mismatches.append(
            CellMismatch(row_id, "*", "row present", "row missing", "sqlite removed this row")
        )
    for row_id in sorted(set(sqlite_by_id) - set(ref_by_id)):
        result.mismatches.append(
            CellMismatch(row_id, "*", "row missing", "row present", "sqlite kept this row")
        )
    for row_id, ref_row in ref_by_id.items():
        sq_row = sqlite_by_id.get(row_id)
        if sq_row is None:
            continue
        for column in columns:
            result.cells_compared += 1
            a, b = ref_row[column], sq_row.get(column)
            if not _cells_equal(a, b):
                result.mismatches.append(CellMismatch(row_id, column, a, b))


# --------------------------------------------------------------------------
# drivers
# --------------------------------------------------------------------------
def run_differential(
    dirty: Table, name: str, kind: str, config: Optional[CleaningConfig] = None
) -> DifferentialResult:
    """Full differential for one dirty table: clean, emit, run on both engines."""
    cleaner = CocoonCleaner(config=config)
    cleaning = cleaner.clean(dirty)
    plan = extract_plan(cleaning)
    result = DifferentialResult(
        name=name,
        kind=kind,
        rows=dirty.num_rows,
        columns=len(plan.column_names),
        steps=len(plan.steps),
    )

    dirty_with_ids = _with_row_ids(dirty, plan.base_table)
    reference = run_plan_in_process(plan, dirty_with_ids)

    # Gate 1: the emitted repro-dialect script IS the cleaning run.
    pipeline_clean = cleaning.cleaned_table
    replayed_clean = reference.drop([ROW_ID_COLUMN])
    for column in pipeline_clean.column_names:
        ref_values = replayed_clean.column(column).values
        for i, expected in enumerate(pipeline_clean.column(column).values):
            if strict_differs(expected, ref_values[i]):
                result.mismatches.append(
                    CellMismatch(
                        None,
                        column,
                        expected,
                        ref_values[i],
                        "plan.emit(ReproDialect()) diverged from the pipeline itself",
                    )
                )
    if result.mismatches:
        return result

    # Gate 2: the sqlite script agrees with the in-process engine.
    sqlite_rows = run_plan_sqlite(plan, dirty_with_ids)
    compare_tables(reference, sqlite_rows, result)
    return result


def run_dataset(name: str, seed: int = 0, scale: float = 0.05) -> DifferentialResult:
    """Differential over one registry dataset's dirty table."""
    from repro.datasets.registry import load_dataset

    dataset = load_dataset(name, seed=seed, scale=scale)
    return run_differential(dataset.dirty, name, "dataset")


def run_scenario(name: str) -> DifferentialResult:
    """Differential over one golden scenario's generated dirty table."""
    from repro.scenarios.catalog import builtin_specs
    from repro.scenarios.spec import generate

    generated = generate(builtin_specs()[name])
    issues = generated.spec.cleaning_issues
    config = CleaningConfig(enabled_issues=list(issues)) if issues is not None else None
    return run_differential(generated.dataset.dirty, name, "scenario", config=config)


def run_all(
    datasets: Optional[Sequence[str]] = None,
    scenarios: Optional[Sequence[str]] = None,
    seed: int = 0,
    scale: float = 0.05,
) -> List[DifferentialResult]:
    """Run the differential over registry datasets and golden scenarios."""
    from repro.datasets.registry import dataset_names
    from repro.scenarios.catalog import builtin_specs

    results: List[DifferentialResult] = []
    for name in datasets if datasets is not None else dataset_names():
        results.append(run_dataset(name, seed=seed, scale=scale))
    for name in scenarios if scenarios is not None else sorted(builtin_specs()):
        results.append(run_scenario(name))
    return results


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sql.differential",
        description="Run emitted cleaning scripts on sqlite3 and diff against the in-process engine.",
    )
    parser.add_argument("--datasets", nargs="*", default=None, help="registry dataset names (default: all)")
    parser.add_argument("--scenarios", nargs="*", default=None, help="golden scenario names (default: all)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--json", action="store_true", help="emit a JSON report to stdout")
    args = parser.parse_args(argv)

    results = run_all(args.datasets, args.scenarios, seed=args.seed, scale=args.scale)
    if args.json:
        print(json.dumps({"results": [r.to_dict() for r in results]}, indent=2, sort_keys=True))
    else:
        for r in results:
            status = "ok" if r.ok else f"FAIL ({len(r.mismatches)} mismatches)"
            print(
                f"{r.kind:>8}  {r.name:<24} rows={r.rows:<6} steps={r.steps:<3} "
                f"cells={r.cells_compared:<8} {status}"
            )
            for m in r.mismatches[:10]:
                print(f"          row={m.row_id} col={m.column}: {m.in_process!r} != {m.sqlite!r} {m.note}")
    failed = [r for r in results if not r.ok]
    if failed:
        print(f"{len(failed)}/{len(results)} differentials failed", file=sys.stderr)
        return 1
    print(f"all {len(results)} differentials agree", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())
