"""Expression compilation for the columnar execution engine.

:class:`ColumnarBinding` binds a set of column vectors (parallel value
lists, one per column) and compiles AST expressions into closures evaluated
by *row index*:

* :meth:`ColumnarBinding.compile` returns ``fn(i) -> value`` — the scalar
  value of the expression at row ``i``;
* :meth:`ColumnarBinding.compile_aggregate` returns ``fn(indices) -> value``
  — the aggregate value of the expression over the group of row indices.

Compilation happens **once per query**: literals are constant-folded, column
references resolve to a direct ``list.__getitem__`` on their vector, CASE
literal branches become a dictionary built at compile time, and LIKE
patterns hit the module-level regex LRU.  Per-row work reduces to closure
calls over pre-bound vectors.

Parity with the row-dict interpreter (``Executor._eval``) is the contract,
not speed at any cost:

* every null/short-circuit/error behaviour is mirrored node for node, using
  the *same* helper functions (``_apply_binary``, ``_like_match``,
  ``sql_equal``, ``compare_values``, ``coerce_value``);
* errors stay **eval-time**: an unknown column, a misused aggregate or a
  window function outside its context compiles into a *raising closure*, so
  a query over an empty table raises exactly when the interpreter would
  (never), with identical messages;
* any expression node the compiler does not recognise falls back to a
  closure that calls ``Executor._eval`` on a row dict materialised for that
  row only — behavioural parity is the gate, not coverage.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.dataframe.schema import coerce_value, is_null
from repro.sql.ast_nodes import (
    Between,
    BinaryOp,
    CaseWhen,
    Cast,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
    WindowFunction,
)
from repro.sql.comparison import compare_values, parse_num, sql_equal
from repro.sql.errors import ExecutionError
from repro.sql.functions import AGGREGATE_NAMES, call_scalar, make_aggregate

ScalarFn = Callable[[int], Any]
AggregateFn = Callable[[Sequence[int]], Any]
WindowValues = Optional[Dict[int, List[Any]]]


class ColumnarBinding:
    """Column vectors for one pipeline stage, plus the expression compiler.

    A binding is created per stage because filtering replaces the vectors:
    closures compiled against a binding index into *its* vectors, so the
    executor rebinds after every gather.
    """

    def __init__(self, executor: Any, names: Sequence[str], vectors: Sequence[List[Any]]):
        self.executor = executor
        self.names: List[str] = list(names)
        self.vectors: List[List[Any]] = list(vectors)
        self._by_name: Dict[str, List[Any]] = dict(zip(self.names, self.vectors))

    # -- row materialisation (fallback path only) ---------------------------
    def make_row(self, i: int) -> Dict[str, Any]:
        """The row dict the interpreter would see for row ``i``."""
        return {name: vec[i] for name, vec in zip(self.names, self.vectors)}

    def vector_for(self, ref: ColumnRef) -> Optional[List[Any]]:
        """The vector a column reference resolves to, or None if unknown.

        Mirrors ``Executor._eval``'s lookup order on a single-table row:
        the qualified ``alias.column`` key first, then the bare name.
        """
        key = ref.qualified if ref.table else ref.name
        if key in self._by_name:
            return self._by_name[key]
        if ref.name in self._by_name:
            return self._by_name[ref.name]
        return None

    # -- scalar compilation -------------------------------------------------
    def compile(self, expr: Expression, windows: WindowValues = None) -> ScalarFn:
        """Compile ``expr`` to ``fn(i) -> value`` over this binding's vectors."""
        from repro.sql.executor import (  # local import: executor imports this module
            _apply_binary,
            _apply_unary,
            _like_match,
            _truthy,
        )

        if isinstance(expr, Literal):
            value = expr.value
            return lambda i: value

        if isinstance(expr, ColumnRef):
            vec = self.vector_for(expr)
            if vec is not None:
                return vec.__getitem__
            key = expr.qualified if expr.table else expr.name
            available = sorted(k for k in self.names if "." not in k)

            def unknown_column(i: int) -> Any:
                raise ExecutionError(f"Unknown column {key!r}; available: {available}")

            return unknown_column

        if isinstance(expr, Star):

            def star_misuse(i: int) -> Any:
                raise ExecutionError("'*' is only valid in a select list or COUNT(*)")

            return star_misuse

        if isinstance(expr, UnaryOp):
            operand_fn = self.compile(expr.operand, windows)
            op = expr.op
            return lambda i: _apply_unary(op, operand_fn(i))

        if isinstance(expr, BinaryOp):
            op = expr.op
            if op == "AND":
                left_fn = self.compile(expr.left, windows)
                right_fn = self.compile(expr.right, windows)

                def and_fn(i: int) -> Any:
                    left = left_fn(i)
                    if left is False:
                        return False
                    right = right_fn(i)
                    if right is False:
                        return False
                    if is_null(left) or is_null(right):
                        return None
                    return _truthy(left) and _truthy(right)

                return and_fn
            if op == "OR":
                left_fn = self.compile(expr.left, windows)
                right_fn = self.compile(expr.right, windows)

                def or_fn(i: int) -> Any:
                    left = left_fn(i)
                    if _truthy(left):
                        return True
                    right = right_fn(i)
                    if _truthy(right):
                        return True
                    if is_null(left) or is_null(right):
                        return None
                    return False

                return or_fn
            left_fn = self.compile(expr.left, windows)
            if isinstance(expr.right, Literal) and not is_null(expr.right.value):
                const_fn = _compile_const_compare(left_fn, op, expr.right.value)
                if const_fn is not None:
                    return const_fn
            right_fn = self.compile(expr.right, windows)
            if op == "=":

                def eq_fn(i: int) -> Any:
                    left = left_fn(i)
                    right = right_fn(i)
                    if is_null(left) or is_null(right):
                        return None
                    return sql_equal(left, right)

                return eq_fn
            if op == "<>":

                def ne_fn(i: int) -> Any:
                    left = left_fn(i)
                    right = right_fn(i)
                    if is_null(left) or is_null(right):
                        return None
                    return not sql_equal(left, right)

                return ne_fn
            if op in ("<", ">", "<=", ">="):
                below = op in ("<", "<=")
                allow_equal = op in ("<=", ">=")

                def cmp_fn(i: int) -> Any:
                    left = left_fn(i)
                    right = right_fn(i)
                    if is_null(left) or is_null(right):
                        return None
                    cmp = compare_values(left, right)
                    if cmp is None:
                        return None
                    if cmp == 0:
                        return allow_equal
                    return cmp < 0 if below else cmp > 0

                return cmp_fn
            return lambda i: _apply_binary(op, left_fn(i), right_fn(i))

        if isinstance(expr, Like):
            value_fn = self.compile(expr.operand, windows)
            pattern_fn = self.compile(expr.pattern, windows)
            escape_fn = self.compile(expr.escape, windows) if expr.escape is not None else None

            def like_fn(i: int) -> Any:
                value = value_fn(i)
                pattern = pattern_fn(i)
                escape = escape_fn(i) if escape_fn is not None else None
                if is_null(value) or is_null(pattern) or (escape_fn is not None and is_null(escape)):
                    return None
                return _like_match(value, pattern, escape)

            return like_fn

        if isinstance(expr, IsNull):
            operand_fn = self.compile(expr.operand, windows)
            if expr.negated:
                return lambda i: not is_null(operand_fn(i))
            return lambda i: is_null(operand_fn(i))

        if isinstance(expr, InList):
            operand_fn = self.compile(expr.operand, windows)
            negated = expr.negated
            if all(isinstance(item, Literal) for item in expr.items):
                # Constant fold: drop NULL literals (they can never match).
                candidates = [item.value for item in expr.items if not is_null(item.value)]

                def in_literals_fn(i: int) -> Any:
                    value = operand_fn(i)
                    if is_null(value):
                        return None
                    found = any(sql_equal(value, item) for item in candidates)
                    return (not found) if negated else found

                return in_literals_fn
            item_fns = [self.compile(item, windows) for item in expr.items]

            def in_fn(i: int) -> Any:
                value = operand_fn(i)
                if is_null(value):
                    return None
                # Evaluate every item, like the interpreter's list comprehension
                # (an item that raises must raise even after a match).
                items = [fn(i) for fn in item_fns]
                found = any((not is_null(item)) and sql_equal(value, item) for item in items)
                return (not found) if negated else found

            return in_fn

        if isinstance(expr, Between):
            operand_fn = self.compile(expr.operand, windows)
            low_fn = self.compile(expr.low, windows)
            high_fn = self.compile(expr.high, windows)
            negated = expr.negated

            def between_fn(i: int) -> Any:
                value = operand_fn(i)
                low = low_fn(i)
                high = high_fn(i)
                if is_null(value) or is_null(low) or is_null(high):
                    return None
                inside = low <= value <= high
                return (not inside) if negated else inside

            return between_fn

        if isinstance(expr, CaseWhen):
            return self._compile_case(expr, windows)

        if isinstance(expr, Cast):
            operand_fn = self.compile(expr.operand, windows)
            target = expr.target
            return lambda i: coerce_value(operand_fn(i), target)

        if isinstance(expr, WindowFunction):
            if windows is not None and id(expr) in windows:
                return windows[id(expr)].__getitem__

            def no_window_context(i: int) -> Any:
                raise ExecutionError("Window function used outside of a windowed context")

            return no_window_context

        if isinstance(expr, FunctionCall):
            name = expr.name
            if name in AGGREGATE_NAMES and name not in ("MIN", "MAX"):

                def aggregate_misuse(i: int) -> Any:
                    raise ExecutionError(f"Aggregate {name} used outside GROUP BY context")

                return aggregate_misuse
            arg_fns = [self.compile(a, windows) for a in expr.args]
            return lambda i: call_scalar(name, [fn(i) for fn in arg_fns])

        # Unknown node: fall back to the row-dict interpreter for this row.
        return self._fallback(expr, windows)

    def _compile_case(self, expr: CaseWhen, windows: WindowValues) -> ScalarFn:
        from repro.sql.executor import _truthy

        default_fn = self.compile(expr.default, windows) if expr.default is not None else None
        if expr.operand is not None:
            subject_fn = self.compile(expr.operand, windows)
            if all(isinstance(cond, Literal) for cond, _ in expr.whens):
                # CASE col WHEN <literal> ... with literal branches compiles to a
                # dict lookup (duplicate keys: last wins, like the interpreter).
                lookup = {str(cond.value): self.compile(result, windows) for cond, result in expr.whens}

                def case_lookup_fn(i: int) -> Any:
                    subject = subject_fn(i)
                    if not is_null(subject):
                        branch = lookup.get(str(subject))
                        if branch is not None:
                            return branch(i)
                    return default_fn(i) if default_fn is not None else None

                return case_lookup_fn
            when_fns = [(self.compile(cond, windows), self.compile(result, windows)) for cond, result in expr.whens]

            def case_operand_fn(i: int) -> Any:
                subject = subject_fn(i)
                for cond_fn, result_fn in when_fns:
                    candidate = cond_fn(i)
                    if not is_null(subject) and not is_null(candidate) and sql_equal(subject, candidate):
                        return result_fn(i)
                return default_fn(i) if default_fn is not None else None

            return case_operand_fn
        when_fns = [(self.compile(cond, windows), self.compile(result, windows)) for cond, result in expr.whens]

        def case_searched_fn(i: int) -> Any:
            for cond_fn, result_fn in when_fns:
                if _truthy(cond_fn(i)):
                    return result_fn(i)
            return default_fn(i) if default_fn is not None else None

        return case_searched_fn

    def _fallback(self, expr: Expression, windows: WindowValues) -> ScalarFn:
        executor = self.executor

        def fallback_fn(i: int) -> Any:
            return executor._eval(expr, self.make_row(i), window_values=windows, row_index=i)

        return fallback_fn

    # -- aggregate compilation ---------------------------------------------
    def compile_aggregate(self, expr: Expression) -> AggregateFn:
        """Compile ``expr`` to ``fn(indices) -> value`` over groups of rows.

        Mirrors ``Executor._eval_aggregate_expr`` node for node: aggregate
        calls fold their argument over the group, scalar operators combine
        aggregate sub-results, and any other expression evaluates on the
        group's first row (it is a grouping expression, constant per group).
        """
        from repro.sql.executor import _apply_binary, _apply_unary, _like_match

        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_NAMES:
            name = expr.name
            distinct = expr.distinct
            count_star = len(expr.args) == 1 and isinstance(expr.args[0], Star)
            separator = ","
            if name in ("STRING_AGG", "GROUP_CONCAT") and len(expr.args) > 1:
                sep_expr = expr.args[1]
                if isinstance(sep_expr, Literal):
                    separator = str(sep_expr.value)
            arg_fn = None if count_star else self.compile(expr.args[0])

            def aggregate_fn(indices: Sequence[int]) -> Any:
                agg = make_aggregate(name, distinct=distinct, count_star=count_star, separator=separator)
                if count_star:
                    for _ in indices:
                        agg.add_checked(1)
                else:
                    for i in indices:
                        agg.add_checked(arg_fn(i))
                return agg.result()

            return aggregate_fn

        if isinstance(expr, BinaryOp):
            left_fn = self.compile_aggregate(expr.left)
            right_fn = self.compile_aggregate(expr.right)
            op = expr.op
            return lambda indices: _apply_binary(op, left_fn(indices), right_fn(indices))

        if isinstance(expr, UnaryOp):
            operand_fn = self.compile_aggregate(expr.operand)
            op = expr.op
            return lambda indices: _apply_unary(op, operand_fn(indices))

        if isinstance(expr, Like):
            value_fn = self.compile_aggregate(expr.operand)
            pattern_fn = self.compile_aggregate(expr.pattern)
            escape_fn = self.compile_aggregate(expr.escape) if expr.escape is not None else None

            def like_agg_fn(indices: Sequence[int]) -> Any:
                value = value_fn(indices)
                pattern = pattern_fn(indices)
                escape = escape_fn(indices) if escape_fn is not None else None
                if is_null(value) or is_null(pattern) or (escape_fn is not None and is_null(escape)):
                    return None
                return _like_match(value, pattern, escape)

            return like_agg_fn

        if isinstance(expr, Cast):
            operand_fn = self.compile_aggregate(expr.operand)
            target = expr.target
            return lambda indices: coerce_value(operand_fn(indices), target)

        if isinstance(expr, FunctionCall):
            name = expr.name
            arg_fns = [self.compile_aggregate(a) for a in expr.args]
            return lambda indices: call_scalar(name, [fn(indices) for fn in arg_fns])

        if isinstance(expr, CaseWhen):
            scalar_fn = self.compile(expr)
            executor = self.executor

            def case_agg_fn(indices: Sequence[int]) -> Any:
                if indices:
                    return scalar_fn(indices[0])
                return executor._eval_case(expr, {}, None, None)

            return case_agg_fn

        # Grouping expression: evaluate on the group's first row.
        scalar_fn = self.compile(expr)
        executor = self.executor

        def first_row_fn(indices: Sequence[int]) -> Any:
            if indices:
                return scalar_fn(indices[0])
            return executor._eval(expr, {})

        return first_row_fn


def _compile_const_compare(left_fn: ScalarFn, op: str, lit: Any) -> Optional[ScalarFn]:
    """Specialised closure for ``<expr> <op> <literal>`` comparisons.

    The literal's numeric interpretation is resolved once at compile time, so
    the per-row work of the common ``col = 'x'`` / ``col < 5`` predicates
    drops to a type check and a direct comparison.  Every branch mirrors
    ``sql_equal``/``compare_values`` exactly — numeric operands compare as
    floats (so oversized ints keep the interpreter's float rounding), NaN
    values read as NULL, and any operand type outside the fast paths falls
    through to the shared helpers.  Literal shapes this function does not
    cover return None and compile through the generic closures.
    """
    eq = op in ("=", "<>")
    if not eq and op not in ("<", ">", "<=", ">="):
        return None
    negate = op == "<>"
    below = op in ("<", "<=")
    allow_equal = op in ("<=", ">=")

    if isinstance(lit, (int, float)) and not isinstance(lit, bool) and math.isfinite(lit):
        lit_num = float(lit)
        if eq:

            def eq_const_num(i: int) -> Any:
                v = left_fn(i)
                cls = v.__class__
                if cls is int or cls is float:
                    if v != v:
                        return None
                    equal = float(v) == lit_num
                    return (not equal) if negate else equal
                if is_null(v):
                    return None
                equal = sql_equal(v, lit)
                return (not equal) if negate else equal

            return eq_const_num

        def cmp_const_num(i: int) -> Any:
            v = left_fn(i)
            cls = v.__class__
            if cls is int or cls is float:
                if v != v:
                    return None
                fv = float(v)
                if fv == lit_num:
                    return allow_equal
                return (fv < lit_num) if below else (fv > lit_num)
            if is_null(v):
                return None
            cmp = compare_values(v, lit)
            if cmp is None:
                return None
            if cmp == 0:
                return allow_equal
            return cmp < 0 if below else cmp > 0

        return cmp_const_num

    if isinstance(lit, str):
        parsed = parse_num(lit)
        if eq:

            def eq_const_text(i: int) -> Any:
                v = left_fn(i)
                cls = v.__class__
                if cls is str:
                    # Two strings always compare textually, even when both
                    # look numeric — numeric_pair coerces only mixed pairs.
                    return (v != lit) if negate else (v == lit)
                if cls is int or cls is float or cls is bool:
                    if v != v:
                        return None
                    equal = float(v) == parsed if parsed is not None else str(v) == lit
                    return (not equal) if negate else equal
                if is_null(v):
                    return None
                equal = sql_equal(v, lit)
                return (not equal) if negate else equal

            return eq_const_text

        def cmp_const_text(i: int) -> Any:
            v = left_fn(i)
            if v.__class__ is str:
                if v == lit:
                    return allow_equal
                return (v < lit) if below else (v > lit)
            if is_null(v):
                return None
            cmp = compare_values(v, lit)
            if cmp is None:
                return None
            if cmp == 0:
                return allow_equal
            return cmp < 0 if below else cmp > 0

        return cmp_const_text

    return None
