"""Baseline data-cleaning systems the paper compares against.

Each baseline is a simplified but behaviourally faithful reimplementation of
the published system, preserving the property the paper attributes to it:

* **HoloClean** — constraint-driven probabilistic repair; only errors that
  violate the user-provided denial constraints can be found.
* **Raha** — configuration-free error *detection* via an ensemble of
  detection strategies plus a small labelled sample.
* **Baran** — error *correction* with value/vicinity/domain models trained
  from the same labelled sample (used as Raha+Baran, as in the paper).
* **CleanAgent** — LLM-agent for standardising recognised semantic types
  (dates, phones); near-zero recall on these benchmarks.
* **RetClean** — retrieval-based cleaning against a data lake of clean
  tables; without reference tables it can only fix obvious typos.
"""

from repro.baselines.base import CleaningSystem, SystemContext, SystemOutput
from repro.baselines.holoclean import HoloCleanSystem
from repro.baselines.raha import RahaDetector
from repro.baselines.baran import BaranCorrector, RahaBaranSystem
from repro.baselines.cleanagent import CleanAgentSystem
from repro.baselines.retclean import RetCleanSystem

__all__ = [
    "CleaningSystem",
    "SystemContext",
    "SystemOutput",
    "HoloCleanSystem",
    "RahaDetector",
    "BaranCorrector",
    "RahaBaranSystem",
    "CleanAgentSystem",
    "RetCleanSystem",
]
