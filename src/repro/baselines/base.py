"""Common interface for all cleaning systems (Cocoon and the baselines)."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.dataframe.table import Table

Cell = Tuple[int, str]


@dataclass
class SystemContext:
    """Extra inputs a system may receive, mirroring the paper's setup.

    * HoloClean additionally takes denial constraints (ground truth provided).
    * Baran additionally requires feedback on 20 clean cells (ground truth
      provided).
    * RetClean can accept additional clean tables (none are available).
    """

    # Ground-truth functional dependencies, as (determinant, dependent) pairs.
    denial_constraints: List[Tuple[str, str]] = field(default_factory=list)
    # Labelled clean cells: (row, column) → correct value.
    labeled_cells: Dict[Cell, Any] = field(default_factory=dict)
    # Reference clean tables for retrieval-based systems.
    reference_tables: List[Table] = field(default_factory=list)
    # Reproducibility seed.
    seed: int = 0


@dataclass
class SystemOutput:
    """What a system produces: cell repairs (and optionally detections only)."""

    repairs: Dict[Cell, Any] = field(default_factory=dict)
    detected_cells: List[Cell] = field(default_factory=list)
    notes: str = ""
    # LLM calls the system made producing this output (0 for non-LLM systems).
    llm_calls: int = 0


class CleaningSystem(abc.ABC):
    """A data cleaning system evaluated in the experiments."""

    name: str = "abstract"

    @abc.abstractmethod
    def repair(self, dirty: Table, context: SystemContext) -> SystemOutput:
        """Clean ``dirty`` and return the proposed cell repairs."""
