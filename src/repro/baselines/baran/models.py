"""Baran's corrector models.

Baran generates correction candidates from three families of models and
ranks them with a classifier trained on the labelled sample.  The families
are reproduced here:

* **Value models** — corrections derived from the erroneous value itself
  (character-level transformations: here, the closest frequent value by edit
  distance).
* **Vicinity models** — corrections derived from co-occurring attribute
  values in the same tuple (here, the majority value among tuples sharing a
  correlated attribute value).
* **Domain models** — corrections from the column's value distribution
  (here, the most frequent value when the column is almost constant).

Each model proposes ``(candidate, confidence)`` pairs.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Optional, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.llm.semantic import edit_distance

Cell = Tuple[int, str]


class ValueModel:
    """Closest frequent same-column value by character edit distance."""

    def __init__(self, max_distance: int = 2, min_frequency: int = 3):
        self.max_distance = max_distance
        self.min_frequency = min_frequency
        self._frequent: Dict[str, List[Tuple[str, int]]] = {}

    def fit(self, table: Table) -> None:
        for column in table.columns:
            counts = Counter(str(v) for v in column.values if not is_null(v))
            self._frequent[column.name] = [
                (value, count) for value, count in counts.most_common() if count >= self.min_frequency
            ]

    def propose(self, table: Table, cell: Cell) -> List[Tuple[str, float]]:
        row, column = cell
        value = table.cell(row, column)
        if is_null(value):
            return []
        text = str(value)
        proposals: List[Tuple[str, float]] = []
        for candidate, count in self._frequent.get(column, []):
            if candidate == text or len(candidate) < 3:
                continue
            distance = edit_distance(text.lower(), candidate.lower(), self.max_distance)
            if distance <= self.max_distance:
                confidence = (1.0 / (1 + distance)) * min(1.0, count / 50)
                proposals.append((candidate, 0.5 + 0.5 * confidence))
        return sorted(proposals, key=lambda p: -p[1])[:3]


class VicinityModel:
    """Majority value among tuples that share a correlated attribute value."""

    def __init__(self, min_support: int = 2, min_confidence: float = 0.6):
        self.min_support = min_support
        self.min_confidence = min_confidence
        self._cooccurrence: Dict[Tuple[str, str], Dict[str, Counter]] = {}

    def fit(self, table: Table) -> None:
        names = table.column_names
        columns = {name: table.column(name).values for name in names}
        for pivot in names:
            for target in names:
                if pivot == target:
                    continue
                mapping: Dict[str, Counter] = defaultdict(Counter)
                for left, right in zip(columns[pivot], columns[target]):
                    if is_null(left) or is_null(right):
                        continue
                    mapping[str(left)][str(right)] += 1
                # Keep only informative pivots: most groups agree on one value.
                informative = {}
                for key, counter in mapping.items():
                    total = sum(counter.values())
                    top_value, top_count = counter.most_common(1)[0]
                    if total >= self.min_support and top_count / total >= self.min_confidence:
                        informative[key] = counter
                if informative:
                    self._cooccurrence[(pivot, target)] = informative

    def propose(self, table: Table, cell: Cell) -> List[Tuple[str, float]]:
        row, column = cell
        proposals: Counter = Counter()
        for (pivot, target), mapping in self._cooccurrence.items():
            if target != column:
                continue
            pivot_value = table.cell(row, pivot)
            if is_null(pivot_value):
                continue
            counter = mapping.get(str(pivot_value))
            if counter is None:
                continue
            top_value, top_count = counter.most_common(1)[0]
            total = sum(counter.values())
            if top_value != str(table.cell(row, column)):
                proposals[top_value] += top_count / total
        return [(value, min(1.0, 0.5 + score / 4)) for value, score in proposals.most_common(3)]


class DomainModel:
    """The column's dominant value, proposed when the column is nearly constant."""

    def __init__(self, dominance: float = 0.9):
        self.dominance = dominance
        self._dominant: Dict[str, Optional[str]] = {}

    def fit(self, table: Table) -> None:
        for column in table.columns:
            counts = Counter(str(v) for v in column.values if not is_null(v))
            total = sum(counts.values())
            self._dominant[column.name] = None
            if not total:
                continue
            value, count = counts.most_common(1)[0]
            if count / total >= self.dominance:
                self._dominant[column.name] = value

    def propose(self, table: Table, cell: Cell) -> List[Tuple[str, float]]:
        row, column = cell
        dominant = self._dominant.get(column)
        if dominant is None or str(table.cell(row, column)) == dominant:
            return []
        return [(dominant, 0.55)]
