"""Baran: error correction via value, vicinity and domain models (simplified)."""

from repro.baselines.baran.models import ValueModel, VicinityModel, DomainModel
from repro.baselines.baran.system import BaranCorrector, RahaBaranSystem

__all__ = ["ValueModel", "VicinityModel", "DomainModel", "BaranCorrector", "RahaBaranSystem"]
