"""Baran error correction and the combined Raha+Baran system.

As in the paper's setup, Raha first detects errors, Baran proposes and ranks
corrections, and the user supplies feedback on 20 clean cells which both
components use (Raha to calibrate clusters, Baran to calibrate the candidate
acceptance threshold).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.baran.models import DomainModel, ValueModel, VicinityModel
from repro.baselines.base import CleaningSystem, SystemContext, SystemOutput
from repro.baselines.raha.system import RahaDetector
from repro.dataframe.table import Table
from repro.evaluation.conventions import values_equivalent

Cell = Tuple[int, str]


class BaranCorrector:
    """Propose a correction for each detected error cell."""

    def __init__(self, acceptance_threshold: float = 0.55):
        self.acceptance_threshold = acceptance_threshold
        self.value_model = ValueModel()
        self.vicinity_model = VicinityModel()
        self.domain_model = DomainModel()

    def fit(self, table: Table, context: SystemContext) -> None:
        self.value_model.fit(table)
        self.vicinity_model.fit(table)
        self.domain_model.fit(table)
        self._calibrate(table, context)

    def _calibrate(self, table: Table, context: SystemContext) -> None:
        """Use the labelled sample to pick the acceptance threshold.

        Only labelled cells whose dirty value disagrees with the label are
        informative examples of corrections; calibrating on already-clean
        cells would only teach the corrector to do nothing.
        """
        error_examples = []
        for (row, column), clean_value in context.labeled_cells.items():
            if row >= table.num_rows or column not in table.column_names:
                continue
            if not values_equivalent(table.cell(row, column), clean_value):
                error_examples.append(((row, column), clean_value))
        if not error_examples:
            return
        best_threshold = self.acceptance_threshold
        best_score = -1.0
        for threshold in (0.5, 0.55, 0.6, 0.7, 0.8):
            correct = 0
            attempted = 0
            for cell, clean_value in error_examples:
                candidate = self._best_candidate(table, cell, threshold)
                if candidate is None:
                    continue
                attempted += 1
                if values_equivalent(candidate, clean_value):
                    correct += 1
            score = correct - 0.25 * (attempted - correct)
            if score > best_score:
                best_score = score
                best_threshold = threshold
        self.acceptance_threshold = best_threshold

    def _best_candidate(self, table: Table, cell: Cell, threshold: Optional[float] = None) -> Optional[str]:
        limit = threshold if threshold is not None else self.acceptance_threshold
        proposals: Dict[str, float] = {}
        for model in (self.vicinity_model, self.value_model, self.domain_model):
            for candidate, confidence in model.propose(table, cell):
                proposals[candidate] = max(proposals.get(candidate, 0.0), confidence)
        if not proposals:
            return None
        candidate, confidence = max(proposals.items(), key=lambda p: p[1])
        if confidence < limit:
            return None
        return candidate

    def correct(self, table: Table, cells: Set[Cell]) -> Dict[Cell, str]:
        repairs: Dict[Cell, str] = {}
        for cell in sorted(cells):
            candidate = self._best_candidate(table, cell)
            if candidate is not None and str(table.cell(*cell)) != candidate:
                repairs[cell] = candidate
        return repairs


class RahaBaranSystem(CleaningSystem):
    """The combined detection (Raha) + correction (Baran) pipeline."""

    name = "Raha+Baran"

    def __init__(self, detector: Optional[RahaDetector] = None, corrector: Optional[BaranCorrector] = None):
        self.detector = detector or RahaDetector()
        self.corrector = corrector or BaranCorrector()

    def repair(self, dirty: Table, context: SystemContext) -> SystemOutput:
        detected = self.detector.detect(dirty, context)
        self.corrector.fit(dirty, context)
        repairs = self.corrector.correct(dirty, detected)
        return SystemOutput(
            repairs=dict(repairs),
            detected_cells=sorted(detected),
            notes=f"{len(detected)} cells detected, threshold {self.corrector.acceptance_threshold}",
        )
