"""Simplified HoloClean.

The original system compiles signals (constraint violations, minimality,
co-occurrence statistics) into a factor graph and repairs cells by
probabilistic inference.  For single-attribute FDs that inference converges
to choosing, for each violating cell, the candidate value with the highest
combined support among tuples sharing the determinant value — which is what
this implementation computes directly.  Crucially the *detection* step is
unchanged: only cells that violate a provided denial constraint are
candidates, which is exactly the limitation the paper highlights
("most inconsistency issues ... cannot be adequately captured by these
constraints").
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.baselines.base import CleaningSystem, SystemContext, SystemOutput
from repro.baselines.holoclean.denial_constraints import FDConstraint, violating_cells
from repro.baselines.holoclean.pruning import candidate_domain
from repro.dataframe.schema import is_null
from repro.dataframe.table import Table

Cell = Tuple[int, str]


class HoloCleanMemoryError(RuntimeError):
    """Raised when the input exceeds the memory budget (Movies in the paper)."""


class HoloCleanSystem(CleaningSystem):
    """Constraint-driven repair with majority (MAP) inference per violation group."""

    name = "HoloClean"

    def __init__(
        self,
        min_support: int = 2,
        min_confidence: float = 0.8,
        max_cells: Optional[int] = None,
    ):
        # A repair is emitted only when the winning candidate has at least
        # ``min_support`` occurrences and at least ``min_confidence`` of the
        # group's mass — the thresholding role played by τ in the original paper.
        self.min_support = min_support
        self.min_confidence = min_confidence
        # Simulated memory budget (number of cells); None disables the check.
        self.max_cells = max_cells

    def repair(self, dirty: Table, context: SystemContext) -> SystemOutput:
        if self.max_cells is not None and dirty.num_rows * dirty.num_columns > self.max_cells:
            raise HoloCleanMemoryError(
                f"{dirty.num_rows}x{dirty.num_columns} cells exceed the memory budget of {self.max_cells}"
            )
        constraints = [FDConstraint(det, dep) for det, dep in context.denial_constraints
                       if det in dirty.column_names and dep in dirty.column_names]
        repairs: Dict[Cell, object] = {}
        detected: List[Cell] = []
        for constraint in constraints:
            noisy = violating_cells(dirty, constraint)
            detected.extend(sorted(noisy))
            domains = candidate_domain(dirty, constraint)
            lhs_values = dirty.column(constraint.determinant).values
            rhs_values = dirty.column(constraint.dependent).values
            for row, column in noisy:
                lhs = lhs_values[row]
                current = rhs_values[row]
                if is_null(lhs):
                    continue
                candidates = domains.get(str(lhs), [])
                if not candidates:
                    continue
                winner, support = candidates[0]
                total = sum(count for _, count in candidates)
                if support < self.min_support or (total and support / total < self.min_confidence):
                    continue
                if is_null(current) or str(current) != winner:
                    repairs[(row, column)] = winner
        return SystemOutput(
            repairs=repairs,
            detected_cells=detected,
            notes=f"{len(constraints)} denial constraints evaluated",
        )
