"""Domain pruning: candidate repair values for a noisy cell.

HoloClean restricts each cell's repair domain to values that co-occur with
the rest of the tuple (its correlated attributes).  Here the domain of a
dependent cell under an FD constraint is the set of dependent values observed
for the same determinant value, weighted by frequency.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.baselines.holoclean.denial_constraints import FDConstraint, group_value_counts
from repro.dataframe.table import Table


def candidate_domain(
    table: Table,
    constraint: FDConstraint,
    max_candidates: int = 10,
) -> Dict[str, List[Tuple[str, int]]]:
    """For each determinant value, the pruned candidate repairs with support counts."""
    groups = group_value_counts(table, constraint)
    domains: Dict[str, List[Tuple[str, int]]] = {}
    for lhs, counter in groups.items():
        domains[lhs] = counter.most_common(max_candidates)
    return domains
