"""Denial constraints (restricted to functional dependencies).

HoloClean takes denial constraints as input; following the paper's setup we
provide the ground-truth constraints, and — like Baran and the paper — we
restrict them to FDs with a single attribute on each side, expressed as the
denial constraint ¬(t1.det = t2.det ∧ t1.dep ≠ t2.dep).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table

Cell = Tuple[int, str]


@dataclass(frozen=True)
class FDConstraint:
    """A functional dependency ``determinant → dependent`` used as a denial constraint."""

    determinant: str
    dependent: str

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.determinant} -> {self.dependent}"


def group_value_counts(table: Table, constraint: FDConstraint) -> Dict[str, Counter]:
    """For each determinant value, the distribution of dependent values."""
    groups: Dict[str, Counter] = defaultdict(Counter)
    lhs = table.column(constraint.determinant).values
    rhs = table.column(constraint.dependent).values
    for left, right in zip(lhs, rhs):
        if is_null(left) or is_null(right):
            continue
        groups[str(left)][str(right)] += 1
    return groups


def violating_cells(table: Table, constraint: FDConstraint) -> Set[Cell]:
    """Dependent-column cells that participate in a violation of the constraint."""
    groups = group_value_counts(table, constraint)
    violating_lhs = {lhs for lhs, counter in groups.items() if len(counter) > 1}
    cells: Set[Cell] = set()
    lhs_values = table.column(constraint.determinant).values
    rhs_values = table.column(constraint.dependent).values
    for i, (left, right) in enumerate(zip(lhs_values, rhs_values)):
        if is_null(left) or is_null(right):
            continue
        if str(left) in violating_lhs:
            cells.add((i, constraint.dependent))
    return cells
