"""HoloClean: holistic data repairs with probabilistic inference (simplified)."""

from repro.baselines.holoclean.denial_constraints import FDConstraint, violating_cells
from repro.baselines.holoclean.system import HoloCleanSystem

__all__ = ["FDConstraint", "violating_cells", "HoloCleanSystem"]
