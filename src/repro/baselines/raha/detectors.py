"""Raha's detection strategies.

Raha runs a library of unsupervised error-detection strategies — outlier
detectors, pattern-violation detectors, rule-violation detectors and
knowledge-base lookups — and represents each cell by the vector of strategy
outputs.  The strategies below cover those families; each returns, per cell,
1.0 when it considers the cell erroneous.
"""

from __future__ import annotations

import abc
import re
from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.llm.semantic import edit_distance, value_shape

Cell = Tuple[int, str]


class DetectorStrategy(abc.ABC):
    """One detection strategy: flags suspicious cells of a table."""

    name: str = "strategy"

    @abc.abstractmethod
    def detect(self, table: Table) -> Dict[Cell, float]:
        """Return suspicious cells mapped to a confidence in (0, 1]."""


class FrequencyOutlierDetector(DetectorStrategy):
    """Rare values in otherwise low-cardinality (categorical) columns."""

    name = "frequency_outlier"

    def __init__(self, rare_fraction: float = 0.005, max_distinct_ratio: float = 0.5):
        self.rare_fraction = rare_fraction
        self.max_distinct_ratio = max_distinct_ratio

    def detect(self, table: Table) -> Dict[Cell, float]:
        flags: Dict[Cell, float] = {}
        for column in table.columns:
            values = [str(v) for v in column.values if not is_null(v)]
            if not values:
                continue
            counts = Counter(values)
            if len(counts) / len(values) > self.max_distinct_ratio:
                continue
            threshold = max(1, int(len(values) * self.rare_fraction))
            for i, value in enumerate(column.values):
                if is_null(value):
                    continue
                if counts[str(value)] <= threshold:
                    flags[(i, column.name)] = 1.0
        return flags


class PatternOutlierDetector(DetectorStrategy):
    """Values whose character shape differs from the column's dominant shape."""

    name = "pattern_outlier"

    def __init__(self, dominance: float = 0.7):
        self.dominance = dominance

    def detect(self, table: Table) -> Dict[Cell, float]:
        flags: Dict[Cell, float] = {}
        for column in table.columns:
            shapes = Counter()
            for value in column.values:
                if is_null(value):
                    continue
                shapes[value_shape(str(value))] += 1
            total = sum(shapes.values())
            if not total or len(shapes) < 2:
                continue
            dominant, dominant_count = shapes.most_common(1)[0]
            if dominant_count / total < self.dominance:
                continue
            for i, value in enumerate(column.values):
                if is_null(value):
                    continue
                if value_shape(str(value)) != dominant:
                    flags[(i, column.name)] = 1.0
        return flags


class NullLikeDetector(DetectorStrategy):
    """Placeholder strings that look like missing values."""

    name = "null_like"
    _TOKENS = {"n/a", "na", "null", "none", "unknown", "-", "--", "?", "missing", "empty"}

    def detect(self, table: Table) -> Dict[Cell, float]:
        flags: Dict[Cell, float] = {}
        for column in table.columns:
            for i, value in enumerate(column.values):
                if is_null(value):
                    continue
                if str(value).strip().lower() in self._TOKENS:
                    flags[(i, column.name)] = 1.0
        return flags


class FDViolationDetector(DetectorStrategy):
    """Cells violating automatically discovered (approximate) FDs."""

    name = "fd_violation"

    def __init__(self, min_score: float = 0.85, max_groups: int = 500):
        self.min_score = min_score
        self.max_groups = max_groups

    def detect(self, table: Table) -> Dict[Cell, float]:
        from repro.profiling.fd import discover_fds, fd_violation_groups

        flags: Dict[Cell, float] = {}
        try:
            candidates = discover_fds(table, min_score=self.min_score)
        except Exception:
            return flags
        for candidate in candidates[:10]:
            groups = fd_violation_groups(table, candidate.determinant, candidate.dependent)
            violating_lhs = {lhs for lhs, _ in groups[: self.max_groups]}
            lhs_values = table.column(candidate.determinant).values
            for i, lhs in enumerate(lhs_values):
                if not is_null(lhs) and str(lhs) in violating_lhs:
                    flags[(i, candidate.dependent)] = 1.0
        return flags


class SpellingDetector(DetectorStrategy):
    """Rare values one edit away from a frequent value of the same column."""

    name = "spelling"

    def __init__(self, frequency_ratio: float = 5.0):
        self.frequency_ratio = frequency_ratio

    def detect(self, table: Table) -> Dict[Cell, float]:
        flags: Dict[Cell, float] = {}
        for column in table.columns:
            counts = Counter(str(v) for v in column.values if not is_null(v))
            frequent = [v for v, c in counts.items() if c >= 3]
            rare = {v for v, c in counts.items() if c <= 2 and len(v) >= 4}
            suspicious = set()
            for value in rare:
                for other in frequent:
                    if counts[other] >= self.frequency_ratio * counts[value] and \
                            edit_distance(value.lower(), other.lower(), 2) <= 2:
                        suspicious.add(value)
                        break
            if not suspicious:
                continue
            for i, value in enumerate(column.values):
                if not is_null(value) and str(value) in suspicious:
                    flags[(i, column.name)] = 1.0
        return flags


def default_detectors() -> List[DetectorStrategy]:
    """The detector ensemble used by :class:`~repro.baselines.raha.system.RahaDetector`."""
    return [
        FrequencyOutlierDetector(),
        PatternOutlierDetector(),
        NullLikeDetector(),
        FDViolationDetector(),
        SpellingDetector(),
    ]
