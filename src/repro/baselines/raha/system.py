"""Raha error detection: ensemble features + a small labelled sample.

The original system clusters cells by their strategy-output feature vectors
and propagates labels obtained from a handful of user-labelled tuples,
training a per-column classifier.  This implementation keeps that structure
in a simplified form: cells sharing a feature vector form a cluster, the
labelled sample labels the clusters it intersects, and unlabelled clusters
fall back to a majority-of-strategies vote.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Set, Tuple

from repro.baselines.base import SystemContext
from repro.baselines.raha.detectors import DetectorStrategy, default_detectors
from repro.dataframe.table import Table
from repro.evaluation.conventions import values_equivalent

Cell = Tuple[int, str]


class RahaDetector:
    """Detect erroneous cells with an ensemble of strategies."""

    def __init__(self, detectors: List[DetectorStrategy] = None, vote_threshold: int = 1):
        self.detectors = detectors if detectors is not None else default_detectors()
        # Minimum number of strategies that must fire for an unlabelled cluster
        # to be classified as erroneous.
        self.vote_threshold = vote_threshold

    def feature_vectors(self, table: Table) -> Dict[Cell, Tuple[int, ...]]:
        """The per-cell vector of strategy outputs."""
        outputs = [detector.detect(table) for detector in self.detectors]
        vectors: Dict[Cell, Tuple[int, ...]] = {}
        for column in table.columns:
            for i in range(table.num_rows):
                cell = (i, column.name)
                vector = tuple(1 if cell in output else 0 for output in outputs)
                if any(vector):
                    vectors[cell] = vector
        return vectors

    def detect(self, table: Table, context: SystemContext) -> Set[Cell]:
        """Classify cells as erroneous, using labelled cells to calibrate clusters."""
        vectors = self.feature_vectors(table)
        clusters: Dict[Tuple[str, Tuple[int, ...]], List[Cell]] = defaultdict(list)
        for (row, column), vector in vectors.items():
            clusters[(column, vector)].append((row, column))

        # Label clusters using the labelled sample: a labelled cell whose dirty
        # value disagrees with its label is an error example.
        cluster_labels: Dict[Tuple[str, Tuple[int, ...]], bool] = {}
        for (row, column), clean_value in context.labeled_cells.items():
            cell = (row, column)
            vector = vectors.get(cell)
            if vector is None:
                continue
            is_error = not values_equivalent(table.cell(row, column), clean_value)
            key = (column, vector)
            cluster_labels[key] = cluster_labels.get(key, False) or is_error

        detected: Set[Cell] = set()
        for key, cells in clusters.items():
            if key in cluster_labels:
                if cluster_labels[key]:
                    detected.update(cells)
                continue
            votes = sum(key[1])
            if votes >= self.vote_threshold:
                detected.update(cells)
        return detected
