"""Raha: configuration-free error detection (simplified)."""

from repro.baselines.raha.detectors import (
    DetectorStrategy,
    FrequencyOutlierDetector,
    PatternOutlierDetector,
    NullLikeDetector,
    FDViolationDetector,
    SpellingDetector,
    default_detectors,
)
from repro.baselines.raha.system import RahaDetector

__all__ = [
    "DetectorStrategy",
    "FrequencyOutlierDetector",
    "PatternOutlierDetector",
    "NullLikeDetector",
    "FDViolationDetector",
    "SpellingDetector",
    "default_detectors",
    "RahaDetector",
]
