"""CleanAgent: LLM-agent data *standardisation* (simplified).

CleanAgent focuses on standardising columns of recognised semantic types
(dates, phone numbers, emails, addresses) into canonical formats by
generating Dataprep-style code with an LLM agent.  It does not attempt
general error repair, which is why the paper reports near-zero precision and
recall on these benchmarks: the benchmarks' ground truth keeps the original
formats, so reformatting either changes nothing that counts or changes cells
the benchmark does not consider erroneous.  It also rejects inputs larger
than 2 MB (Movies is evaluated on a 1000-row sample for this reason).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import CleaningSystem, SystemContext, SystemOutput
from repro.dataframe.io import to_csv_text
from repro.dataframe.schema import is_null, parse_date
from repro.dataframe.table import Table

Cell = Tuple[int, str]

_PHONE_RE = re.compile(r"^\(?\d{3}\)?[\s.-]?\d{3}[\s.-]?\d{4}$")
_EMAIL_RE = re.compile(r"^[^@\s]+@[^@\s]+\.[^@\s]+$")


class CleanAgentFileSizeError(RuntimeError):
    """Raised when the CSV exceeds CleanAgent's 2 MB input limit."""


class CleanAgentSystem(CleaningSystem):
    """Standardise date/phone/email columns into canonical formats."""

    name = "CleanAgent"
    max_csv_bytes = 2 * 1024 * 1024

    def __init__(self, type_detection_threshold: float = 0.8):
        self.type_detection_threshold = type_detection_threshold

    # -- semantic type detection -----------------------------------------------
    def _column_semantic_type(self, values: List[object]) -> Optional[str]:
        non_null = [str(v) for v in values if not is_null(v) and str(v).strip() != ""]
        if not non_null:
            return None
        sample = non_null[:500]
        date_hits = sum(1 for v in sample if parse_date(v) is not None)
        phone_hits = sum(1 for v in sample if _PHONE_RE.match(v))
        email_hits = sum(1 for v in sample if _EMAIL_RE.match(v))
        total = len(sample)
        if date_hits / total >= self.type_detection_threshold:
            return "date"
        if phone_hits / total >= self.type_detection_threshold:
            return "phone"
        if email_hits / total >= self.type_detection_threshold:
            return "email"
        return None

    # -- standardisation -----------------------------------------------------------
    @staticmethod
    def _standardise(value: str, semantic_type: str) -> Optional[str]:
        if semantic_type == "date":
            parsed = parse_date(value)
            if parsed is None:
                return None
            return parsed.isoformat()
        if semantic_type == "phone":
            digits = re.sub(r"\D", "", value)
            if len(digits) != 10:
                return None
            return f"({digits[:3]}) {digits[3:6]}-{digits[6:]}"
        if semantic_type == "email":
            return value.strip().lower()
        return None

    def repair(self, dirty: Table, context: SystemContext) -> SystemOutput:
        csv_size = len(to_csv_text(dirty).encode("utf-8"))
        if csv_size > self.max_csv_bytes:
            raise CleanAgentFileSizeError(f"CSV of {csv_size} bytes exceeds the 2 MB input limit")
        repairs: Dict[Cell, object] = {}
        standardised_columns = []
        for column in dirty.columns:
            semantic_type = self._column_semantic_type(column.values)
            if semantic_type is None:
                continue
            standardised_columns.append((column.name, semantic_type))
            for i, value in enumerate(column.values):
                if is_null(value):
                    continue
                canonical = self._standardise(str(value), semantic_type)
                if canonical is not None and canonical != str(value):
                    repairs[(i, column.name)] = canonical
        return SystemOutput(
            repairs=repairs,
            notes=f"standardised columns: {standardised_columns}",
        )
