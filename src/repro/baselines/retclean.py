"""RetClean: retrieval-based cleaning using foundation models and data lakes.

RetClean repairs a tuple's erroneous attribute by retrieving the correct
value from clean tables in a data lake, keyed by the tuple's identifying
attributes; a local model then verifies the retrieved value.  As in the
paper's setup *no reference tables are available*, so retrieval finds
nothing and only the model's fallback — fixing obvious misspellings of
common words — contributes repairs.  That fallback is why the paper reports
non-trivial scores only on Rayyan (full of obvious typos in common-word
text) and zeros elsewhere.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.baselines.base import CleaningSystem, SystemContext, SystemOutput
from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.llm.knowledge.vocabulary import words_of
from repro.llm.semantic import edit_distance

Cell = Tuple[int, str]


class RetCleanSystem(CleaningSystem):
    """Retrieve corrections from reference tables; fall back to obvious-typo fixes."""

    name = "RetClean"

    def __init__(self, min_word_count: float = 2.0, frequency_ratio: float = 10.0):
        # The fallback only engages for "natural text" columns (several words on
        # average); terse codes and identifiers are left to retrieval, which has
        # nothing to retrieve from here.
        self.min_word_count = min_word_count
        self.frequency_ratio = frequency_ratio

    # -- retrieval against reference tables --------------------------------------
    def _retrieve_repairs(self, dirty: Table, context: SystemContext) -> Dict[Cell, object]:
        repairs: Dict[Cell, object] = {}
        if not context.reference_tables:
            return repairs
        key_column = dirty.column_names[0]
        for reference in context.reference_tables:
            if key_column not in reference.column_names:
                continue
            index = {
                str(reference.cell(i, key_column)): i for i in range(reference.num_rows)
            }
            for column in dirty.column_names:
                if column == key_column or column not in reference.column_names:
                    continue
                for row in range(dirty.num_rows):
                    key = str(dirty.cell(row, key_column))
                    if key not in index:
                        continue
                    retrieved = reference.cell(index[key], column)
                    current = dirty.cell(row, column)
                    if not is_null(retrieved) and str(retrieved) != str(current):
                        repairs[(row, column)] = retrieved
        return repairs

    # -- fallback: obvious misspellings of common words ---------------------------------
    def _is_text_column(self, values: List[object]) -> bool:
        non_null = [str(v) for v in values if not is_null(v)]
        if not non_null:
            return False
        avg_words = sum(len(words_of(v)) for v in non_null) / len(non_null)
        return avg_words >= self.min_word_count

    def _fallback_repairs(self, dirty: Table) -> Dict[Cell, object]:
        repairs: Dict[Cell, object] = {}
        for column in dirty.columns:
            if not self._is_text_column(column.values):
                continue
            counts = Counter(str(v) for v in column.values if not is_null(v))
            frequent = [(v, c) for v, c in counts.items() if c >= 5]
            corrections: Dict[str, str] = {}
            for value, count in counts.items():
                if count >= 3 or len(value) < 5:
                    continue
                if not words_of(value):
                    continue
                for candidate, candidate_count in frequent:
                    if candidate_count < self.frequency_ratio * count:
                        continue
                    if edit_distance(value.lower(), candidate.lower(), 2) <= 2:
                        corrections[value] = candidate
                        break
            if not corrections:
                continue
            for i, value in enumerate(column.values):
                if not is_null(value) and str(value) in corrections:
                    repairs[(i, column.name)] = corrections[str(value)]
        return repairs

    def repair(self, dirty: Table, context: SystemContext) -> SystemOutput:
        repairs = self._retrieve_repairs(dirty, context)
        if not repairs:
            repairs = self._fallback_repairs(dirty)
            notes = "no reference tables; fallback typo fixes only"
        else:
            notes = f"retrieved repairs from {len(context.reference_tables)} reference tables"
        return SystemOutput(repairs=repairs, notes=notes)
