"""Evaluation: cell-level precision/recall/F1 under the paper's conventions."""

from repro.evaluation.conventions import EvaluationConventions, values_equivalent
from repro.evaluation.metrics import Scores, evaluate_repairs, diff_repairs, evaluate_output_table
from repro.evaluation.runner import ExperimentRunner, RepairOutcome, SystemResult

__all__ = [
    "EvaluationConventions",
    "values_equivalent",
    "Scores",
    "evaluate_repairs",
    "diff_repairs",
    "evaluate_output_table",
    "ExperimentRunner",
    "RepairOutcome",
    "SystemResult",
]
