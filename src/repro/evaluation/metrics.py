"""Cell-level repair metrics.

Following the data-cleaning literature (HoloClean, Raha/Baran) and the paper,
systems are scored on cell repairs:

* an **error cell** is a cell whose dirty value is not equivalent to the
  ground-truth value under the evaluation conventions;
* a **repair** is a cell whose value the system changed (to something not
  equivalent to the original dirty value);
* a repair is **correct** when the new value is equivalent to the ground
  truth and the cell was actually an error cell;
* precision = correct repairs / repairs, recall = correct repairs / error
  cells, and F1 is their harmonic mean.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set, Tuple

from repro.dataframe.table import Table
from repro.evaluation.conventions import EvaluationConventions, values_equivalent

Cell = Tuple[int, str]


@dataclass
class Scores:
    """Precision / recall / F1 plus the underlying counts."""

    precision: float
    recall: float
    f1: float
    correct_repairs: int = 0
    total_repairs: int = 0
    total_errors: int = 0

    def as_row(self) -> Tuple[float, float, float]:
        return (self.precision, self.recall, self.f1)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"P={self.precision:.2f} R={self.recall:.2f} F={self.f1:.2f}"


def _f1(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def error_cells(
    dirty: Table,
    clean: Table,
    conventions: Optional[EvaluationConventions] = None,
    columns: Optional[Sequence[str]] = None,
) -> Set[Cell]:
    """Cells whose dirty value is not equivalent to the ground truth."""
    conv = conventions or EvaluationConventions.paper_main()
    names = list(columns) if columns is not None else [c for c in clean.column_names if c in dirty.column_names]
    cells: Set[Cell] = set()
    for column in names:
        dirty_values = dirty.column(column).values
        clean_values = clean.column(column).values
        for i, (d, c) in enumerate(zip(dirty_values, clean_values)):
            if not values_equivalent(d, c, conv):
                cells.add((i, column))
    return cells


def evaluate_repairs(
    dirty: Table,
    clean: Table,
    repaired_cells: Mapping[Cell, object],
    conventions: Optional[EvaluationConventions] = None,
    removed_rows: Iterable[int] = (),
) -> Scores:
    """Score a system that reports its repairs as ``(row, column) → new value``.

    ``removed_rows`` (deduplication) are excluded from the error denominator,
    since the benchmark ground truth has no corresponding row to compare to.
    """
    conv = conventions or EvaluationConventions.paper_main()
    removed = set(removed_rows)
    errors = {cell for cell in error_cells(dirty, clean, conv) if cell[0] not in removed}

    total_repairs = 0
    correct = 0
    for (row, column), new_value in repaired_cells.items():
        if row in removed or column not in dirty.column_names or column not in clean.column_names:
            continue
        if row >= dirty.num_rows:
            continue
        old_value = dirty.cell(row, column)
        if values_equivalent(old_value, new_value, conv):
            # A no-op under the conventions (e.g. "yes" → True in the main
            # evaluation) is neither rewarded nor penalised.
            continue
        total_repairs += 1
        truth = clean.cell(row, column)
        if values_equivalent(new_value, truth, conv) and (row, column) in errors:
            correct += 1
    precision = correct / total_repairs if total_repairs else 0.0
    recall = correct / len(errors) if errors else 0.0
    return Scores(
        precision=precision,
        recall=recall,
        f1=_f1(precision, recall),
        correct_repairs=correct,
        total_repairs=total_repairs,
        total_errors=len(errors),
    )


def diff_repairs(
    dirty: Table,
    output: Table,
    conventions: Optional[EvaluationConventions] = None,
) -> Dict[Cell, object]:
    """Derive the repair set of a system that returns a full repaired table.

    Assumes the output preserves row order and count (true for all baselines
    here); columns missing from the output are treated as unchanged.
    """
    conv = conventions or EvaluationConventions.paper_main()
    repairs: Dict[Cell, object] = {}
    rows = min(dirty.num_rows, output.num_rows)
    for column in dirty.column_names:
        if column not in output.column_names:
            continue
        dirty_values = dirty.column(column).values
        output_values = output.column(column).values
        for i in range(rows):
            if not values_equivalent(dirty_values[i], output_values[i], conv):
                repairs[(i, column)] = output_values[i]
    return repairs


def evaluate_output_table(
    dirty: Table,
    clean: Table,
    output: Table,
    conventions: Optional[EvaluationConventions] = None,
) -> Scores:
    """Score a system from its full output table."""
    conv = conventions or EvaluationConventions.paper_main()
    return evaluate_repairs(dirty, clean, diff_repairs(dirty, output, conv), conv)
