"""Benchmark evaluation conventions (paper §3.1, "Evaluation").

The paper points out that the standard benchmarks are ambiguous in three
ways and defines conventions so that no system is penalised for them:

* **Case sensitivity** — different letter cases are acceptable as long as the
  value is otherwise the same.
* **Column type** — values like ``"yes"``/``"no"`` are semantically boolean;
  Cocoon casts them to ``True``/``False`` while CSV-based systems cannot, so
  both representations are accepted.
* **DMV** — ``"N/A"``-style placeholders and real ``NULL`` are accepted
  interchangeably.

The Appendix B evaluation (Table 3) disables the type and DMV leniency and
counts those conversions as required repairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import datetime as _dt
import math

from repro.dataframe.schema import is_null, parse_date
from repro.llm.knowledge.abbreviations import parse_duration_minutes
from repro.llm.knowledge.nullwords import is_disguised_missing
from repro.llm.knowledge.types import semantic_boolean


@dataclass(frozen=True)
class EvaluationConventions:
    """Which leniency rules apply when comparing a value to the ground truth."""

    case_insensitive: bool = True
    boolean_equivalence: bool = True
    dmv_as_null: bool = True
    numeric_equivalence: bool = True
    duration_equivalence: bool = True
    date_equivalence: bool = True
    strip_whitespace: bool = True

    @classmethod
    def paper_main(cls) -> "EvaluationConventions":
        """Conventions of the main evaluation (Table 1)."""
        return cls()

    @classmethod
    def paper_extended(cls) -> "EvaluationConventions":
        """Conventions of the Appendix B evaluation (Table 3): type and DMV errors count."""
        return cls(boolean_equivalence=False, dmv_as_null=False, duration_equivalence=False)


def values_equivalent(a: object, b: object, conventions: Optional[EvaluationConventions] = None) -> bool:
    """True when ``a`` and ``b`` denote the same value under the conventions."""
    conv = conventions or EvaluationConventions.paper_main()
    a_null = _is_nullish(a, conv)
    b_null = _is_nullish(b, conv)
    if a_null and b_null:
        return True
    if a_null != b_null:
        return False
    if conv.boolean_equivalence:
        a_bool = semantic_boolean(a) if not isinstance(a, bool) else a
        b_bool = semantic_boolean(b) if not isinstance(b, bool) else b
        if a_bool is not None and b_bool is not None:
            return a_bool == b_bool
    if conv.numeric_equivalence:
        a_num = _as_number(a)
        b_num = _as_number(b)
        if a_num is not None and b_num is not None:
            return abs(a_num - b_num) < 1e-9
    if conv.duration_equivalence:
        a_dur = _as_duration_minutes(a)
        b_dur = _as_duration_minutes(b)
        if a_dur is not None and b_dur is not None and (_has_duration_unit(a) or _has_duration_unit(b)):
            return a_dur == b_dur
    if conv.date_equivalence:
        a_date = _as_date(a)
        b_date = _as_date(b)
        if a_date is not None and b_date is not None:
            return a_date == b_date
    a_text = _canonical_text(a, conv)
    b_text = _canonical_text(b, conv)
    return a_text == b_text


def _is_nullish(value: object, conv: EvaluationConventions) -> bool:
    if is_null(value) or str(value).strip() == "":
        return True
    if conv.dmv_as_null and is_disguised_missing(value):
        return True
    return False


def _as_number(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value) if math.isfinite(float(value)) else None
    try:
        parsed = float(str(value).strip())
    except (TypeError, ValueError):
        return None
    # Strings like "inf"/"nan" parse as floats but are not numeric data values.
    return parsed if math.isfinite(parsed) else None


def _has_duration_unit(value: object) -> bool:
    text = str(value).lower()
    return any(unit in text for unit in ("min", "hr", "hour", "sec"))


def _as_duration_minutes(value: object) -> Optional[float]:
    """Minutes denoted by a value: either a duration string or a plain number."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return float(value)
    parsed = parse_duration_minutes(str(value))
    if parsed is not None:
        return float(parsed)
    return _as_number(value)


def _as_date(value: object):
    if isinstance(value, _dt.datetime):
        return value.date()
    if isinstance(value, _dt.date):
        return value
    if isinstance(value, (int, float, bool)):
        return None
    return parse_date(str(value))


def _canonical_text(value: object, conv: EvaluationConventions) -> str:
    text = str(value)
    if conv.strip_whitespace:
        text = " ".join(text.split())
    if conv.case_insensitive:
        text = text.lower()
    return text
