"""Run a cleaning system on a benchmark and score it.

This module wires together the datasets, the systems (Cocoon and the four
baselines) and the metrics, reproducing the experimental setup of §3.1:

* HoloClean receives the ground-truth denial constraints; on inputs beyond
  its memory budget (Movies) it is evaluated on the first 1000 rows.
* Raha+Baran receives ground-truth feedback on 20 tuples.
* CleanAgent rejects CSV files larger than 2 MB and is likewise evaluated on
  a 1000-row sample of Movies.
* RetClean receives no reference tables (none are available).
* Cocoon runs with the simulated LLM and auto-approved human review, matching
  the paper's "skip HIL and use the LLM provided ground truth" setting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.baselines import (
    CleanAgentSystem,
    CleaningSystem,
    HoloCleanSystem,
    RahaBaranSystem,
    RetCleanSystem,
    SystemContext,
    SystemOutput,
)
from repro.baselines.cleanagent import CleanAgentFileSizeError
from repro.baselines.holoclean.system import HoloCleanMemoryError
from repro.core import CleaningConfig, CocoonCleaner
from repro.datasets.base import BenchmarkDataset
from repro.dataframe.table import Table
from repro.evaluation.conventions import EvaluationConventions
from repro.evaluation.metrics import Scores, evaluate_repairs
from repro.llm.base import LLMClient

Cell = Tuple[int, str]

#: Ground-truth denial constraints (single-attribute FDs) provided to HoloClean,
#: mirroring the constraint files shipped with the original benchmarks.
GROUND_TRUTH_CONSTRAINTS: Dict[str, List[Tuple[str, str]]] = {
    "hospital": [
        ("ProviderNumber", "ZipCode"),
        ("ProviderNumber", "PhoneNumber"),
        ("MeasureCode", "Condition"),
        ("MeasureCode", "MeasureName"),
    ],
    "flights": [
        ("flight", "scheduled_departure"),
        ("flight", "scheduled_arrival"),
        ("flight", "actual_departure"),
        ("flight", "actual_arrival"),
    ],
    "beers": [
        ("brewery_id", "brewery_name"),
    ],
    "rayyan": [
        ("journal_title", "journal_issn"),
        ("journal_title", "journal_abbreviation"),
    ],
    "movies": [
        ("name", "director"),
        ("name", "year"),
    ],
}

#: Number of ground-truth-labelled tuples given to Raha+Baran (paper: 20).
LABELED_TUPLES = 20

#: Simulated memory budget for HoloClean (cells); Movies at paper scale exceeds it.
HOLOCLEAN_MAX_CELLS = 60_000

#: Sample size used when a system cannot handle the full dataset (paper: 1000 rows).
FALLBACK_SAMPLE_ROWS = 1000


@dataclass
class SystemResult:
    """Scores for one system on one benchmark."""

    system: str
    dataset: str
    scores: Scores
    runtime_seconds: float = 0.0
    sampled_rows: Optional[int] = None
    notes: str = ""
    # Raw output accounting (before scoring-time filtering).
    detected: int = 0
    repaired: int = 0
    llm_calls: int = 0

    @property
    def used_sample(self) -> bool:
        return self.sampled_rows is not None

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly record; ``runtime_seconds`` is the only
        non-deterministic field (everything else is a pure function of the
        dataset seed/scale and the system)."""
        return {
            "system": self.system,
            "dataset": self.dataset,
            "precision": self.scores.precision,
            "recall": self.scores.recall,
            "f1": self.scores.f1,
            "correct_repairs": self.scores.correct_repairs,
            "total_repairs": self.scores.total_repairs,
            "total_errors": self.scores.total_errors,
            "detected": self.detected,
            "repaired": self.repaired,
            "llm_calls": self.llm_calls,
            "sampled_rows": self.sampled_rows,
            "notes": self.notes,
            "runtime_seconds": self.runtime_seconds,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SystemResult":
        scores = Scores(
            precision=float(data["precision"]),
            recall=float(data["recall"]),
            f1=float(data["f1"]),
            correct_repairs=int(data.get("correct_repairs", 0)),
            total_repairs=int(data.get("total_repairs", 0)),
            total_errors=int(data.get("total_errors", 0)),
        )
        sampled = data.get("sampled_rows")
        return cls(
            system=str(data["system"]),
            dataset=str(data["dataset"]),
            scores=scores,
            runtime_seconds=float(data.get("runtime_seconds", 0.0)),
            sampled_rows=None if sampled is None else int(sampled),
            notes=str(data.get("notes", "")),
            detected=int(data.get("detected", 0)),
            repaired=int(data.get("repaired", 0)),
            llm_calls=int(data.get("llm_calls", 0)),
        )


@dataclass
class RepairOutcome:
    """Phase one of an experiment cell: what a system did, before scoring.

    The repair phase is independent of the evaluation conventions, so one
    outcome can be scored several ways — the experiment matrix runs the
    (Cocoon, hospital) repair once and scores it for both Table 1 (lenient
    conventions) and Table 3 (strict conventions, extended ground truth).
    """

    system: str
    dataset: str
    output: SystemOutput
    #: The table the system actually repaired (the head sample on fallback).
    dirty: Table
    sampled_rows: Optional[int] = None
    runtime_seconds: float = 0.0


class CocoonSystem(CleaningSystem):
    """Adapter exposing :class:`CocoonCleaner` through the common system interface."""

    name = "Cocoon"

    def __init__(self, llm: Optional[LLMClient] = None, config: Optional[CleaningConfig] = None):
        self._llm = llm
        self._config = config

    def repair(self, dirty: Table, context: SystemContext) -> SystemOutput:
        cleaner = CocoonCleaner(llm=self._llm, config=self._config)
        result = cleaner.clean(dirty)
        return SystemOutput(
            repairs=dict(result.repaired_cells()),
            detected_cells=sorted(result.repaired_cells().keys()),
            notes=f"{result.llm_calls} LLM calls, {len(result.operator_results)} operator runs",
            llm_calls=result.llm_calls,
        )


def default_systems() -> Dict[str, Callable[[], CleaningSystem]]:
    """Factories for the five systems of Table 1, in presentation order."""
    return {
        "HoloClean": lambda: HoloCleanSystem(max_cells=HOLOCLEAN_MAX_CELLS),
        "Raha+Baran": RahaBaranSystem,
        "CleanAgent": CleanAgentSystem,
        "RetClean": RetCleanSystem,
        "Cocoon": CocoonSystem,
    }


class ExperimentRunner:
    """Runs systems over benchmarks under the paper's evaluation conventions."""

    def __init__(
        self,
        conventions: Optional[EvaluationConventions] = None,
        systems: Optional[Dict[str, Callable[[], CleaningSystem]]] = None,
        seed: int = 0,
    ):
        self.conventions = conventions or EvaluationConventions.paper_main()
        self.system_factories = systems or default_systems()
        self.seed = seed

    # -- context construction ----------------------------------------------------
    def build_context(self, dataset: BenchmarkDataset) -> SystemContext:
        constraints = [
            (det, dep)
            for det, dep in GROUND_TRUTH_CONSTRAINTS.get(dataset.name, [])
            if det in dataset.dirty.column_names and dep in dataset.dirty.column_names
        ]
        labeled: Dict[Cell, object] = {}
        step = max(1, dataset.clean.num_rows // LABELED_TUPLES)
        labeled_rows = list(range(0, dataset.clean.num_rows, step))[:LABELED_TUPLES]
        for row in labeled_rows:
            for column in dataset.clean.column_names:
                labeled[(row, column)] = dataset.clean.cell(row, column)
        return SystemContext(denial_constraints=constraints, labeled_cells=labeled, seed=self.seed)

    # -- running -------------------------------------------------------------------
    def run_repair(self, system_name: str, dataset: BenchmarkDataset) -> RepairOutcome:
        """Phase one: run a system on a dataset, without scoring it.

        Handles the paper's fallback convention — systems that cannot handle
        a dataset (memory/file-size limits) are re-run on the first 1000 rows.
        """
        if system_name not in self.system_factories:
            raise KeyError(f"Unknown system {system_name!r}; available: {list(self.system_factories)}")
        system = self.system_factories[system_name]()
        context = self.build_context(dataset)

        dirty = dataset.dirty
        sampled_rows: Optional[int] = None
        start = time.perf_counter()
        try:
            output = system.repair(dirty, context)
        except (HoloCleanMemoryError, CleanAgentFileSizeError) as exc:
            # Paper footnote: systems that cannot handle Movies are benchmarked
            # over the sample of the first 1000 rows.
            sampled_rows = min(FALLBACK_SAMPLE_ROWS, dirty.num_rows)
            dirty = dataset.dirty.head(sampled_rows)
            context = self._restrict_context(context, sampled_rows)
            try:
                output = system.repair(dirty, context)
            except (HoloCleanMemoryError, CleanAgentFileSizeError):
                output = SystemOutput(repairs={}, notes=f"failed even on sample: {exc}")
        runtime = time.perf_counter() - start
        return RepairOutcome(
            system=system_name,
            dataset=dataset.name,
            output=output,
            dirty=dirty,
            sampled_rows=sampled_rows,
            runtime_seconds=runtime,
        )

    def score_repair(
        self,
        outcome: RepairOutcome,
        dataset: BenchmarkDataset,
        clean_override: Optional[Table] = None,
        conventions: Optional[EvaluationConventions] = None,
    ) -> SystemResult:
        """Phase two: score a repair outcome under some conventions.

        ``clean_override`` substitutes the ground truth (used by the Table 3
        evaluation, which scores against the extended clean table);
        ``conventions`` overrides the runner-level default, so one outcome
        can be scored under both the lenient and the strict conventions.
        """
        clean = clean_override if clean_override is not None else dataset.clean
        if outcome.sampled_rows is not None:
            clean = clean.head(outcome.sampled_rows)
        conv = conventions or self.conventions
        scores = evaluate_repairs(outcome.dirty, clean, outcome.output.repairs, conv)
        return SystemResult(
            system=outcome.system,
            dataset=outcome.dataset,
            scores=scores,
            runtime_seconds=outcome.runtime_seconds,
            sampled_rows=outcome.sampled_rows,
            notes=outcome.output.notes,
            detected=len(outcome.output.detected_cells),
            repaired=len(outcome.output.repairs),
            llm_calls=outcome.output.llm_calls,
        )

    def run_system(
        self,
        system_name: str,
        dataset: BenchmarkDataset,
        clean_override: Optional[Table] = None,
    ) -> SystemResult:
        """Run one system on one dataset and score it (repair + score)."""
        outcome = self.run_repair(system_name, dataset)
        return self.score_repair(outcome, dataset, clean_override=clean_override)

    @staticmethod
    def _restrict_context(context: SystemContext, rows: int) -> SystemContext:
        labeled = {cell: value for cell, value in context.labeled_cells.items() if cell[0] < rows}
        return SystemContext(
            denial_constraints=list(context.denial_constraints),
            labeled_cells=labeled,
            reference_tables=list(context.reference_tables),
            seed=context.seed,
        )

    def run_all(self, datasets: List[BenchmarkDataset]) -> List[SystemResult]:
        """Run every system on every dataset (the full Table 1 grid)."""
        results: List[SystemResult] = []
        for dataset in datasets:
            for system_name in self.system_factories:
                results.append(self.run_system(system_name, dataset))
        return results
