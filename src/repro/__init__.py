"""Reproduction of "Data Cleaning Using Large Language Models" (Cocoon, ICDE 2025).

Public API highlights::

    from repro import CocoonCleaner, load_dataset
    from repro.dataframe import Table, read_csv

    dataset = load_dataset("hospital", scale=0.2)
    result = CocoonCleaner().clean(dataset.dirty)
    print(result.sql_script)

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the reproduced tables.
"""

from repro.core import CleaningConfig, CleaningResult, CocoonCleaner
from repro.datasets import load_dataset, dataset_names
from repro.evaluation import EvaluationConventions, Scores, evaluate_repairs

__version__ = "1.0.0"

__all__ = [
    "CocoonCleaner",
    "CleaningConfig",
    "CleaningResult",
    "load_dataset",
    "dataset_names",
    "EvaluationConventions",
    "Scores",
    "evaluate_repairs",
    "__version__",
]
