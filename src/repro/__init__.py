"""Reproduction of "Data Cleaning Using Large Language Models" (Cocoon, ICDE 2025).

Public API highlights::

    from repro import CocoonCleaner, load_dataset
    from repro.dataframe import Table, read_csv

    dataset = load_dataset("hospital", scale=0.2)
    result = CocoonCleaner().clean(dataset.dirty)
    print(result.sql_script)

See ``README.md`` for the architecture overview, ``DESIGN.md`` for the system
inventory and ``EXPERIMENTS.md`` for the reproduced tables.
"""

from repro.core import CleaningConfig, CleaningResult, CocoonCleaner
from repro.datasets import load_dataset, dataset_names
from repro.evaluation import EvaluationConventions, Scores, evaluate_repairs
from repro.service import (
    CleaningJob,
    CleaningService,
    JobResult,
    JobStatus,
    ServiceStats,
    clean_chunked,
)

__version__ = "1.1.0"

__all__ = [
    "CocoonCleaner",
    "CleaningConfig",
    "CleaningResult",
    "CleaningService",
    "CleaningJob",
    "JobResult",
    "JobStatus",
    "ServiceStats",
    "clean_chunked",
    "load_dataset",
    "dataset_names",
    "EvaluationConventions",
    "Scores",
    "evaluate_repairs",
    "__version__",
]
