"""The gateway application object: HTTP-shaped operations, no sockets.

:class:`CleaningGateway` is everything the server does, expressed as plain
methods over JSON-able dicts — the HTTP layer (:mod:`repro.server.http`)
only routes, decodes and encodes.  Keeping the two apart makes the gateway
unit-testable without binding a port and reusable behind any other
transport.

Wiring (the point of the layer):

* one shared :class:`~repro.llm.cache.PromptCacheStore` backs *both* the
  batch service's per-job clients and every stream's cleaner, so network
  traffic amortises LLM calls exactly like in-process callers do;
* the batch :class:`~repro.service.CleaningService` runs with bounded
  admission (``max_pending_jobs``) and its by-id job registry, so jobs are
  addressable across requests and a flooded service answers 429 instead of
  queueing without bound;
* streams are created on first use through the
  :meth:`~repro.stream.service.StreamService.get_or_create_stream`
  registry; a full stream queue raises
  :class:`~repro.stream.StreamBackpressure`, which the HTTP layer maps to
  429 with a ``Retry-After`` hint.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Union

from repro.core.context import CleaningConfig
from repro.dataframe.io import read_csv_text, to_csv_text
from repro.dataframe.table import Table
from repro.llm.cache import PromptCacheStore, cached_client
from repro.llm.simulated import SimulatedSemanticLLM
from repro.obs import current_ref, get_tracer
from repro.obs.lineage import json_safe_record
from repro.obs.metrics import MetricsRegistry, prometheus_gauges_from
from repro.obs.metrics import get_registry as get_default_registry
from repro.service.jobs import JobStatus
from repro.service.scheduler import CleaningService
from repro.stream.drift import DriftConfig
from repro.stream.service import StreamService

#: Request-level events the gateway always reports, even at zero.
_EVENT_KEYS = (
    "requests",
    "jobs_submitted",
    "batches_submitted",
    "rejected_saturated",
    "rejected_backpressure",
)


class BadRequest(ValueError):
    """The request payload cannot be turned into work (HTTP 400)."""


class ResultNotReady(RuntimeError):
    """The job exists but has not reached a terminal state yet (HTTP 409)."""


class CleaningGateway:
    """Batch + stream cleaning behind one application facade.

    Parameters mirror the two underlying services; ``llm_factory`` defaults
    to the deterministic :class:`~repro.llm.simulated.SimulatedSemanticLLM`
    so the server runs offline, and ``retry_after_seconds`` is the hint sent
    with every 429.
    """

    def __init__(
        self,
        workers: int = 4,
        stream_workers: int = 2,
        max_pending_jobs: Optional[int] = 64,
        max_pending_batches: int = 4,
        llm_factory: Optional[Callable[[], Any]] = None,
        config: Optional[CleaningConfig] = None,
        cache_path: Optional[Union[str, Path]] = None,
        cache_store: Optional[PromptCacheStore] = None,
        cache_flush_every: int = 32,
        default_chunk_rows: int = 0,
        retry_after_seconds: float = 1.0,
        metrics_registry: Optional[MetricsRegistry] = None,
        tracing: bool = True,
        detect_drift: bool = True,
        drift_config: Optional["DriftConfig"] = None,
        stream_prime_rows: int = 0,
    ):
        self.llm_factory = llm_factory or SimulatedSemanticLLM
        self.retry_after_seconds = retry_after_seconds
        #: Per-request tracing: the HTTP layer forces a ``server.request``
        #: root for every request when this is set, and the trace follows the
        #: job through service → pipeline → operators → SQL plan nodes.
        self.tracing = tracing
        # One registry per gateway (private by default for test isolation);
        # both underlying services fold their metrics into it, so one
        # Prometheus scrape covers the whole process.
        self.registry = metrics_registry if metrics_registry is not None else MetricsRegistry()
        if cache_store is not None:
            self.cache = cache_store
        else:
            self.cache = PromptCacheStore(cache_path, flush_every=cache_flush_every)
        self.service = CleaningService(
            workers=workers,
            llm_factory=self.llm_factory,
            config=config,
            cache_store=self.cache,
            default_chunk_rows=default_chunk_rows,
            max_pending_jobs=max_pending_jobs,
            metrics_registry=self.registry,
        )
        # Stream cleaners write through the same shared store as batch jobs.
        self.streams = StreamService(
            workers=stream_workers,
            max_pending_batches=max_pending_batches,
            config=config,
            llm_factory=lambda: cached_client(self.llm_factory(), self.cache),
            detect_drift=detect_drift,
            drift_config=drift_config,
            prime_rows=stream_prime_rows,
            metrics_registry=self.registry,
        )
        self.started_at = time.time()
        self._draining = False
        self._counter_lock = threading.Lock()
        self._event_keys = set(_EVENT_KEYS)
        self._events = self.registry.counter(
            "repro_gateway_events_total",
            help="Gateway request-level events (requests, submissions, rejections)",
            label_names=("event",),
        )

    # -- lifecycle ---------------------------------------------------------------
    def start(self) -> "CleaningGateway":
        self.service.start()
        self.streams.pool.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Drain both services (with ``wait``) and flush the shared cache."""
        self._draining = True
        self.service.shutdown(wait=wait)
        self.streams.shutdown(wait=wait)
        self.cache.flush()

    def __enter__(self) -> "CleaningGateway":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    @property
    def draining(self) -> bool:
        return self._draining

    def count(self, key: str, delta: int = 1) -> None:
        with self._counter_lock:
            self._event_keys.add(key)
        self._events.inc(delta, event=key)

    # -- payload parsing -----------------------------------------------------------
    @staticmethod
    def parse_table(payload: Dict[str, Any], default_name: str = "table") -> Table:
        """Build a :class:`Table` from a request payload.

        Accepts ``{"csv": "..."} `` (parsed with raw VARCHAR types, exactly
        like :meth:`CleaningService.submit_csv`) or
        ``{"columns": {name: [values...]}}``.  ``name`` overrides the table
        name in both forms.
        """
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        name = payload.get("name") or default_name
        if not isinstance(name, str):
            raise BadRequest("'name' must be a string")
        if "csv" in payload:
            if not isinstance(payload["csv"], str):
                raise BadRequest("'csv' must be a string of CSV text")
            table = read_csv_text(payload["csv"], name=name, infer_types=False)
        elif "columns" in payload:
            columns = payload["columns"]
            if not isinstance(columns, dict) or not all(
                isinstance(v, list) for v in columns.values()
            ):
                raise BadRequest("'columns' must map column names to value lists")
            try:
                table = Table.from_dict(name, columns)
            except ValueError as exc:
                raise BadRequest(str(exc))
        else:
            raise BadRequest("request body needs a 'csv' string or a 'columns' mapping")
        if table.num_columns == 0:
            raise BadRequest("the submitted table has no columns")
        return table

    # -- batch jobs -------------------------------------------------------------------
    def submit_job(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/jobs``: queue one table for cleaning; returns the job id.

        Raises :class:`~repro.service.ServiceSaturated` when bounded
        admission refuses the job (mapped to 429 upstream).
        """
        table = self.parse_table(payload, default_name="job")
        priority = payload.get("priority", 0)
        chunk_rows = payload.get("chunk_rows")
        if not isinstance(priority, int):
            raise BadRequest("'priority' must be an integer")
        if chunk_rows is not None and not isinstance(chunk_rows, int):
            raise BadRequest("'chunk_rows' must be an integer")
        # Capture the caller's span (the HTTP layer's ``server.request``) so
        # the worker thread can parent its ``service.job`` trace under it.
        metadata: Dict[str, Any] = {}
        parent = current_ref()
        if parent is not None:
            metadata["trace_parent"] = parent
        job = self.service.submit(
            table, priority=priority, chunk_rows=chunk_rows, metadata=metadata
        )
        self.count("jobs_submitted")
        return {
            "job_id": job.job_id,
            "name": job.name,
            "status": str(job.status),
            "rows": table.num_rows,
            "columns": table.num_columns,
        }

    def job_status(self, job_id: int) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}``: lifecycle snapshot plus service stats."""
        job = self.service.job(job_id)
        return {
            "job_id": job.job_id,
            "name": job.name,
            "status": str(job.status),
            "done": job.done,
            "summary": job.result.summary() if job.result is not None else None,
            "service": self.service.stats().to_dict(),
        }

    def job_result(self, job_id: int) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}/result``: the cleaned table + commented SQL.

        Raises :class:`ResultNotReady` while the job is pending/running; a
        failed job returns its error (the HTTP layer keeps the 200 — the
        *request* succeeded, the job did not).
        """
        job = self.service.job(job_id)
        if not job.done or job.result is None:
            raise ResultNotReady(f"job {job_id} is still {job.status}")
        result = job.result
        doc: Dict[str, Any] = {
            "job_id": job.job_id,
            "name": job.name,
            "status": str(result.status),
            "rows": result.rows,
            "columns": result.columns,
            "llm_calls": result.llm_calls,
            "cell_repairs": result.cell_repairs,
            "removed_rows": result.removed_rows,
            "run_seconds": result.run_seconds,
            "wait_seconds": result.wait_seconds,
        }
        if result.status is JobStatus.SUCCEEDED and result.cleaning_result is not None:
            doc["csv"] = to_csv_text(result.cleaning_result.cleaned_table)
            doc["sql_script"] = result.cleaning_result.sql_script
        else:
            doc["error"] = result.error
        return doc

    # -- streams ---------------------------------------------------------------------------
    def submit_stream_batch(self, stream_name: str, payload: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /v1/streams/{name}/batches``: feed one micro-batch.

        The stream is created on first use.  A full per-stream queue raises
        :class:`~repro.stream.StreamBackpressure` (mapped to 429 +
        ``Retry-After`` upstream) — the producer must back off, never the
        worker pool.
        """
        if not stream_name:
            raise BadRequest("stream name must not be empty")
        table = self.parse_table(payload, default_name=stream_name)
        stream = self.streams.get_or_create_stream(stream_name)
        job = self.streams.submit(stream_name, table, block=False)
        self.count("batches_submitted")
        return {
            "stream": stream_name,
            "sequence": job.sequence,
            "rows": table.num_rows,
            "pending_batches": stream.pending_batches,
            "max_pending_batches": stream.max_pending_batches,
        }

    def stream_status(self, stream_name: str) -> Dict[str, Any]:
        """``GET /v1/streams/{name}``: per-stream progress counters."""
        stream = self.streams.stream(stream_name)
        return {
            "stream": stream_name,
            "submitted_batches": stream.submitted_batches,
            "completed_batches": stream.completed_batches,
            "failed_batches": stream.failed_batches,
            "pending_batches": stream.pending_batches,
            "failed": stream.failed,
            "failure": stream.failure,
        }

    def stream_result(self, stream_name: str) -> Dict[str, Any]:
        """``GET /v1/streams/{name}/result``: the cumulative cleaned output.

        Returns the stream cleaner's cleaned table as CSV plus its stats —
        the streaming counterpart of ``/v1/jobs/{id}/result``, which is what
        lets the scenario replay harness assert byte-parity between the
        HTTP stream path and an in-process reference.  Raises
        :class:`ResultNotReady` while batches are still pending (the
        snapshot would race the workers), and ``KeyError`` (404) for
        unknown streams.
        """
        stream = self.streams.stream(stream_name)
        pending = stream.pending_batches
        if pending:
            raise ResultNotReady(
                f"stream {stream_name!r} still has {pending} pending batches"
            )
        cleaned = stream.cleaner.cleaned_table()
        return {
            "stream": stream_name,
            "rows": cleaned.num_rows,
            "columns": cleaned.column_names,
            "csv": to_csv_text(cleaned),
            "failed": stream.failed,
            "failure": stream.failure,
            "stats": stream.cleaner.stats.to_dict(),
        }

    def job_trace(self, job_id: int) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}/trace``: the job's span tree.

        Covers server → service → pipeline → operator → SQL-plan-node levels
        when tracing is on; ``spans`` is empty when the job predates tracing,
        tracing is disabled, or the trace was evicted.
        """
        job = self.service.job(job_id)
        trace_id = job.metadata.get("trace_id")
        spans = get_tracer().trace_tree(trace_id) if trace_id else []
        return {
            "job_id": job.job_id,
            "name": job.name,
            "status": str(job.status),
            "trace_id": trace_id,
            "spans": spans,
        }

    def job_lineage(
        self, job_id: int, row: Optional[int] = None, column: Optional[str] = None
    ) -> Dict[str, Any]:
        """``GET /v1/jobs/{id}/lineage``: the job's cell-level audit trail.

        Without query parameters, returns every lineage record plus the
        recorder's census; with ``?row=`` (and optionally ``&column=``)
        returns just that cell's ordered explain chain.  Raises
        :class:`ResultNotReady` while the job is pending/running; a job
        whose pipeline predates lineage (or failed) reports zero records
        rather than 404 — the job exists, it just has nothing to explain.
        """
        job = self.service.job(job_id)
        if not job.done or job.result is None:
            raise ResultNotReady(f"job {job_id} is still {job.status}")
        result = job.result
        recorder = (
            getattr(result.cleaning_result, "lineage", None)
            if result.cleaning_result is not None
            else None
        )
        doc: Dict[str, Any] = {
            "job_id": job.job_id,
            "name": job.name,
            "status": str(result.status),
        }
        if recorder is None:
            doc.update({"records": [], "changed_cells": 0, "removed_rows": [], "census": {}})
            return doc
        if row is not None:
            doc["row_id"] = row
            doc["column"] = column
            doc["records"] = [json_safe_record(r) for r in recorder.explain(row, column)]
            return doc
        doc.update(recorder.to_doc())
        return doc

    # -- observability ------------------------------------------------------------------------
    def healthz(self) -> Dict[str, Any]:
        pending = self.service.pending_jobs
        limit = self.service.max_pending_jobs
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "queue": {
                "pending_jobs": pending,
                "max_pending_jobs": limit,
                # Unbounded admission never saturates; report 0.0, not None.
                "saturation": round(pending / limit, 4) if limit else 0.0,
            },
        }

    def _gateway_counters(self) -> Dict[str, int]:
        """The request-event counter as a plain dict (known keys always present)."""
        with self._counter_lock:
            keys = sorted(self._event_keys)
        return {key: int(self._events.value(event=key)) for key in keys}

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``: JSON counters across both services + the cache."""
        service_stats = self.service.stats()
        stream_stats = self.streams.stats()
        return {
            "generated_at": time.time(),
            "uptime_seconds": round(time.time() - self.started_at, 3),
            "gateway": self._gateway_counters(),
            "jobs": {
                "submitted": service_stats.jobs_submitted,
                "succeeded": service_stats.jobs_succeeded,
                "failed": service_stats.jobs_failed,
                "cancelled": service_stats.jobs_cancelled,
                "pending": self.service.pending_jobs,
                "queue_depth": self.service.queue_depth,
            },
            "cache": self.cache.stats(),
            "streams": {
                "count": stream_stats.streams,
                "batches_submitted": stream_stats.batches_submitted,
                "batches_completed": stream_stats.batches_completed,
                "batches_failed": stream_stats.batches_failed,
                "queue_depth": self.streams.pool.queue.pending_count(),
                "pending_per_stream": {
                    name: info.get("pending", 0)
                    for name, info in stream_stats.per_stream.items()
                },
            },
        }

    def metrics_text(self) -> str:
        """``GET /metrics?format=prometheus``: Prometheus text format (0.0.4).

        Renders the gateway's registry (gateway events + both services)
        followed by the process-default registry (LLM and cache metrics) —
        the family names are disjoint, so the concatenation is one valid
        exposition.  Point-in-time state (uptime, queue depths, cache
        effectiveness) is refreshed into gauges at scrape time.
        """
        self.registry.gauge(
            "repro_gateway_uptime_seconds", help="Seconds since the gateway started"
        ).set(time.time() - self.started_at)
        self.registry.gauge(
            "repro_service_pending_jobs", help="Unfinished cleaning jobs held by the service"
        ).set(self.service.pending_jobs)
        self.registry.gauge(
            "repro_service_queue_depth", help="Cleaning jobs waiting in the run queue"
        ).set(self.service.queue_depth)
        self.registry.gauge(
            "repro_stream_queue_depth", help="Stream micro-batches waiting in the pool queue"
        ).set(self.streams.pool.queue.pending_count())
        prometheus_gauges_from(
            self.registry,
            "repro_cache",
            self.cache.stats(),
            help="Shared prompt-cache statistics",
        )
        default = get_default_registry()
        if default is self.registry:
            return self.registry.render_prometheus()
        return self.registry.render_prometheus() + default.render_prometheus()
