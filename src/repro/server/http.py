"""The HTTP transport: stdlib threading server + request routing.

Dependency-free by design (the container bakes in no web framework):
``http.server.ThreadingHTTPServer`` gives one thread per connection, which
is plenty — request handling only parses/encodes JSON and enqueues onto the
worker pools; the cleaning itself runs on the services' own threads.

Routing table::

    GET  /healthz                     liveness + drain state + queue saturation
    GET  /metrics                     JSON counters (jobs, cache, queues);
                                      ?format=prometheus (or Accept: text/plain)
                                      for Prometheus text exposition
    POST /v1/jobs                     submit a table, -> {"job_id": ...}
    GET  /v1/jobs/{id}                job lifecycle + ServiceStats
    GET  /v1/jobs/{id}/result         cleaned CSV + commented SQL script
    GET  /v1/jobs/{id}/trace          span tree of the job's execution
    GET  /v1/jobs/{id}/lineage        cell-level audit trail (409 until done);
                                      ?row=&column= for one cell's explain chain
    POST /v1/streams/{name}/batches   feed one micro-batch (429 on backpressure)
    GET  /v1/streams/{name}           per-stream counters
    GET  /v1/streams/{name}/result    cumulative cleaned CSV + stream stats
                                      (409 while batches are pending)

Every request carries an id: an incoming ``X-Request-Id`` header is honoured
(so callers can correlate), otherwise one is generated; the id is echoed on
the response and names the request's trace (``req-<id>``), which submitted
jobs link to as their parent span.

Error mapping: malformed payloads -> 400, unknown ids/paths -> 404, result
of an unfinished job -> 409, bounded-admission or stream backpressure ->
429 with a ``Retry-After`` header, handler crashes -> 500.
"""

from __future__ import annotations

import json
import re
import sys
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs import PROMETHEUS_CONTENT_TYPE, get_tracer
from repro.server.gateway import BadRequest, CleaningGateway, ResultNotReady
from repro.service.scheduler import ServiceSaturated
from repro.stream.service import StreamBackpressure

_JOB_PATH = re.compile(r"^/v1/jobs/(\d+)$")
_JOB_RESULT_PATH = re.compile(r"^/v1/jobs/(\d+)/result$")
_JOB_TRACE_PATH = re.compile(r"^/v1/jobs/(\d+)/trace$")
_JOB_LINEAGE_PATH = re.compile(r"^/v1/jobs/(\d+)/lineage$")
_STREAM_PATH = re.compile(r"^/v1/streams/([^/]+)$")
_STREAM_BATCHES_PATH = re.compile(r"^/v1/streams/([^/]+)/batches$")
_STREAM_RESULT_PATH = re.compile(r"^/v1/streams/([^/]+)/result$")

#: Request bodies above this size are refused outright (64 MiB).
MAX_BODY_BYTES = 64 * 1024 * 1024


class GatewayHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server that owns a :class:`CleaningGateway`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address: Tuple[str, int], gateway: CleaningGateway, verbose: bool = False):
        super().__init__(address, GatewayRequestHandler)
        self.gateway = gateway
        self.verbose = verbose

    @property
    def port(self) -> int:
        return self.server_address[1]


class GatewayRequestHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: GatewayHTTPServer

    # -- plumbing ---------------------------------------------------------------
    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    def _send_json(
        self, status: int, payload: Dict[str, Any], headers: Optional[Dict[str, str]] = None
    ) -> None:
        self._send_bytes(status, json.dumps(payload).encode("utf-8"), "application/json", headers)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        self._send_bytes(status, text.encode("utf-8"), content_type)

    def _send_bytes(
        self,
        status: int,
        body: bytes,
        content_type: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        self._last_status = status
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        request_id = getattr(self, "_request_id", None)
        if request_id:
            self.send_header("X-Request-Id", request_id)
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, retry_after: Optional[float] = None) -> None:
        headers = {}
        if retry_after is not None:
            # Retry-After is defined in whole seconds; never advertise 0.
            headers["Retry-After"] = str(max(1, int(round(retry_after))))
        self._send_json(status, {"error": message}, headers)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequest(f"request body of {length} bytes exceeds the {MAX_BODY_BYTES} limit")
        self._body_consumed = True
        return self.rfile.read(length) if length else b""

    def _discard_unread_body(self) -> None:
        """Keep keep-alive connections in sync when a response skipped the body.

        Routes that answer before calling :meth:`_read_body` (404, 405, 503
        while draining, over-limit 400) leave the request body in the socket;
        the next pipelined request would then be parsed from those bytes.
        Small bodies are drained so the connection stays reusable; large ones
        force a close instead of burning time reading garbage.
        """
        if getattr(self, "_body_consumed", False):
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            return
        if length <= 1 << 20:
            try:
                self.rfile.read(length)
            except OSError:
                self.close_connection = True
        else:
            self.close_connection = True

    def _payload(self) -> Dict[str, Any]:
        """Decode the request body into the gateway's payload dict.

        ``application/json`` bodies pass through; ``text/csv`` (or anything
        else non-JSON) is wrapped as ``{"csv": body}`` with the table name
        taken from the ``?name=`` query parameter.
        """
        raw = self._read_body()
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip().lower()
        if content_type == "application/json":
            try:
                payload = json.loads(raw.decode("utf-8") or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise BadRequest(f"invalid JSON body: {exc}")
            if not isinstance(payload, dict):
                raise BadRequest("JSON body must be an object")
            return payload
        payload = {"csv": raw.decode("utf-8", errors="replace")}
        query = parse_qs(urlparse(self.path).query)
        if "name" in query:
            payload["name"] = query["name"][0]
        return payload

    # -- dispatch ------------------------------------------------------------------
    def _handle(self, method: str) -> None:
        gateway = self.server.gateway
        gateway.count("requests")
        path = urlparse(self.path).path
        self._body_consumed = False
        self._last_status = 0
        self._request_id = (self.headers.get("X-Request-Id") or "").strip() or uuid.uuid4().hex[:12]
        # The request root span: submitted jobs parent under it, so one trace
        # follows request -> job -> pipeline -> operators -> SQL plan nodes.
        with get_tracer().span(
            "server.request",
            force=gateway.tracing,
            trace_id=f"req-{self._request_id}",
            method=method,
            path=path,
        ) as sp:
            try:
                self._route(method, path, gateway)
            except BadRequest as exc:
                self._send_error_json(400, str(exc))
            except KeyError as exc:
                self._send_error_json(404, str(exc).strip("'\""))
            except ResultNotReady as exc:
                self._send_error_json(409, str(exc))
            except ServiceSaturated as exc:
                gateway.count("rejected_saturated")
                self._send_error_json(429, str(exc), retry_after=gateway.retry_after_seconds)
            except StreamBackpressure as exc:
                gateway.count("rejected_backpressure")
                self._send_error_json(429, str(exc), retry_after=gateway.retry_after_seconds)
            except Exception as exc:  # noqa: BLE001 - last-resort request boundary
                self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            finally:
                sp.annotate(status=self._last_status)
                self._discard_unread_body()

    def _route(self, method: str, path: str, gateway: CleaningGateway) -> None:
        if method == "GET" and path == "/healthz":
            doc = gateway.healthz()
            self._send_json(200 if doc["status"] == "ok" else 503, doc)
            return
        if method == "GET" and path == "/metrics":
            if self._wants_prometheus():
                self._send_text(200, gateway.metrics_text(), PROMETHEUS_CONTENT_TYPE)
            else:
                self._send_json(200, gateway.metrics())
            return
        if path == "/v1/jobs":
            if method != "POST":
                self._send_error_json(405, "use POST to submit a job")
                return
            if gateway.draining:
                self._send_error_json(503, "server is draining")
                return
            self._send_json(202, gateway.submit_job(self._payload()))
            return
        match = _JOB_PATH.match(path)
        if match:
            if method != "GET":
                self._send_error_json(405, "job status is read-only")
                return
            self._send_json(200, gateway.job_status(int(match.group(1))))
            return
        match = _JOB_RESULT_PATH.match(path)
        if match:
            if method != "GET":
                self._send_error_json(405, "job results are read-only")
                return
            self._send_json(200, gateway.job_result(int(match.group(1))))
            return
        match = _JOB_TRACE_PATH.match(path)
        if match:
            if method != "GET":
                self._send_error_json(405, "job traces are read-only")
                return
            self._send_json(200, gateway.job_trace(int(match.group(1))))
            return
        match = _JOB_LINEAGE_PATH.match(path)
        if match:
            if method != "GET":
                self._send_error_json(405, "job lineage is read-only")
                return
            query = parse_qs(urlparse(self.path).query)
            row: Optional[int] = None
            if "row" in query:
                try:
                    row = int(query["row"][0])
                except ValueError:
                    raise BadRequest(f"?row= must be an integer, got {query['row'][0]!r}")
            column = query["column"][0] if "column" in query else None
            if column is not None and row is None:
                raise BadRequest("?column= requires ?row=")
            self._send_json(200, gateway.job_lineage(int(match.group(1)), row=row, column=column))
            return
        match = _STREAM_BATCHES_PATH.match(path)
        if match:
            if method != "POST":
                self._send_error_json(405, "use POST to feed a batch")
                return
            if gateway.draining:
                self._send_error_json(503, "server is draining")
                return
            self._send_json(202, gateway.submit_stream_batch(match.group(1), self._payload()))
            return
        match = _STREAM_RESULT_PATH.match(path)
        if match:
            if method != "GET":
                self._send_error_json(405, "stream results are read-only")
                return
            self._send_json(200, gateway.stream_result(match.group(1)))
            return
        match = _STREAM_PATH.match(path)
        if match:
            if method != "GET":
                self._send_error_json(405, "stream status is read-only")
                return
            self._send_json(200, gateway.stream_status(match.group(1)))
            return
        self._send_error_json(404, f"no route for {method} {path}")

    def _wants_prometheus(self) -> bool:
        """Prometheus text when asked via ``?format=prometheus`` or Accept.

        JSON stays the default (and wins ties) so existing dashboards keep
        working; a scraper advertising ``text/plain`` without also accepting
        JSON gets the exposition format.
        """
        query = parse_qs(urlparse(self.path).query)
        fmt = (query.get("format") or [""])[0].strip().lower()
        if fmt:
            return fmt in ("prometheus", "text")
        accept = (self.headers.get("Accept") or "").lower()
        return "text/plain" in accept and "application/json" not in accept

    # -- verbs -------------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._handle("POST")


def make_server(
    gateway: CleaningGateway,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
) -> GatewayHTTPServer:
    """Bind the gateway to an address (``port=0`` picks an ephemeral port)."""
    gateway.start()
    return GatewayHTTPServer((host, port), gateway, verbose=verbose)
