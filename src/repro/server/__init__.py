"""HTTP gateway in front of the batch and stream cleaning services.

The paper's pitch is cleaning that *ships*: reusable SQL plus a system that
serves it.  Until now the only way to reach :class:`~repro.service.CleaningService`
(PR 1) or :class:`~repro.stream.StreamService` (PR 4) was in-process Python;
this package is the missing serving layer — a dependency-free HTTP server
(stdlib ``http.server`` threading only) exposing both over the network:

* :mod:`repro.server.gateway` — :class:`CleaningGateway`: the
  protocol-agnostic application object wiring one shared
  :class:`~repro.llm.cache.PromptCacheStore` through a bounded-admission
  ``CleaningService`` and a named-stream ``StreamService``;
* :mod:`repro.server.http` — request routing on a threading
  ``http.server``: ``POST /v1/jobs``, ``GET /v1/jobs/{id}``,
  ``GET /v1/jobs/{id}/result``, ``POST /v1/streams/{name}/batches``
  (backpressure surfaces as HTTP 429 with ``Retry-After``),
  ``GET /healthz`` and ``GET /metrics``;
* :mod:`repro.server.cli` — ``python -m repro.server`` with graceful
  drain-on-SIGTERM shutdown.

Throughput against the in-process pipeline is tracked by
``benchmarks/bench_server.py`` (committed as ``BENCH_server.json``).
"""

from repro.server.gateway import BadRequest, CleaningGateway, ResultNotReady
from repro.server.http import GatewayHTTPServer, make_server

__all__ = [
    "CleaningGateway",
    "BadRequest",
    "ResultNotReady",
    "GatewayHTTPServer",
    "make_server",
]
