"""Command-line entry point: serve the cleaning gateway over HTTP.

Usage::

    python -m repro.server --port 8080 --workers 4

``--port 0`` binds an ephemeral port; the chosen port is printed on the
"listening" line and, with ``--port-file``, written to a file so scripts
(CI's ``server-smoke`` job, the benchmark harness) can discover it without
parsing stdout.

Shutdown is graceful on SIGTERM/SIGINT: the listener stops accepting,
in-flight and queued jobs drain on the worker pools, the shared prompt
cache is flushed, and only then does the process exit.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.llm.simulated import SimulatedSemanticLLM
from repro.server.gateway import CleaningGateway
from repro.server.http import make_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="HTTP gateway for batch and stream cleaning (stdlib only).",
    )
    parser.add_argument("--host", default="127.0.0.1", help="Bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8080, help="Port to listen on (0 = ephemeral)")
    parser.add_argument(
        "--port-file",
        default=None,
        help="Write the bound port to this file once listening (for scripts/CI)",
    )
    parser.add_argument("--workers", type=int, default=4, help="Batch cleaning worker threads")
    parser.add_argument("--stream-workers", type=int, default=2, help="Stream worker threads")
    parser.add_argument(
        "--max-pending-jobs",
        type=int,
        default=64,
        help="Bounded admission: unfinished jobs beyond this answer 429 (default: 64)",
    )
    parser.add_argument(
        "--max-pending-batches",
        type=int,
        default=4,
        help="Per-stream backpressure bound; fuller streams answer 429 (default: 4)",
    )
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=0,
        help="Partition tables larger than this many rows (0 = whole-table mode)",
    )
    parser.add_argument("--cache", default=None, help="Persistent JSON prompt-cache path")
    parser.add_argument(
        "--flush-every",
        type=int,
        default=32,
        help="Persist the prompt cache after every N new entries (default: 32)",
    )
    parser.add_argument(
        "--llm-latency",
        type=float,
        default=0.0,
        help="Simulated per-LLM-call latency in seconds (models a hosted LLM)",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        help="Retry-After hint (seconds) sent with 429 responses (default: 1)",
    )
    parser.add_argument(
        "--no-tracing",
        action="store_true",
        help="Disable per-request/per-job span tracing (metrics stay on)",
    )
    parser.add_argument(
        "--trace-export",
        default=None,
        help="Append every finished trace to this JSONL file",
    )
    parser.add_argument("--verbose", action="store_true", help="Log every request to stderr")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.workers < 1 or args.stream_workers < 1:
        print("error: worker counts must be >= 1", file=sys.stderr)
        return 2
    if args.max_pending_jobs < 1 or args.max_pending_batches < 1:
        print("error: pending bounds must be >= 1", file=sys.stderr)
        return 2

    latency = args.llm_latency
    if args.trace_export:
        obs.configure(export_path=args.trace_export)

    def llm_factory():
        return SimulatedSemanticLLM(latency_seconds=latency) if latency > 0 else SimulatedSemanticLLM()

    gateway = CleaningGateway(
        workers=args.workers,
        stream_workers=args.stream_workers,
        max_pending_jobs=args.max_pending_jobs,
        max_pending_batches=args.max_pending_batches,
        llm_factory=llm_factory,
        cache_path=args.cache,
        cache_flush_every=args.flush_every,
        default_chunk_rows=args.chunk_rows,
        retry_after_seconds=args.retry_after,
        tracing=not args.no_tracing,
    )
    server = make_server(gateway, host=args.host, port=args.port, verbose=args.verbose)
    print(f"repro.server listening on http://{args.host}:{server.port}", flush=True)
    if args.port_file:
        Path(args.port_file).write_text(f"{server.port}\n", encoding="utf-8")

    stop = threading.Event()

    def request_shutdown(signum, frame):  # noqa: ARG001 - signal signature
        print(f"received signal {signum}, draining...", file=sys.stderr, flush=True)
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    # serve_forever runs on a helper thread so the main thread stays free to
    # receive signals and orchestrate the drain (calling server.shutdown()
    # from inside the serving thread would deadlock).
    serving = threading.Thread(target=server.serve_forever, name="repro-server-accept", daemon=True)
    serving.start()
    try:
        stop.wait()
    finally:
        server.shutdown()  # stop accepting; in-flight handlers finish
        serving.join()
        server.server_close()
        gateway.shutdown(wait=True)  # drain queued jobs/batches, flush cache
        print("repro.server drained and stopped", file=sys.stderr, flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
