"""Experiment reproduction: the tables and figures of the paper's evaluation.

Each experiment module regenerates one artifact:

* :mod:`repro.experiments.table1` — Table 1, P/R/F of five systems on five benchmarks.
* :mod:`repro.experiments.table2` — Table 2, error-type distribution of Hospital and Movies.
* :mod:`repro.experiments.table3` — Table 3, the Appendix B evaluation where
  column-type and DMV errors count.
* :mod:`repro.experiments.figures` — the F1 comparison series derived from Table 1.

``python -m repro.experiments <table1|table2|table3|all> [--scale S]`` prints
the corresponding rows.
"""

from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.figures import f1_series

__all__ = [
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "f1_series",
]
