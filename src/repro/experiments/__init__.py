"""Experiment reproduction: the tables and figures of the paper's evaluation.

Each experiment module regenerates one artifact:

* :mod:`repro.experiments.table1` — Table 1, P/R/F of five systems on five benchmarks.
* :mod:`repro.experiments.table2` — Table 2, error-type distribution of Hospital and Movies.
* :mod:`repro.experiments.table3` — Table 3, the Appendix B evaluation where
  column-type and DMV errors count.
* :mod:`repro.experiments.figures` — the F1 comparison series derived from Table 1.
* :mod:`repro.experiments.matrix` — the parallel experiment-matrix engine:
  the (table × dataset × system) grid as jobs on the shared worker pool,
  with repair dedup, a namespaced shared prompt cache, an incremental
  resumable results store, and the golden regression corpus
  (``GOLDEN_experiments.json``).

``python -m repro.experiments <table1|table2|table3|figure-f1|matrix|all>
[--scale S --workers N --golden]`` prints the corresponding rows; see
``--help`` for the grid/golden options.
"""

from repro.experiments.table1 import run_table1, format_table1
from repro.experiments.table2 import run_table2, format_table2
from repro.experiments.table3 import run_table3, format_table3
from repro.experiments.figures import f1_series
from repro.experiments.matrix import (
    CellResult,
    CellSpec,
    ExperimentMatrix,
    MatrixJobError,
    MatrixRun,
    MatrixStats,
    ResultsStore,
    UnknownNameError,
    build_grid,
    canonical_json,
    diff_golden,
    golden_payload,
    load_golden,
    validate_names,
    write_golden,
)

__all__ = [
    "run_table1",
    "format_table1",
    "run_table2",
    "format_table2",
    "run_table3",
    "format_table3",
    "f1_series",
    "CellResult",
    "CellSpec",
    "ExperimentMatrix",
    "MatrixJobError",
    "MatrixRun",
    "MatrixStats",
    "ResultsStore",
    "UnknownNameError",
    "build_grid",
    "canonical_json",
    "diff_golden",
    "golden_payload",
    "load_golden",
    "validate_names",
    "write_golden",
]
