"""Table 3 (Appendix B): evaluation that counts column-type and DMV errors.

The extended ground truth casts semantically typed columns (``"yes"`` →
``True``, duration strings → minutes) and turns disguised missing values into
NULL, then every system is scored against it with the strict conventions.
Only Cocoon performs these conversions, so its precision and recall rise
while the baselines fall — the outcome the paper reports (>0.9 F1 for Cocoon
on both Hospital and Movies).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets import load_dataset
from repro.evaluation.conventions import EvaluationConventions
from repro.evaluation.runner import ExperimentRunner, SystemResult
from repro.experiments.matrix import validate_names

#: Paper-reported numbers for reference.
PAPER_TABLE3: Dict[str, Dict[str, tuple]] = {
    "HoloClean": {"hospital": (1.00, 0.13, 0.24), "movies": (0.00, 0.00, 0.00)},
    "Raha+Baran": {"hospital": (1.00, 0.97, 0.98), "movies": (0.57, 0.55, 0.56)},
    "CleanAgent": {"hospital": (0.00, 0.00, 0.00), "movies": (0.00, 0.00, 0.00)},
    "RetClean": {"hospital": (0.00, 0.00, 0.00), "movies": (0.00, 0.00, 0.00)},
    "Cocoon": {"hospital": (0.99, 0.99, 0.99), "movies": (0.96, 0.91, 0.93)},
}

SYSTEM_ORDER = ["HoloClean", "Raha+Baran", "CleanAgent", "RetClean", "Cocoon"]


def run_table3(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[List[str]] = None,
    systems: Optional[List[str]] = None,
) -> List[SystemResult]:
    """Score systems against the extended ground truth (casts + DMV → NULL)."""
    names = datasets if datasets is not None else ["hospital", "movies"]
    runner = ExperimentRunner(conventions=EvaluationConventions.paper_extended(), seed=seed)
    if systems is not None:
        validate_names("system", systems, list(runner.system_factories))
        runner.system_factories = {
            name: factory for name, factory in runner.system_factories.items() if name in systems
        }
    results: List[SystemResult] = []
    for name in names:
        dataset = load_dataset(name, seed=seed, scale=scale)
        extended = dataset.extended_clean if dataset.extended_clean is not None else dataset.clean
        for system_name in runner.system_factories:
            results.append(runner.run_system(system_name, dataset, clean_override=extended))
    return results


def format_table3(results: List[SystemResult], include_paper: bool = True) -> str:
    datasets: List[str] = []
    for result in results:
        if result.dataset not in datasets:
            datasets.append(result.dataset)
    by_key = {(r.system, r.dataset): r for r in results}
    header = "Approach".ljust(12) + "".join(f"{d:^21}" for d in datasets)
    subheader = " " * 12 + "".join(f"{'P':^7}{'R':^7}{'F':^7}" for _ in datasets)
    lines = ["Table 3: comparison when column-type and DMV errors are counted",
             header, subheader, "-" * len(subheader)]
    systems = [s for s in SYSTEM_ORDER if any(r.system == s for r in results)]
    for system in systems:
        row = system.ljust(12)
        for dataset in datasets:
            result = by_key.get((system, dataset))
            if result is None:
                row += " " * 21
                continue
            p, r, f = result.scores.as_row()
            row += f"{p:6.2f} {r:6.2f} {f:6.2f} "
        lines.append(row)
    if include_paper:
        lines.append("")
        lines.append("Paper-reported F1 for comparison:")
        for system in systems:
            paper = PAPER_TABLE3.get(system, {})
            row = system.ljust(12)
            for dataset in datasets:
                values = paper.get(dataset)
                row += f"{'':7}{'':7}{values[2]:6.2f} " if values else " " * 21
            lines.append(row)
    return "\n".join(lines)
