"""The parallel experiment-matrix engine.

The paper's evaluation is a grid: (table × dataset × system) cells, each a
deterministic function of ``(seed, scale)``.  This module turns that grid
into jobs dispatched onto the generic :class:`~repro.service.pool.WorkerPool`
(the same pool the batch-cleaning service runs on), with:

* **Repair dedup** — Table 1 and Table 3 score the *same* system run under
  different conventions, so cells sharing a repair unit
  ``(dataset, system, seed, scale)`` are grouped into one job that repairs
  once and scores once per table.
* **A shared prompt cache** — all Cocoon cells share one thread-safe
  :class:`~repro.llm.cache.PromptCacheStore`, namespaced per repair unit.
  The namespace is what keeps the parallel grid byte-identical to the
  sequential grid: the simulated LLM is stateful within one cleaning run, so
  an un-namespaced cache hit from a *different* unit's coincidentally equal
  prompt would make responses depend on execution order.  Within a
  namespace there is exactly one job per run (dedup), and across runs a
  persisted cache replays the identical deterministic responses.
* **An incremental results store** — every finished cell is written to a
  JSON document (atomic tmp + ``os.replace``); re-running against the same
  store resumes an interrupted grid, skipping completed cells.
* **Per-cell accounting** — runtime, LLM calls, detected/repaired counts.
* **A golden corpus** — :func:`golden_payload` extracts only the
  deterministic fields (scores, counts, notes — never wall-clock), which
  ``GOLDEN_experiments.json`` pins and tier-1 tests assert exactly.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core import CleaningConfig
from repro.datasets import dataset_names, load_dataset
from repro.evaluation.conventions import EvaluationConventions
from repro.evaluation.runner import (
    CocoonSystem,
    ExperimentRunner,
    SystemResult,
    default_systems,
)
from repro.experiments.table2 import census_of
from repro.llm.base import LLMClient
from repro.llm.cache import PromptCacheStore, cached_client
from repro.llm.simulated import SimulatedSemanticLLM
from repro.service.jobs import JobStatus
from repro.service.pool import WorkerPool

SCHEMA_VERSION = 1

#: The three quantitative artifacts the grid can regenerate.
TABLE_NAMES = ("table1", "table2", "table3")
#: Tables 2 and 3 only evaluate the two deeply-profiled benchmarks.
TABLE23_DATASETS = ("hospital", "movies")
#: The system name used for Table 2 census cells (no cleaning system runs).
CENSUS_SYSTEM = "census"

#: Paper-scale row counts, used only to schedule long jobs first.
_COST_HINT = {"hospital": 1000, "flights": 2400, "beers": 2410, "rayyan": 1000, "movies": 7390}


class UnknownNameError(ValueError):
    """A dataset / system / table name that the grid does not recognise."""

    def __init__(self, kind: str, unknown: Sequence[str], valid: Sequence[str]):
        self.kind = kind
        self.unknown = list(unknown)
        self.valid = list(valid)
        names = ", ".join(repr(n) for n in self.unknown)
        choices = ", ".join(self.valid)
        super().__init__(f"unknown {kind}{'s' if len(self.unknown) != 1 else ''} {names}; valid choices: {choices}")


def validate_names(kind: str, names: Optional[Sequence[str]], valid: Sequence[str]) -> List[str]:
    """Return ``names`` (or all of ``valid`` when None), rejecting unknowns.

    Unknown names raise :class:`UnknownNameError` instead of being silently
    filtered out — a misspelled ``--datasets hospitals`` must fail loudly,
    not quietly shrink the grid.
    """
    if names is None:
        return list(valid)
    unknown = [name for name in names if name not in valid]
    if unknown:
        raise UnknownNameError(kind, unknown, valid)
    return list(names)


# -- grid ------------------------------------------------------------------------


def make_cell_id(table: str, dataset: str, system: str, seed: int, scale: float) -> str:
    """The store/golden key of one cell; resume lookups depend on its stability."""
    return f"{table}/{dataset}/{system}/seed={seed}/scale={scale:g}"


@dataclass(frozen=True)
class CellSpec:
    """One cell of the experiment grid."""

    table: str
    dataset: str
    system: str
    seed: int
    scale: float

    @property
    def cell_id(self) -> str:
        return make_cell_id(self.table, self.dataset, self.system, self.seed, self.scale)

    @property
    def repair_key(self) -> str:
        """Cells with equal repair keys run the same system on the same data."""
        return f"{self.dataset}/{self.system}/seed={self.seed}/scale={self.scale:g}"


def build_grid(
    tables: Optional[Sequence[str]] = None,
    datasets: Optional[Sequence[str]] = None,
    systems: Optional[Sequence[str]] = None,
    seed: int = 0,
    scale: float = 1.0,
) -> List[CellSpec]:
    """Expand (tables × datasets × systems) into cell specs, in grid order.

    By default Tables 2 and 3 cover their paper datasets (hospital, movies);
    an explicit ``datasets`` list is honoured verbatim for every table — a
    requested benchmark is never silently dropped.  Name validation is strict.
    """
    table_list = validate_names("table", tables, TABLE_NAMES)
    dataset_list = validate_names("dataset", datasets, dataset_names())
    system_list = validate_names("system", systems, list(default_systems()))
    cells: List[CellSpec] = []
    for table in table_list:
        if table == "table1" or datasets is not None:
            table_datasets = dataset_list
        else:
            table_datasets = list(TABLE23_DATASETS)
        for dataset in table_datasets:
            if table == "table2":
                cells.append(CellSpec(table, dataset, CENSUS_SYSTEM, seed, scale))
            else:
                for system in system_list:
                    cells.append(CellSpec(table, dataset, system, seed, scale))
    return cells


# -- results ---------------------------------------------------------------------


@dataclass
class CellResult:
    """One finished cell: a deterministic payload plus timing.

    ``deterministic`` is a pure function of the cell spec (scores, counts,
    notes for system cells; the error census for table2 cells) and is what
    the golden corpus pins.  ``timing`` holds wall-clock measurements and is
    never compared.
    """

    table: str
    dataset: str
    system: str
    seed: int
    scale: float
    deterministic: Dict[str, object]
    timing: Dict[str, float] = field(default_factory=dict)
    #: True when the cell was loaded from the results store (resume path).
    resumed: bool = False

    @property
    def cell_id(self) -> str:
        return make_cell_id(self.table, self.dataset, self.system, self.seed, self.scale)

    def to_dict(self) -> Dict[str, object]:
        return {
            "table": self.table,
            "dataset": self.dataset,
            "system": self.system,
            "seed": self.seed,
            "scale": self.scale,
            "deterministic": dict(self.deterministic),
            "timing": dict(self.timing),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object], resumed: bool = False) -> "CellResult":
        return cls(
            table=str(data["table"]),
            dataset=str(data["dataset"]),
            system=str(data["system"]),
            seed=int(data["seed"]),
            scale=float(data["scale"]),
            deterministic=dict(data.get("deterministic", {})),
            timing=dict(data.get("timing", {})),
            resumed=resumed,
        )

    def as_system_result(self) -> Optional[SystemResult]:
        """Rebuild the :class:`SystemResult` (None for census cells)."""
        if self.system == CENSUS_SYSTEM:
            return None
        record = dict(self.deterministic)
        record.setdefault("system", self.system)
        record.setdefault("dataset", self.dataset)
        record["runtime_seconds"] = self.timing.get("runtime_seconds", 0.0)
        return SystemResult.from_dict(record)


def _deterministic_record(result: SystemResult) -> Dict[str, object]:
    record = result.to_dict()
    del record["runtime_seconds"]
    return record


class ResultsStore:
    """Incremental, thread-safe JSON store of finished cells.

    Every :meth:`record` call rewrites the document atomically (temp file +
    ``os.replace``), so an interrupted grid always leaves a loadable store
    behind; re-running with the same path resumes, skipping recorded cells.
    A ``path`` of None keeps the store in memory (no persistence).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        # Serialises writers; the document snapshot is taken inside it so a
        # later flush can never be overwritten by an earlier, staler one
        # (same pattern as PromptCacheStore._persist).
        self._write_lock = threading.Lock()
        self._cells: Dict[str, Dict[str, object]] = {}
        self._config: Dict[str, object] = {}
        if self.path is not None and self.path.exists():
            document = json.loads(self.path.read_text(encoding="utf-8"))
            self._cells = dict(document.get("cells", {}))
            self._config = dict(document.get("config", {}))

    def configure(self, config: Dict[str, object]) -> None:
        with self._lock:
            self._config = dict(config)

    def get(self, cell_id: str) -> Optional[Dict[str, object]]:
        with self._lock:
            return self._cells.get(cell_id)

    def completed_ids(self) -> List[str]:
        with self._lock:
            return sorted(self._cells)

    def record(self, result: CellResult) -> None:
        with self._lock:
            self._cells[result.cell_id] = result.to_dict()
        self._persist()

    def to_document(self) -> Dict[str, object]:
        with self._lock:
            return self._document_locked()

    def _document_locked(self) -> Dict[str, object]:
        return {
            "schema_version": SCHEMA_VERSION,
            "config": dict(self._config),
            "cells": {cell_id: self._cells[cell_id] for cell_id in sorted(self._cells)},
        }

    def _persist(self) -> None:
        if self.path is None:
            return
        with self._write_lock:
            with self._lock:
                document = self._document_locked()
            directory = self.path.parent
            directory.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=f".{self.path.name}.", suffix=".tmp", dir=str(directory)
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    json.dump(document, handle, indent=1, sort_keys=True)
                    handle.write("\n")
                os.replace(tmp_name, self.path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)


# -- jobs ------------------------------------------------------------------------


class MatrixJobError(RuntimeError):
    """One or more matrix jobs failed; the message lists every failure."""


@dataclass(eq=False)
class MatrixJob:
    """One pool job: a repair unit covering every cell that shares it.

    For system cells the job repairs once and scores once per covered table;
    for a table2 cell it computes the error census.  Lifecycle mirrors
    :class:`~repro.service.jobs.CleaningJob`, which is what lets it ride the
    same :class:`~repro.service.pool.WorkerPool`.
    """

    cells: List[CellSpec]
    priority: int = 0
    status: JobStatus = JobStatus.PENDING
    results: List[CellResult] = field(default_factory=list)
    error: Optional[str] = None

    def __post_init__(self) -> None:
        self._done = threading.Event()
        self._lock = threading.Lock()

    def mark_running(self) -> bool:
        with self._lock:
            if self.status is not JobStatus.PENDING:
                return False
            self.status = JobStatus.RUNNING
        return True

    def finish(self, results: List[CellResult], error: Optional[str] = None) -> None:
        with self._lock:
            self.status = JobStatus.FAILED if error else JobStatus.SUCCEEDED
        self.results = results
        self.error = error
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        return self._done.wait(timeout)


# -- the engine ------------------------------------------------------------------


@dataclass
class MatrixStats:
    """Accounting for one grid run."""

    cells_total: int = 0
    cells_run: int = 0
    cells_resumed: int = 0
    repair_groups: int = 0
    workers: int = 1
    wall_seconds: float = 0.0
    #: Sum of per-job runtimes — what a strictly serial execution would cost.
    job_seconds_total: float = 0.0
    llm_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def speedup_over_serial(self) -> float:
        return self.job_seconds_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "cells_total": self.cells_total,
            "cells_run": self.cells_run,
            "cells_resumed": self.cells_resumed,
            "repair_groups": self.repair_groups,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "job_seconds_total": self.job_seconds_total,
            "speedup_over_serial": self.speedup_over_serial,
            "llm_calls": self.llm_calls,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }


@dataclass
class MatrixRun:
    """Everything one grid run produced, in grid order."""

    cells: List[CellResult]
    stats: MatrixStats
    config: Dict[str, object]

    def results_for(self, table: str) -> List[SystemResult]:
        """The cells of one table as :class:`SystemResult` rows (grid order)."""
        results = []
        for cell in self.cells:
            if cell.table == table:
                result = cell.as_system_result()
                if result is not None:
                    results.append(result)
        return results

    def table2_rows(self) -> Dict[str, Dict[str, object]]:
        """Census cells in the shape :func:`repro.experiments.table2.format_table2` takes."""
        rows: Dict[str, Dict[str, object]] = {}
        for cell in self.cells:
            if cell.table == "table2":
                rows[cell.dataset] = dict(cell.deterministic)
        return rows

    def golden_payload(self) -> Dict[str, object]:
        return golden_payload(self.cells, self.config)


class ExperimentMatrix:
    """Runs the (table × dataset × system) grid on a worker pool.

    ``workers=1`` is the sequential reference; any worker count produces
    byte-identical deterministic fields (see the module docstring for why).
    """

    def __init__(
        self,
        tables: Optional[Sequence[str]] = None,
        datasets: Optional[Sequence[str]] = None,
        systems: Optional[Sequence[str]] = None,
        seed: int = 0,
        scale: float = 1.0,
        workers: int = 1,
        llm_latency: float = 0.0,
        cache_store: Optional[PromptCacheStore] = None,
        cache_path: Optional[Union[str, Path]] = None,
        store: Optional[ResultsStore] = None,
        results_path: Optional[Union[str, Path]] = None,
        resume: bool = True,
        config: Optional[CleaningConfig] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.tables = validate_names("table", tables, TABLE_NAMES)
        self.datasets = validate_names("dataset", datasets, dataset_names())
        self.systems = validate_names("system", systems, list(default_systems()))
        # The requested (pre-default) names; None means "library default",
        # which build_grid treats differently from an explicit list (tables
        # 2/3 default to the paper pair but honour explicit datasets), so the
        # stored config must preserve the distinction to round-trip.
        self._requested_tables = None if tables is None else list(tables)
        self._requested_datasets = None if datasets is None else list(datasets)
        self._requested_systems = None if systems is None else list(systems)
        self.seed = seed
        self.scale = scale
        self.workers = workers
        self.llm_latency = llm_latency
        self.resume = resume
        self.cleaning_config = config
        self.cache = cache_store if cache_store is not None else PromptCacheStore(cache_path, flush_every=64)
        self.store = store if store is not None else ResultsStore(results_path)
        self.grid = build_grid(
            self._requested_tables, self._requested_datasets, self._requested_systems,
            seed=seed, scale=scale,
        )

    # -- public API -------------------------------------------------------------
    def config_dict(self) -> Dict[str, object]:
        """The run's identity: requested names (None = library default) + seed/scale.

        Feeding this back into :class:`ExperimentMatrix` reproduces the same
        grid, which is how golden-corpus checks re-run the recorded config.
        """
        return {
            "tables": self._requested_tables,
            "datasets": self._requested_datasets,
            "systems": self._requested_systems,
            "seed": self.seed,
            "scale": self.scale,
        }

    def run(self) -> MatrixRun:
        """Execute the grid (resuming from the store) and collect the cells."""
        started = time.perf_counter()
        self.store.configure(self.config_dict())

        resumed: Dict[str, CellResult] = {}
        pending: List[CellSpec] = []
        for spec in self.grid:
            recorded = self.store.get(spec.cell_id) if self.resume else None
            if recorded is not None:
                resumed[spec.cell_id] = CellResult.from_dict(recorded, resumed=True)
            else:
                pending.append(spec)

        jobs = self._build_jobs(pending)
        job_results: Dict[str, CellResult] = {}
        failures: List[str] = []
        if jobs:
            pool = WorkerPool(min(self.workers, len(jobs)), execute=self._execute, thread_name="repro-matrix")
            with pool:
                for job in jobs:
                    pool.submit(job)
                for job in jobs:
                    job.wait()
            for job in jobs:
                if job.error:
                    failures.append(job.error)
                for result in job.results:
                    job_results[result.cell_id] = result
        self.cache.flush()

        if failures:
            raise MatrixJobError(
                f"{len(failures)} matrix job(s) failed:\n" + "\n".join(failures)
            )

        cells: List[CellResult] = []
        for spec in self.grid:
            if spec.cell_id in resumed:
                cells.append(resumed[spec.cell_id])
            else:
                cells.append(job_results[spec.cell_id])

        stats = MatrixStats(
            cells_total=len(self.grid),
            cells_run=len(job_results),
            cells_resumed=len(resumed),
            repair_groups=len(jobs),
            workers=self.workers,
            wall_seconds=time.perf_counter() - started,
            job_seconds_total=sum(
                result.timing.get("job_seconds", 0.0) for result in job_results.values()
            ),
            # One repair per job: cells sharing it carry the same llm_calls,
            # so count each job once rather than summing over cells.
            llm_calls=sum(
                int(job.results[0].deterministic.get("llm_calls", 0))
                for job in jobs
                if job.results
            ),
        )
        cache_stats = self.cache.stats()
        stats.cache_hits = int(cache_stats["hits"])
        stats.cache_misses = int(cache_stats["misses"])
        return MatrixRun(cells=cells, stats=stats, config=self.config_dict())

    # -- job construction --------------------------------------------------------
    def _build_jobs(self, pending: List[CellSpec]) -> List[MatrixJob]:
        """Group pending cells by repair unit; longest expected jobs first."""
        groups: Dict[str, List[CellSpec]] = {}
        order: List[str] = []
        for spec in pending:
            key = spec.repair_key
            if key not in groups:
                groups[key] = []
                order.append(key)
            groups[key].append(spec)
        jobs = []
        for key in order:
            cells = groups[key]
            first = cells[0]
            cost = _COST_HINT.get(first.dataset, 1000) * len(cells)
            if first.system == "Cocoon":
                cost *= 4  # LLM-bound cells are the long poles of the grid
            jobs.append(MatrixJob(cells=cells, priority=-cost))
        return jobs

    # -- execution ---------------------------------------------------------------
    def _execute(self, job: MatrixJob) -> None:
        started = time.perf_counter()
        try:
            results = self._run_cells(job.cells)
            job_seconds = time.perf_counter() - started
            for result in results:
                result.timing["job_seconds"] = job_seconds / len(results)
                self.store.record(result)
        except Exception:
            job.finish([], error=f"cells {[c.cell_id for c in job.cells]}:\n{traceback.format_exc()}")
            return
        job.finish(results)

    def _run_cells(self, cells: List[CellSpec]) -> List[CellResult]:
        first = cells[0]
        dataset = load_dataset(first.dataset, seed=first.seed, scale=first.scale)
        if first.system == CENSUS_SYSTEM:
            started = time.perf_counter()
            deterministic: Dict[str, object] = {"size": dataset.shape_label}
            deterministic.update(census_of(dataset))
            return [
                CellResult(
                    table=first.table,
                    dataset=first.dataset,
                    system=first.system,
                    seed=first.seed,
                    scale=first.scale,
                    deterministic=deterministic,
                    timing={"runtime_seconds": time.perf_counter() - started},
                )
            ]

        runner = ExperimentRunner(seed=first.seed, systems=self._system_factories(first))
        outcome = runner.run_repair(first.system, dataset)
        results = []
        for spec in cells:
            if spec.table == "table3":
                conventions = EvaluationConventions.paper_extended()
                clean_override = dataset.extended_clean if dataset.extended_clean is not None else dataset.clean
            else:
                conventions = EvaluationConventions.paper_main()
                clean_override = None
            scored = runner.score_repair(outcome, dataset, clean_override=clean_override, conventions=conventions)
            results.append(
                CellResult(
                    table=spec.table,
                    dataset=spec.dataset,
                    system=spec.system,
                    seed=spec.seed,
                    scale=spec.scale,
                    deterministic=_deterministic_record(scored),
                    timing={"runtime_seconds": outcome.runtime_seconds},
                )
            )
        return results

    def _system_factories(self, spec: CellSpec) -> Dict[str, Callable[[], object]]:
        """The default systems, with Cocoon wired to the shared, namespaced cache."""
        factories = default_systems()
        if spec.system == "Cocoon":
            namespace = spec.repair_key
            factories["Cocoon"] = lambda: CocoonSystem(
                llm=self._cocoon_llm(namespace), config=self.cleaning_config
            )
        return factories

    def _cocoon_llm(self, namespace: str) -> LLMClient:
        inner = SimulatedSemanticLLM(latency_seconds=self.llm_latency)
        return cached_client(inner, self.cache, namespace=namespace)


# -- golden corpus ----------------------------------------------------------------


def golden_payload(cells: Sequence[CellResult], config: Dict[str, object]) -> Dict[str, object]:
    """The regression-gated view of a run: deterministic fields only."""
    return {
        "schema_version": SCHEMA_VERSION,
        "config": dict(config),
        "cells": {cell.cell_id: dict(cell.deterministic) for cell in cells},
    }


def canonical_json(payload: Dict[str, object]) -> str:
    """The byte representation golden comparisons are defined over."""
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def write_golden(path: Union[str, Path], run: MatrixRun) -> None:
    Path(path).write_text(canonical_json(run.golden_payload()), encoding="utf-8")


def load_golden(path: Union[str, Path]) -> Dict[str, object]:
    return json.loads(Path(path).read_text(encoding="utf-8"))


def diff_golden(expected: Dict[str, object], actual: Dict[str, object]) -> List[str]:
    """Human-readable differences between two golden payloads (empty = equal)."""
    differences: List[str] = []
    if expected.get("schema_version") != actual.get("schema_version"):
        differences.append(
            f"schema_version: expected {expected.get('schema_version')!r}, got {actual.get('schema_version')!r}"
        )
    if expected.get("config") != actual.get("config"):
        differences.append(f"config: expected {expected.get('config')!r}, got {actual.get('config')!r}")
    expected_cells: Dict[str, Dict[str, object]] = expected.get("cells", {})
    actual_cells: Dict[str, Dict[str, object]] = actual.get("cells", {})
    for cell_id in sorted(set(expected_cells) | set(actual_cells)):
        if cell_id not in actual_cells:
            differences.append(f"{cell_id}: missing from the run")
            continue
        if cell_id not in expected_cells:
            differences.append(f"{cell_id}: not in the golden corpus")
            continue
        before, after = expected_cells[cell_id], actual_cells[cell_id]
        if before == after:
            continue
        for key in sorted(set(before) | set(after)):
            if before.get(key) != after.get(key):
                differences.append(
                    f"{cell_id}: {key} expected {before.get(key)!r}, got {after.get(key)!r}"
                )
    return differences
