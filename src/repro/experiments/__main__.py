"""Command-line entry point: ``python -m repro.experiments <artifact>``.

Artifacts run through the parallel :class:`~repro.experiments.matrix.ExperimentMatrix`
engine (``--workers 1`` is the sequential reference and the default; any
worker count yields byte-identical deterministic fields).  ``--out`` keeps an
incremental results JSON that makes interrupted grids resumable, and
``--golden`` regression-checks the run against the committed
``GOLDEN_experiments.json`` corpus (``--golden --refresh`` rewrites it — the
sanctioned workflow documented in ``docs/benchmarks.md``).

Exit codes: 0 success, 1 golden mismatch or failed cells, 2 bad arguments
(including unknown ``--datasets`` / ``--systems`` names — they are rejected
with the valid choices listed, never silently dropped).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import ascii_bar_chart, f1_series
from repro.experiments.matrix import (
    ExperimentMatrix,
    MatrixJobError,
    MatrixRun,
    UnknownNameError,
    canonical_json,
    diff_golden,
    load_golden,
    write_golden,
)
from repro.experiments.table1 import format_table1
from repro.experiments.table2 import format_table2
from repro.experiments.table3 import format_table3

#: Which grid tables each CLI artifact needs.
_ARTIFACT_TABLES = {
    "table1": ["table1"],
    "table2": ["table2"],
    "table3": ["table3"],
    "figure-f1": ["table1"],
    "matrix": ["table1", "table2", "table3"],
    "all": ["table1", "table2", "table3"],
}

DEFAULT_GOLDEN_PATH = "GOLDEN_experiments.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables on the synthetic benchmarks.",
    )
    parser.add_argument("artifact", choices=sorted(_ARTIFACT_TABLES),
                        help="which artifact to regenerate ('matrix' runs the full grid)")
    parser.add_argument("--scale", type=float, default=None,
                        help="dataset scale factor (default 1.0 = paper-scale row counts)")
    parser.add_argument("--seed", type=int, default=None,
                        help="random seed for dataset generation (default 0)")
    parser.add_argument("--datasets", nargs="*", default=None, help="restrict to specific benchmarks")
    parser.add_argument("--systems", nargs="*", default=None, help="restrict to specific systems")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker threads for the experiment grid (1 = sequential)")
    parser.add_argument("--llm-latency", type=float, default=0.0,
                        help="simulated per-LLM-call latency in seconds (models the hosted-API regime)")
    parser.add_argument("--out", default=None, metavar="PATH",
                        help="incremental results JSON; an existing file resumes the grid")
    parser.add_argument("--no-resume", action="store_true",
                        help="with --out: recompute every cell even if already recorded")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="persist the shared prompt cache at PATH (reused across runs)")
    parser.add_argument("--golden", action="store_true",
                        help="compare the run against the committed golden corpus (exit 1 on drift)")
    parser.add_argument("--refresh", action="store_true",
                        help="with --golden: rewrite the golden corpus from this run")
    parser.add_argument("--golden-path", default=DEFAULT_GOLDEN_PATH, metavar="PATH",
                        help=f"golden corpus location (default: {DEFAULT_GOLDEN_PATH})")
    return parser


def _print_artifacts(artifact: str, run: MatrixRun) -> None:
    if artifact in ("table1", "all", "matrix"):
        print(format_table1(run.results_for("table1")))
        print()
    if artifact in ("figure-f1", "all"):
        print(ascii_bar_chart(f1_series(run.results_for("table1"))))
        print()
    if artifact in ("table2", "all", "matrix"):
        print(format_table2(run.table2_rows()))
        print()
    if artifact in ("table3", "all", "matrix"):
        print(format_table3(run.results_for("table3")))
        print()
    if artifact == "matrix":
        stats = run.stats
        print(
            f"matrix: {stats.cells_total} cells ({stats.cells_run} run, {stats.cells_resumed} resumed) "
            f"in {stats.repair_groups} jobs on {stats.workers} worker(s); "
            f"wall {stats.wall_seconds:.2f}s vs serial {stats.job_seconds_total:.2f}s "
            f"({stats.speedup_over_serial:.2f}x); {stats.llm_calls} LLM calls, "
            f"cache {stats.cache_hits} hits / {stats.cache_misses} misses"
        )


def main(argv=None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.refresh and not args.golden:
        parser.error("--refresh only makes sense together with --golden")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")

    tables = _ARTIFACT_TABLES[args.artifact]
    seed = args.seed if args.seed is not None else 0
    scale = args.scale if args.scale is not None else 1.0
    datasets, systems = args.datasets, args.systems
    if args.golden and not args.refresh:
        # Regression mode runs exactly the grid the corpus was recorded at;
        # explicit restrictions would silently check something else, so they
        # are rejected rather than ignored.
        overridden = [
            flag for flag, value in (
                ("--scale", args.scale), ("--seed", args.seed),
                ("--datasets", args.datasets), ("--systems", args.systems),
            ) if value is not None
        ]
        if overridden:
            parser.error(
                f"{', '.join(overridden)} cannot be combined with a --golden check: "
                "the corpus pins its own config (use --golden --refresh to re-pin)"
            )
        try:
            golden = load_golden(args.golden_path)
        except FileNotFoundError:
            print(f"golden corpus not found at {args.golden_path!r}; "
                  f"create it with --golden --refresh", file=sys.stderr)
            return 2
        config = golden.get("config", {})
        tables = config.get("tables", tables)
        datasets = config.get("datasets")
        systems = config.get("systems")
        seed = config.get("seed", seed)
        scale = config.get("scale", scale)

    try:
        matrix = ExperimentMatrix(
            tables=tables,
            datasets=datasets,
            systems=systems,
            seed=seed,
            scale=scale,
            workers=args.workers,
            llm_latency=args.llm_latency,
            cache_path=args.cache,
            results_path=args.out,
            # A golden run is a statement about the *current* code: never let
            # it satisfy cells from a stale --out store written by old code.
            resume=not args.no_resume and not args.golden,
        )
    except UnknownNameError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    try:
        run = matrix.run()
    except MatrixJobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if args.golden and args.refresh:
        write_golden(args.golden_path, run)
        print(f"golden corpus refreshed: {args.golden_path} "
              f"({len(run.cells)} cells at seed={seed}, scale={scale:g})")
        return 0
    if args.golden:
        differences = diff_golden(golden, run.golden_payload())
        if differences:
            print(f"golden corpus drift detected ({len(differences)} difference(s)):")
            for line in differences:
                print(f"  {line}")
            return 1
        print(f"golden corpus check passed: {len(run.cells)} cells match {args.golden_path}")
        if canonical_json(run.golden_payload()) != canonical_json(golden):
            # Belt and braces: the structured diff missed a byte-level change.
            print("warning: payloads differ at the byte level despite matching fields", file=sys.stderr)
            return 1
        return 0

    _print_artifacts(args.artifact, run)
    return 0


if __name__ == "__main__":
    sys.exit(main())
