"""Command-line entry point: ``python -m repro.experiments <artifact>``."""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import ascii_bar_chart, f1_series
from repro.experiments.table1 import format_table1, run_table1
from repro.experiments.table2 import format_table2, run_table2
from repro.experiments.table3 import format_table3, run_table3


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's evaluation tables on the synthetic benchmarks.",
    )
    parser.add_argument("artifact", choices=["table1", "table2", "table3", "figure-f1", "all"],
                        help="which artifact to regenerate")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="dataset scale factor (1.0 = paper-scale row counts)")
    parser.add_argument("--seed", type=int, default=0, help="random seed for dataset generation")
    parser.add_argument("--datasets", nargs="*", default=None, help="restrict to specific benchmarks")
    parser.add_argument("--systems", nargs="*", default=None, help="restrict to specific systems")
    args = parser.parse_args(argv)

    if args.artifact in ("table1", "all", "figure-f1"):
        results = run_table1(scale=args.scale, seed=args.seed, datasets=args.datasets, systems=args.systems)
        if args.artifact in ("table1", "all"):
            print(format_table1(results))
            print()
        if args.artifact in ("figure-f1", "all"):
            print(ascii_bar_chart(f1_series(results)))
            print()
    if args.artifact in ("table2", "all"):
        print(format_table2(run_table2(scale=args.scale, seed=args.seed, datasets=args.datasets)))
        print()
    if args.artifact in ("table3", "all"):
        results = run_table3(scale=args.scale, seed=args.seed, datasets=args.datasets, systems=args.systems)
        print(format_table3(results))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
