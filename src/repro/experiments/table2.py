"""Table 2: distribution of error types across benchmarks (Hospital, Movies)."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets import load_dataset
from repro.datasets.base import BenchmarkDataset, ErrorType

#: Paper-reported census for reference (dataset → error type → count).
PAPER_TABLE2: Dict[str, Dict[str, int]] = {
    "hospital": {"size": "1000 x 19", "typo": 213, "fd": 331, "column_type": 3000, "dmv": 227, "misplacement": 0},
    "movies": {"size": "7390 x 17", "typo": 184, "fd": 0, "column_type": 14433, "dmv": 131, "misplacement": 938},
}

_COLUMN_ORDER = [ErrorType.TYPO, ErrorType.FD_VIOLATION, ErrorType.COLUMN_TYPE,
                 ErrorType.INCONSISTENCY, ErrorType.DMV, ErrorType.MISPLACEMENT]


def run_table2(scale: float = 1.0, seed: int = 0, datasets: Optional[List[str]] = None) -> Dict[str, Dict[str, object]]:
    """Compute the error census for the Table 2 datasets (Hospital and Movies)."""
    names = datasets if datasets is not None else ["hospital", "movies"]
    rows: Dict[str, Dict[str, object]] = {}
    for name in names:
        dataset = load_dataset(name, seed=seed, scale=scale)
        census = dataset.error_census()
        rows[name] = {
            "size": dataset.shape_label,
            **{etype.value: census.get(etype, 0) for etype in _COLUMN_ORDER},
        }
    return rows


def census_of(dataset: BenchmarkDataset) -> Dict[str, int]:
    """Census of an already-built dataset keyed by error-type name."""
    census = dataset.error_census()
    return {etype.value: census.get(etype, 0) for etype in _COLUMN_ORDER}


def format_table2(rows: Dict[str, Dict[str, object]], include_paper: bool = True) -> str:
    headers = ["Dataset", "Size", "Typo", "FD", "ColumnType", "Inconsistency", "DMV", "Misplacement"]
    lines = ["Table 2: distribution of error types across benchmarks",
             "".join(h.ljust(14) for h in headers)]
    for name, row in rows.items():
        lines.append(
            name.ljust(14) + str(row["size"]).ljust(14)
            + "".join(str(row.get(etype.value, 0)).ljust(14) for etype in _COLUMN_ORDER)
        )
    if include_paper:
        lines.append("")
        lines.append("Paper-reported counts (original benchmarks):")
        for name, row in PAPER_TABLE2.items():
            lines.append(
                name.ljust(14) + str(row["size"]).ljust(14)
                + "".join(str(row.get(key, 0)).ljust(14) for key in ("typo", "fd", "column_type", "", "dmv", "misplacement"))
            )
    return "\n".join(lines)
