"""Table 1: data cleaning performance across the five benchmarks."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.datasets import load_dataset, dataset_names
from repro.evaluation.runner import ExperimentRunner, SystemResult
from repro.experiments.matrix import validate_names

#: The paper's reported numbers, used by EXPERIMENTS.md and the shape checks.
PAPER_TABLE1: Dict[str, Dict[str, tuple]] = {
    "HoloClean":  {"hospital": (1.00, 0.46, 0.63), "flights": (0.73, 0.34, 0.47), "beers": (0.05, 0.04, 0.04),
                   "rayyan": (0.53, 0.67, 0.59), "movies": (0.00, 0.00, 0.00)},
    "Raha+Baran": {"hospital": (0.91, 0.60, 0.72), "flights": (0.84, 0.61, 0.70), "beers": (0.97, 0.96, 0.96),
                   "rayyan": (0.83, 0.35, 0.50), "movies": (0.85, 0.75, 0.80)},
    "CleanAgent": {"hospital": (0.00, 0.00, 0.00), "flights": (0.00, 0.00, 0.00), "beers": (0.00, 0.00, 0.00),
                   "rayyan": (0.00, 0.00, 0.00), "movies": (0.00, 0.00, 0.00)},
    "RetClean":   {"hospital": (0.00, 0.00, 0.00), "flights": (0.00, 0.00, 0.00), "beers": (0.00, 0.00, 0.00),
                   "rayyan": (0.52, 0.48, 0.50), "movies": (0.00, 0.00, 0.00)},
    "Cocoon":     {"hospital": (0.87, 0.93, 0.90), "flights": (0.91, 0.42, 0.57), "beers": (0.99, 0.96, 0.97),
                   "rayyan": (0.88, 0.84, 0.86), "movies": (0.91, 0.83, 0.87)},
}

SYSTEM_ORDER = ["HoloClean", "Raha+Baran", "CleanAgent", "RetClean", "Cocoon"]


def run_table1(
    scale: float = 1.0,
    seed: int = 0,
    datasets: Optional[List[str]] = None,
    systems: Optional[List[str]] = None,
) -> List[SystemResult]:
    """Run the Table 1 grid and return one result per (system, dataset)."""
    names = datasets if datasets is not None else dataset_names()
    runner = ExperimentRunner(seed=seed)
    if systems is not None:
        validate_names("system", systems, list(runner.system_factories))
        runner.system_factories = {
            name: factory for name, factory in runner.system_factories.items() if name in systems
        }
    results: List[SystemResult] = []
    for name in names:
        dataset = load_dataset(name, seed=seed, scale=scale)
        for system_name in runner.system_factories:
            results.append(runner.run_system(system_name, dataset))
    return results


def format_table1(results: List[SystemResult], include_paper: bool = True) -> str:
    """Render results in the layout of the paper's Table 1."""
    datasets = []
    for result in results:
        if result.dataset not in datasets:
            datasets.append(result.dataset)
    by_key = {(r.system, r.dataset): r for r in results}
    header = "System".ljust(12) + "".join(f"{d:^21}" for d in datasets)
    subheader = " " * 12 + "".join(f"{'P':^7}{'R':^7}{'F':^7}" for _ in datasets)
    lines = ["Table 1: data cleaning performance (precision, recall, F1)", header, subheader, "-" * len(subheader)]
    systems = [s for s in SYSTEM_ORDER if any(r.system == s for r in results)]
    for system in systems:
        row = system.ljust(12)
        for dataset in datasets:
            result = by_key.get((system, dataset))
            if result is None:
                row += " " * 21
                continue
            p, r, f = result.scores.as_row()
            star = "*" if result.used_sample else " "
            row += f"{p:6.2f}{star}{r:6.2f} {f:6.2f} "
        lines.append(row)
    if include_paper:
        lines.append("")
        lines.append("Paper-reported F1 for comparison:")
        for system in systems:
            paper = PAPER_TABLE1.get(system, {})
            row = system.ljust(12)
            for dataset in datasets:
                values = paper.get(dataset)
                row += f"{'':7}{'':7}{values[2]:6.2f} " if values else " " * 21
            lines.append(row)
    lines.append("* evaluated on the first 1000 rows (memory / file-size limit), as in the paper")
    return "\n".join(lines)
