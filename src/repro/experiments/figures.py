"""Figure-style outputs derived from the experiment results.

The paper's figures are architectural (Figure 1), prompt listings
(Figures 2–3) and UI screenshots (Figures 4–5); the quantitative results are
the tables.  For completeness the F1 comparison across systems is exposed as
a plot-ready series plus an ASCII bar chart, and the workflow decomposition
of Figure 1 can be rendered as a textual trace.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.result import CleaningResult
from repro.core.workflow import ISSUE_ORDER
from repro.evaluation.runner import SystemResult


def f1_series(results: List[SystemResult]) -> Dict[str, Dict[str, float]]:
    """``system → dataset → F1`` series, ready for plotting."""
    series: Dict[str, Dict[str, float]] = {}
    for result in results:
        series.setdefault(result.system, {})[result.dataset] = result.scores.f1
    return series


def ascii_bar_chart(series: Dict[str, Dict[str, float]], width: int = 40) -> str:
    """Render the F1 series as an ASCII bar chart grouped by dataset."""
    datasets: List[str] = []
    for per_dataset in series.values():
        for dataset in per_dataset:
            if dataset not in datasets:
                datasets.append(dataset)
    lines: List[str] = ["F1 comparison across systems"]
    for dataset in datasets:
        lines.append(f"\n{dataset}")
        for system, per_dataset in series.items():
            value = per_dataset.get(dataset)
            if value is None:
                continue
            bar = "#" * int(round(value * width))
            lines.append(f"  {system:<12}|{bar:<{width}}| {value:.2f}")
    return "\n".join(lines)


def workflow_trace(result: CleaningResult) -> str:
    """Figure 1 as a textual trace: issue types × cleaning steps actually executed."""
    lines = ["Cocoon workflow decomposition (Figure 1)"]
    by_issue: Dict[str, List] = {}
    for operator_result in result.operator_results:
        by_issue.setdefault(operator_result.issue_type, []).append(operator_result)
    for issue in ISSUE_ORDER:
        runs = by_issue.get(issue, [])
        if not runs:
            continue
        applied = sum(1 for r in runs if r.applied)
        detected = sum(1 for r in runs if r.finding is not None and r.finding.detected)
        repairs = sum(len(r.repairs) for r in runs)
        lines.append(
            f"  {issue:<26} targets={len(runs):<4} statistical+semantic detections={detected:<4} "
            f"cleanings applied={applied:<4} cell repairs={repairs}"
        )
    return "\n".join(lines)
