"""Partitioned cleaning for large tables.

Column-level issues (typos, pattern outliers, disguised missing values,
column types, numeric outliers) are judged per column and can therefore run
on a horizontal partition of the table; table-level issues (functional
dependencies, duplicate rows, key uniqueness) reason across rows and must
see the whole table.  ``clean_chunked`` exploits that split: it slices the
rows into chunks, cleans column-level issues per chunk in parallel, merges
the cleaned chunks, and runs the table-level operators once on the merged
result.

Chunk boundaries never lose row identity: the hidden row-id column is
attached globally *before* slicing, so repairs and removals reported by any
chunk or by the merged pass refer to original row positions.

If anything goes wrong — a chunk raises, or the chunks disagree on the
cleaned schema (e.g. a type cast applied in one chunk but not another) —
the function falls back to the exact whole-table pipeline, trading speed
for the sequential semantics.

Chunked mode is an approximation, not an equivalence: column-level
detection and canonical-value choice are driven by value *frequencies in
the table the operator sees*, so a chunk whose local distribution differs
enough from the whole table can repair differently (or not at all).  With
chunks large enough to preserve the dominant value per column the output
matches whole-table mode cell for cell — the regime the tests pin — but
very small chunks weaken the statistics and can diverge.  Schema
validation cannot detect that kind of divergence; pick ``chunk_rows``
generously (hundreds of rows, not tens).
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.context import ROW_ID_COLUMN, CleaningConfig, CleaningContext
from repro.core.hil import AutoApprove, HumanInTheLoop
from repro.core.pipeline import CocoonCleaner, run_operators
from repro.core.result import CleaningResult, OperatorResult
from repro.core.workflow import COLUMN_LEVEL_ISSUES, TABLE_LEVEL_ISSUES, default_operators
from repro.dataframe.table import Table
from repro.llm.base import LLMClient
from repro.llm.cache import PromptCacheStore, cached_client
from repro.llm.simulated import SimulatedSemanticLLM
from repro.obs import current_ref as obs_current_ref
from repro.obs import span as obs_span
from repro.obs.lineage import LineageRecorder
from repro.obs.trace import SpanRef
from repro.sql.database import Database

LLMFactory = Callable[[], LLMClient]
HILFactory = Callable[[], HumanInTheLoop]


class ChunkMergeError(RuntimeError):
    """Cleaned chunks cannot be merged back into one coherent table."""


#: Below this chunk size the per-chunk value statistics stop being
#: representative of the whole table (see the module docstring: hundreds of
#: rows, not tens) and chunked output can silently diverge from whole-table
#: mode.  ``clean_chunked`` warns when asked to go smaller.
SAFE_CHUNK_ROWS_FLOOR = 100


@dataclass
class ChunkedCleaningResult(CleaningResult):
    """A :class:`CleaningResult` annotated with how the chunked run went."""

    chunk_rows: int = 0
    chunk_count: int = 1
    parallel_workers: int = 1
    fell_back: bool = False


def _chunk_bounds(num_rows: int, chunk_rows: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, end)`` row ranges of at most ``chunk_rows`` rows."""
    return [(start, min(start + chunk_rows, num_rows)) for start in range(0, num_rows, chunk_rows)]


#: What one chunk produced: cleaned table, operator results, SQL, LLM calls,
#: and the chunk's lineage recorder (merged into the job recorder afterwards).
ChunkOutput = Tuple[Table, List[OperatorResult], List[str], int, LineageRecorder]


def _clean_chunk(
    chunk_table: Table,
    chunk_name: str,
    config: CleaningConfig,
    llm: LLMClient,
    hil: HumanInTheLoop,
) -> ChunkOutput:
    """Run the column-level operators on one chunk in its own database."""
    db = Database(name=chunk_name)
    db.register(chunk_table.rename(chunk_name), replace=True)
    lineage = LineageRecorder(phase="batch")
    context = CleaningContext(db, llm, chunk_name, config=config, lineage=lineage)
    issues = [i for i in COLUMN_LEVEL_ISSUES if config.issue_enabled(i)]
    calls_before = llm.call_count
    results = run_operators(context, hil, operators=default_operators(issues))
    return (
        context.current_table(),
        results,
        list(context.sql_statements),
        llm.call_count - calls_before,
        lineage,
    )


def _validate_chunk_schemas(chunks: Sequence[Table]) -> None:
    first = chunks[0]
    names = first.column_names
    dtypes = [c.dtype for c in first.columns]
    for i, chunk in enumerate(chunks[1:], start=1):
        if chunk.column_names != names:
            raise ChunkMergeError(
                f"chunk {i} produced columns {chunk.column_names}, chunk 0 produced {names}"
            )
        if [c.dtype for c in chunk.columns] != dtypes:
            raise ChunkMergeError(
                f"chunk {i} produced column types {[str(c.dtype) for c in chunk.columns]}, "
                f"chunk 0 produced {[str(d) for d in dtypes]}"
            )


def clean_chunked(
    table: Table,
    chunk_rows: int,
    llm_factory: Optional[LLMFactory] = None,
    config: Optional[CleaningConfig] = None,
    hil_factory: Optional[HILFactory] = None,
    cache_store: Optional[PromptCacheStore] = None,
    max_workers: Optional[int] = None,
) -> ChunkedCleaningResult:
    """Clean ``table`` in row partitions of at most ``chunk_rows`` rows.

    Each chunk gets its own fresh LLM instance from ``llm_factory`` (stateful
    simulated models must not see interleaved prompts from other chunks) and
    its own :class:`~repro.sql.database.Database`; an optional shared
    ``cache_store`` deduplicates identical prompts across chunks and jobs.

    Tables that fit in a single chunk — and any chunked run that fails — use
    the whole-table pipeline (``fell_back`` marks the failure case).
    """
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    if chunk_rows < SAFE_CHUNK_ROWS_FLOOR and table.num_rows > chunk_rows:
        warnings.warn(
            f"chunk_rows={chunk_rows} is below the statistically safe floor of "
            f"{SAFE_CHUNK_ROWS_FLOOR} rows; per-chunk value statistics may not be "
            "representative and chunked output can diverge from whole-table cleaning "
            "(see repro.service.chunking module docstring)",
            UserWarning,
            stacklevel=2,
        )
    llm_factory = llm_factory or SimulatedSemanticLLM
    config = config or CleaningConfig()
    hil_factory = hil_factory or AutoApprove

    if table.num_rows == 0:
        # Zero rows means zero chunks: nothing to profile, prompt or repair.
        # Return an empty result directly instead of bouncing through the
        # whole-table pipeline fallback.
        return ChunkedCleaningResult(
            table_name=table.name,
            dirty_table=table,
            cleaned_table=table.copy(),
            operator_results=[],
            sql_script=(
                f"-- Cocoon chunked cleaning pipeline for table {table.name}\n"
                "-- The table has no rows; no cleaning steps were necessary.\n"
            ),
            llm_calls=0,
            chunk_rows=chunk_rows,
            chunk_count=0,
            parallel_workers=0,
        )

    bounds = _chunk_bounds(table.num_rows, chunk_rows)
    if len(bounds) <= 1:
        return _whole_table(
            table, chunk_rows, llm_factory, config, hil_factory, cache_store, fell_back=False
        )

    base_name = CocoonCleaner._sanitise_name(table.name or "dataset")
    working = CocoonCleaner._with_row_ids(table, base_name)
    workers = max_workers if max_workers is not None else min(len(bounds), 4)
    workers = max(1, workers)

    with obs_span(
        "pipeline.clean_chunked",
        table=table.name or base_name,
        rows=table.num_rows,
        chunks=len(bounds),
        workers=workers,
    ) as sp:
        # Chunks run on pool threads, outside this thread's span stack; the
        # explicit ref parents each chunk span so chunked jobs keep the
        # service.job → pipeline.clean_chunked → pipeline.chunk tree.
        parent_ref = obs_current_ref()
        try:
            chunk_outputs = _run_chunks(
                working, bounds, base_name, config, llm_factory, hil_factory,
                cache_store, workers, parent_ref,
            )
            cleaned_chunks = [output[0] for output in chunk_outputs]
            _validate_chunk_schemas(cleaned_chunks)
        except Exception:
            sp.annotate(fell_back=True)
            return _whole_table(
                table, chunk_rows, llm_factory, config, hil_factory, cache_store, fell_back=True
            )

        merged = cleaned_chunks[0]
        for chunk in cleaned_chunks[1:]:
            merged = merged.concat_rows(chunk)
        merged = merged.rename(base_name)

        # Table-level pass on the merged result, in its own database and context.
        table_llm = cached_client(llm_factory(), cache_store)
        db = Database(name=base_name)
        db.register(merged, replace=True)
        table_lineage = LineageRecorder(phase="batch")
        context = CleaningContext(db, table_llm, base_name, config=config, lineage=table_lineage)
        table_issues = [i for i in TABLE_LEVEL_ISSUES if config.issue_enabled(i)]
        table_results = run_operators(context, hil_factory(), operators=default_operators(table_issues))

        cleaned = context.current_table().drop([ROW_ID_COLUMN]).rename(table.name)
        operator_results: List[OperatorResult] = []
        # One job-wide audit trail: chunk recorders merge in chunk order (their
        # row-id ranges are disjoint), then the table-level pass's records.
        lineage = LineageRecorder(phase="batch")
        for _, results, _, _, chunk_lineage in chunk_outputs:
            operator_results.extend(results)
            lineage.merge(chunk_lineage)
        lineage.merge(table_lineage)
        operator_results.extend(table_results)
        llm_calls = sum(calls for _, _, _, calls, _ in chunk_outputs) + table_llm.call_count
        sp.annotate(llm_calls=llm_calls)

    return ChunkedCleaningResult(
        table_name=table.name,
        dirty_table=table,
        cleaned_table=cleaned,
        operator_results=operator_results,
        sql_script=_render_chunked_script(base_name, chunk_rows, bounds, chunk_outputs, context.sql_statements),
        llm_calls=llm_calls,
        chunk_rows=chunk_rows,
        chunk_count=len(bounds),
        parallel_workers=workers,
        fell_back=False,
        lineage=lineage,
    )


def _run_chunks(
    working: Table,
    bounds: Sequence[Tuple[int, int]],
    base_name: str,
    config: CleaningConfig,
    llm_factory: LLMFactory,
    hil_factory: HILFactory,
    cache_store: Optional[PromptCacheStore],
    workers: int,
    parent_ref: Optional[SpanRef] = None,
) -> List[ChunkOutput]:
    def run_one(index: int) -> ChunkOutput:
        start, end = bounds[index]
        chunk_table = working.take(list(range(start, end)))
        with obs_span(
            "pipeline.chunk",
            parent_ref=parent_ref,
            chunk_index=index,
            rows=end - start,
        ):
            return _clean_chunk(
                chunk_table,
                f"{base_name}_chunk{index}",
                config,
                cached_client(llm_factory(), cache_store),
                hil_factory(),
            )

    if workers == 1:
        return [run_one(i) for i in range(len(bounds))]
    with ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-chunk") as pool:
        return list(pool.map(run_one, range(len(bounds))))


def _whole_table(
    table: Table,
    chunk_rows: int,
    llm_factory: LLMFactory,
    config: CleaningConfig,
    hil_factory: HILFactory,
    cache_store: Optional[PromptCacheStore],
    fell_back: bool,
) -> ChunkedCleaningResult:
    llm = cached_client(llm_factory(), cache_store)
    cleaner = CocoonCleaner(llm=llm, config=config, hil=hil_factory(), database=Database())
    result = cleaner.clean(table)
    return ChunkedCleaningResult(
        table_name=result.table_name,
        dirty_table=result.dirty_table,
        cleaned_table=result.cleaned_table,
        operator_results=result.operator_results,
        sql_script=result.sql_script,
        llm_calls=result.llm_calls,
        chunk_rows=chunk_rows,
        chunk_count=1,
        parallel_workers=1,
        fell_back=fell_back,
        lineage=result.lineage,
    )


def _render_chunked_script(
    base_name: str,
    chunk_rows: int,
    bounds: Sequence[Tuple[int, int]],
    chunk_outputs: Sequence[ChunkOutput],
    table_statements: Sequence[str],
) -> str:
    lines: List[str] = [
        f"-- Cocoon chunked cleaning pipeline for table {base_name}",
        f"-- {len(bounds)} chunks of at most {chunk_rows} rows; column-level issues cleaned per",
        "-- chunk, table-level issues (FD, duplication, uniqueness) on the merged result.",
    ]
    for index, ((start, end), (_, _, statements, _, _)) in enumerate(zip(bounds, chunk_outputs)):
        lines.append("")
        lines.append(f"-- chunk {index}: rows {start}..{end - 1}")
        if statements:
            lines.extend(f"{statement};" for statement in statements)
        else:
            lines.append("-- no cleaning necessary in this chunk")
    lines.append("")
    lines.append("-- table-level pass on the merged result")
    if table_statements:
        lines.extend(f"{statement};" for statement in table_statements)
    else:
        lines.append("-- no table-level cleaning necessary")
    return "\n".join(lines) + "\n"
