"""Job objects for the concurrent cleaning service.

A :class:`CleaningJob` is one unit of scheduled work: clean one table with a
given configuration.  Jobs carry their own lifecycle (:class:`JobStatus`),
timing marks, and a :class:`JobResult` once finished, and expose a
:class:`threading.Event`-backed :meth:`CleaningJob.wait` so callers can block
on individual jobs without polling the service.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.core.context import CleaningConfig
from repro.core.result import CleaningResult
from repro.dataframe.table import Table


class JobStatus(enum.Enum):
    """Lifecycle of a cleaning job inside the service."""

    PENDING = "pending"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobStatus.SUCCEEDED, JobStatus.FAILED, JobStatus.CANCELLED)

    def __str__(self) -> str:  # pragma: no cover - display helper
        return self.value


@dataclass
class JobResult:
    """Everything one finished job produced, including its timing breakdown."""

    job_id: int
    table_name: str
    status: JobStatus
    cleaning_result: Optional[CleaningResult] = None
    error: Optional[str] = None
    rows: int = 0
    columns: int = 0
    llm_calls: int = 0
    cell_repairs: int = 0
    removed_rows: int = 0
    # Seconds spent waiting in the queue and executing, respectively.
    wait_seconds: float = 0.0
    run_seconds: float = 0.0
    chunked: bool = False
    chunk_count: int = 1
    fell_back: bool = False

    @property
    def ok(self) -> bool:
        return self.status is JobStatus.SUCCEEDED

    def summary(self) -> str:
        if self.status is JobStatus.SUCCEEDED:
            detail = (
                f"{self.rows} rows, {self.cell_repairs} repairs, "
                f"{self.llm_calls} LLM calls, {self.run_seconds:.2f}s"
            )
        else:
            detail = self.error or self.status.value
        return f"[{self.status.value}] {self.table_name}: {detail}"


_job_ids = itertools.count(1)


@dataclass(eq=False)
class CleaningJob:
    """One scheduled cleaning task.

    Jobs are ordered by ``priority`` (lower runs first) and FIFO within a
    priority.  ``chunk_rows`` above zero requests partitioned cleaning for
    the job's table; ``None`` inherits the service default, and an explicit
    ``0`` forces whole-table mode even when the service defaults to chunking.
    """

    table: Table
    priority: int = 0
    config: Optional[CleaningConfig] = None
    chunk_rows: Optional[int] = None
    name: str = ""
    metadata: Dict[str, Any] = field(default_factory=dict)

    job_id: int = field(default_factory=lambda: next(_job_ids))
    status: JobStatus = JobStatus.PENDING
    result: Optional[JobResult] = None

    # Timing marks (``time.perf_counter`` values captured by the service).
    submitted_at: float = field(default_factory=time.perf_counter)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.table.name or f"job-{self.job_id}"
        self._done = threading.Event()
        self._lock = threading.Lock()

    # -- lifecycle -------------------------------------------------------------
    def cancel(self) -> bool:
        """Cancel the job if it has not started; returns True on success.

        Running jobs are not interrupted — cancellation is a queue-level
        operation, mirroring how the paper's human-in-the-loop can abandon a
        step before it executes.
        """
        with self._lock:
            if self.status is not JobStatus.PENDING:
                return False
            self.status = JobStatus.CANCELLED
        self.finished_at = time.perf_counter()
        self.result = JobResult(
            job_id=self.job_id,
            table_name=self.name,
            status=JobStatus.CANCELLED,
            error="cancelled before execution",
            rows=self.table.num_rows,
            columns=self.table.num_columns,
            wait_seconds=self.finished_at - self.submitted_at,
        )
        self._done.set()
        return True

    def mark_running(self) -> bool:
        """Transition PENDING → RUNNING; False when the job was cancelled."""
        with self._lock:
            if self.status is not JobStatus.PENDING:
                return False
            self.status = JobStatus.RUNNING
        self.started_at = time.perf_counter()
        return True

    def finish(self, result: JobResult) -> None:
        with self._lock:
            self.status = result.status
        self.finished_at = time.perf_counter()
        self.result = result
        self._done.set()

    # -- waiting ---------------------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Optional[JobResult]:
        """Block until the job reaches a terminal state; returns its result."""
        self._done.wait(timeout)
        return self.result

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return f"CleaningJob(id={self.job_id}, name={self.name!r}, status={self.status.value})"
