"""A generic worker pool over the priority job queue.

:class:`WorkerPool` owns the threading machinery that used to live inside
:class:`~repro.service.scheduler.CleaningService`: a fixed set of daemon
worker threads draining a :class:`~repro.service.queue.JobQueue`.  The pool
is deliberately ignorant of *what* a job is — it accepts any object
implementing the small :class:`PoolJob` protocol (``priority``, ``status``,
``mark_running``) and hands runnable jobs to the ``execute`` callable it was
constructed with.

Two subsystems dispatch onto it:

* :class:`~repro.service.scheduler.CleaningService` submits
  :class:`~repro.service.jobs.CleaningJob` objects (clean one table);
* :class:`~repro.experiments.matrix.ExperimentMatrix` submits experiment
  cells of the paper's evaluation grid (run one system on one benchmark).

The contract with ``execute``: it is called exactly once per job that won
its PENDING → RUNNING transition, it must never raise (job-level failures
belong in the job's result), and it is responsible for moving the job to a
terminal state so waiters wake up.
"""

from __future__ import annotations

import threading
from typing import Callable, List, Optional

from repro.service.jobs import JobStatus
from repro.service.queue import JobQueue

try:  # pragma: no cover - typing backport shim for 3.7
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]


class PoolJob(Protocol):
    """What the pool needs from a job: ordering and a claimable lifecycle.

    ``status`` is read by the queue (pending jobs pop, settled ones are
    skipped), ``priority`` orders the heap, and ``mark_running`` claims the
    job exactly once.
    """

    priority: int
    status: "JobStatus"

    def mark_running(self) -> bool:  # pragma: no cover - protocol stub
        """Claim the job (PENDING → RUNNING); False if already settled."""
        ...


class WorkerPool:
    """A fixed pool of daemon threads executing jobs from a priority queue.

    Workers start lazily on the first :meth:`submit` (or eagerly via
    :meth:`start`).  ``shutdown(wait=True)`` closes the queue, lets the
    workers drain it, and joins them; submissions after shutdown raise
    :class:`RuntimeError`.
    """

    def __init__(
        self,
        workers: int,
        execute: Callable[..., None],
        thread_name: str = "repro-worker",
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.execute = execute
        self.thread_name = thread_name
        self.queue = JobQueue()
        self._threads: List[threading.Thread] = []
        self._lock = threading.Lock()
        self._shutdown = False

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the worker threads (idempotent)."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("worker pool has been shut down")
            while len(self._threads) < self.workers:
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"{self.thread_name}-{len(self._threads)}",
                    daemon=True,
                )
                self._threads.append(thread)
                thread.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; with ``wait`` drain the queue and join workers.

        Idempotent, and callable again with ``wait=True`` after a
        ``wait=False`` shutdown to join the workers later.
        """
        with self._lock:
            if not self._shutdown:
                self._shutdown = True
                self.queue.close()
            threads = list(self._threads)
        if wait:
            for thread in threads:
                thread.join()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._shutdown

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -- submission -------------------------------------------------------------
    def submit(self, job: PoolJob) -> PoolJob:
        """Enqueue one job and make sure the workers are running."""
        with self._lock:
            if self._shutdown:
                raise RuntimeError("worker pool has been shut down")
            self.queue.put(job)
        self.start()
        return job

    # -- execution ---------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            job = self.queue.get()
            if job is None:
                return
            if not job.mark_running():
                continue  # lost the race with a cancellation
            self.execute(job)
