"""A priority FIFO queue of pool jobs with cancellation.

``queue.PriorityQueue`` cannot express "cancel this entry" without draining,
so the service uses its own heap: entries are ``(priority, sequence, job)``
tuples — lower priority numbers pop first, and the monotonically increasing
sequence keeps submission order within a priority (strict FIFO).  Cancelled
jobs stay in the heap but are skipped lazily on pop, which keeps
cancellation O(1).

The queue is job-type agnostic: any object with a ``priority`` attribute and
a ``status`` in :class:`~repro.service.jobs.JobStatus` qualifies (see
:class:`repro.service.pool.PoolJob`) — :class:`~repro.service.jobs.CleaningJob`
and the experiment-matrix jobs both ride on it.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from typing import Any, List, Optional

from repro.service.jobs import JobStatus


class QueueClosed(Exception):
    """Raised by :meth:`JobQueue.put` after the queue has been closed."""


class JobQueue:
    """Thread-safe priority FIFO queue of pool-job objects."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._sequence = itertools.count()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # -- producer side ---------------------------------------------------------
    def put(self, job: Any) -> None:
        with self._not_empty:
            if self._closed:
                raise QueueClosed("cannot submit to a closed queue")
            heapq.heappush(self._heap, (job.priority, next(self._sequence), job))
            self._not_empty.notify()

    def close(self) -> None:
        """Stop accepting jobs and wake all blocked consumers."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    # -- consumer side ---------------------------------------------------------
    def get(self, timeout: Optional[float] = None) -> Optional[Any]:
        """Pop the next runnable job, blocking while the queue is open but empty.

        Returns None when the queue is closed and drained (the worker
        shutdown signal) or when ``timeout`` elapses.  Jobs cancelled while
        queued are skipped, never returned.
        """
        with self._not_empty:
            while True:
                job = self._pop_runnable()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def _pop_runnable(self) -> Optional[Any]:
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.status is JobStatus.PENDING:
                return job
            # Cancelled (or otherwise already-settled) entries are dropped.
        return None

    # -- introspection ---------------------------------------------------------
    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending_count(self) -> int:
        """Number of queued jobs that are still runnable."""
        with self._lock:
            return sum(1 for _, _, job in self._heap if job.status is JobStatus.PENDING)

    def __len__(self) -> int:
        return self.pending_count()
