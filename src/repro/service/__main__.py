"""``python -m repro.service`` — the batch-cleaning command line."""

import sys

from repro.service.cli import main

sys.exit(main())
