"""The concurrent cleaning service: a worker pool over the job queue.

``CleaningService`` turns the single-shot :class:`~repro.core.pipeline.CocoonCleaner`
into a long-lived service: jobs are submitted (optionally with priorities and
per-job configs), a configurable pool of worker threads executes them, and
every job gets a fully isolated :class:`~repro.sql.database.Database`,
:class:`~repro.core.context.CleaningContext` and LLM instance — only the
prompt-response cache (:class:`~repro.llm.cache.PromptCacheStore`) is shared,
so concurrent jobs amortise each other's LLM calls without sharing any
mutable cleaning state.

Isolation is what makes concurrent results reproducible: no job ever reads
another job's tables, contexts or operator state.  The one deliberate
coupling is the shared prompt cache — a job whose prompt was already
answered reuses that response.  For a pure prompt→response model this is
invisible; for a *stateful* inner model (the simulated LLM remembers value
counts from detection prompts) a cross-job cache hit skips the inner call
that would have recorded that state, which can matter in the corner case
where two jobs share a detection prompt but diverge afterwards.  Pass
``share_cache=False`` for strict per-job isolation.
"""

from __future__ import annotations

import threading
import time
import traceback
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.context import CleaningConfig
from repro.core.hil import AutoApprove
from repro.core.pipeline import CocoonCleaner
from repro.dataframe.io import read_csv
from repro.dataframe.table import Table
from repro.llm.cache import PromptCacheStore, cached_client
from repro.llm.simulated import SimulatedSemanticLLM
from repro.obs import span as obs_span
from repro.obs.metrics import MetricsRegistry
from repro.service.chunking import (
    ChunkedCleaningResult,
    HILFactory,
    LLMFactory,
    clean_chunked,
)
from repro.service.jobs import CleaningJob, JobResult, JobStatus
from repro.service.pool import WorkerPool
from repro.service.stats import ServiceStats, StatsCollector
from repro.sql.database import Database


class ServiceSaturated(RuntimeError):
    """Admission refused: the service already holds ``max_pending_jobs`` unfinished jobs.

    Raised by :meth:`CleaningService.submit` when bounded admission is on —
    the signal a fronting gateway translates into HTTP 429 so producers shed
    load instead of queueing unboundedly.
    """


class CleaningService:
    """Schedules and executes many cleaning jobs on a thread worker pool.

    Typical batch use::

        with CleaningService(workers=4) as service:
            jobs = [service.submit(t) for t in tables]
            results = service.wait_all()

    Workers start lazily on the first submission.  ``default_chunk_rows``
    above zero turns on partitioned cleaning for any table larger than that
    many rows (overridable per job).
    """

    def __init__(
        self,
        workers: int = 4,
        llm_factory: Optional[LLMFactory] = None,
        config: Optional[CleaningConfig] = None,
        hil_factory: Optional[HILFactory] = None,
        cache_path: Optional[Union[str, Path]] = None,
        cache_flush_every: int = 32,
        cache_store: Optional[PromptCacheStore] = None,
        share_cache: bool = True,
        default_chunk_rows: int = 0,
        chunk_workers: int = 1,
        max_pending_jobs: Optional[int] = None,
        max_retained_jobs: int = 1024,
        metrics_registry: Optional[MetricsRegistry] = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_pending_jobs is not None and max_pending_jobs < 1:
            raise ValueError(f"max_pending_jobs must be >= 1, got {max_pending_jobs}")
        if max_retained_jobs < 1:
            raise ValueError(f"max_retained_jobs must be >= 1, got {max_retained_jobs}")
        self.workers = workers
        self.max_pending_jobs = max_pending_jobs
        self.max_retained_jobs = max_retained_jobs
        self.llm_factory = llm_factory or SimulatedSemanticLLM
        self.config = config or CleaningConfig()
        self.hil_factory = hil_factory or AutoApprove
        self.default_chunk_rows = default_chunk_rows
        self.chunk_workers = chunk_workers
        if cache_store is not None:
            self.cache: Optional[PromptCacheStore] = cache_store
        elif share_cache:
            self.cache = PromptCacheStore(cache_path, flush_every=cache_flush_every)
        else:
            self.cache = None

        self._pool = WorkerPool(workers, execute=self._run_job)
        self._jobs: List[CleaningJob] = []
        # Lookup registry keyed by job id: unsettled jobs are always present;
        # settled ones are retained (oldest-first eviction beyond
        # ``max_retained_jobs``) so network callers can fetch results later.
        self._jobs_by_id: "OrderedDict[int, CleaningJob]" = OrderedDict()
        self._lock = threading.Lock()
        self._stats = StatsCollector(registry=metrics_registry)

    # -- lifecycle -------------------------------------------------------------
    def start(self) -> "CleaningService":
        """Spawn the worker threads (idempotent; submit() calls this lazily)."""
        self._pool.start()
        return self

    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting jobs; with ``wait`` drain the queue and join workers."""
        with self._lock:
            if self._pool.closed:
                return
            self._pool.shutdown(wait=False)
        if wait:
            self._pool.shutdown(wait=True)
        if self.cache is not None:
            self.cache.flush()

    def __enter__(self) -> "CleaningService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    # -- submission -------------------------------------------------------------
    def submit(
        self,
        table: Table,
        priority: int = 0,
        config: Optional[CleaningConfig] = None,
        chunk_rows: Optional[int] = None,
        name: str = "",
        metadata: Optional[Dict[str, Any]] = None,
    ) -> CleaningJob:
        """Queue one table for cleaning and return its job handle.

        ``metadata`` is attached to the job verbatim; the gateway uses it to
        carry the request's trace parent (``trace_parent``) so the worker's
        ``service.job`` span joins the submitting HTTP request's trace.
        """
        job = CleaningJob(
            table=table,
            priority=priority,
            config=config,
            chunk_rows=chunk_rows,
            name=name or table.name or "",
            metadata=dict(metadata) if metadata else {},
        )
        with self._lock:
            if self._pool.closed:
                raise RuntimeError("service has been shut down")
            if self.max_pending_jobs is not None:
                pending = sum(1 for tracked in self._jobs_by_id.values() if not tracked.done)
                if pending >= self.max_pending_jobs:
                    raise ServiceSaturated(
                        f"service already has {pending} unfinished jobs "
                        f"(max_pending_jobs={self.max_pending_jobs})"
                    )
            # A new batch (first submission, or everything before it already
            # settled) restarts the throughput wall clock — so idle gaps
            # between batches don't dilute jobs/s — and evicts the settled
            # jobs, releasing their tables/results; without eviction a
            # long-lived service would hold every table ever cleaned.
            if all(previous.done for previous in self._jobs):
                self._stats.restart_clock()
                self._jobs.clear()
            self._jobs.append(job)
            self._jobs_by_id[job.job_id] = job
            # Unsettled jobs are never evicted, so the registry can only
            # exceed the cap by the (admission-bounded) in-flight count.
            while len(self._jobs_by_id) > self.max_retained_jobs:
                oldest_settled = next(
                    (jid for jid, tracked in self._jobs_by_id.items() if tracked.done), None
                )
                if oldest_settled is None:
                    break
                del self._jobs_by_id[oldest_settled]
            # Enqueue under the lock: shutdown() also takes it before closing
            # the pool, so a job can never be tracked but unqueued.
            self._pool.submit(job)
        self._stats.record_submitted()
        return job

    def submit_csv(self, path: Union[str, Path], **kwargs) -> CleaningJob:
        """Read a CSV (types left raw, as the cleaner expects) and queue it."""
        return self.submit(read_csv(path, infer_types=False), **kwargs)

    def cancel(self, job: CleaningJob) -> bool:
        """Cancel a queued job; running jobs are not interrupted."""
        cancelled = job.cancel()
        if cancelled and job.result is not None:
            self._stats.record_result(job.result)
        return cancelled

    # -- waiting and results -----------------------------------------------------
    @property
    def jobs(self) -> List[CleaningJob]:
        """Jobs of the current batch (submissions since the service last went
        idle); earlier batches are evicted to keep long-lived services bounded."""
        with self._lock:
            return list(self._jobs)

    def job(self, job_id: int) -> CleaningJob:
        """Look up a job by id (raises ``KeyError`` for unknown/evicted ids).

        Unlike :attr:`jobs`, the id registry spans batches: a settled job
        stays fetchable until ``max_retained_jobs`` pushes it out — the
        contract the HTTP gateway's ``GET /v1/jobs/{id}`` relies on.
        """
        with self._lock:
            if job_id not in self._jobs_by_id:
                raise KeyError(
                    f"unknown job id {job_id} (finished jobs are retained up to "
                    f"{self.max_retained_jobs}; older ones are evicted)"
                )
            return self._jobs_by_id[job_id]

    @property
    def pending_jobs(self) -> int:
        """Number of tracked jobs that have not reached a terminal state."""
        with self._lock:
            return sum(1 for job in self._jobs_by_id.values() if not job.done)

    @property
    def queue_depth(self) -> int:
        """Jobs sitting in the worker queue, not yet claimed by a worker."""
        return self._pool.queue.pending_count()

    def wait_all(self, timeout: Optional[float] = None) -> List[JobResult]:
        """Block until every current-batch job is terminal; results in submit order."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        results: List[JobResult] = []
        for job in self.jobs:
            remaining = None if deadline is None else max(0.0, deadline - time.perf_counter())
            result = job.wait(remaining)
            if result is None:
                raise TimeoutError(f"job {job.name!r} did not finish within the timeout")
            results.append(result)
        return results

    def clean_tables(
        self, tables: Sequence[Table], chunk_rows: Optional[int] = None
    ) -> List[JobResult]:
        """Convenience batch call: submit every table, wait, return results."""
        jobs = [self.submit(table, chunk_rows=chunk_rows) for table in tables]
        return [job.wait() for job in jobs]

    def stats(self) -> ServiceStats:
        """A point-in-time snapshot of service metrics (including the cache)."""
        cache_stats = self.cache.stats() if self.cache is not None else None
        return self._stats.snapshot(cache_stats)

    # -- execution ---------------------------------------------------------------
    def _run_job(self, job: CleaningJob) -> None:
        started = time.perf_counter()
        wait_seconds = started - job.submitted_at
        # Worker threads carry no span stack, so this is either a child of the
        # submitting request (trace_parent propagated through job metadata), a
        # fresh "job-<id>" root when tracing is on, or a no-op.
        with obs_span(
            "service.job",
            parent_ref=job.metadata.get("trace_parent"),
            trace_id=f"job-{job.job_id}",
            job_id=job.job_id,
            table=job.name,
        ) as sp:
            if sp.trace_id is not None:
                job.metadata["trace_id"] = sp.trace_id
            self._run_job_traced(job, sp, started, wait_seconds)

    def _run_job_traced(self, job: CleaningJob, sp, started: float, wait_seconds: float) -> None:
        try:
            cleaning = self._execute(job)
            result = JobResult(
                job_id=job.job_id,
                table_name=job.name,
                status=JobStatus.SUCCEEDED,
                cleaning_result=cleaning,
                rows=job.table.num_rows,
                columns=job.table.num_columns,
                llm_calls=cleaning.llm_calls,
                cell_repairs=len(cleaning.repairs),
                removed_rows=len(cleaning.removed_row_ids),
                wait_seconds=wait_seconds,
                run_seconds=time.perf_counter() - started,
                chunked=isinstance(cleaning, ChunkedCleaningResult) and cleaning.chunk_count > 1,
                chunk_count=getattr(cleaning, "chunk_count", 1),
                fell_back=getattr(cleaning, "fell_back", False),
            )
        except Exception as exc:
            result = JobResult(
                job_id=job.job_id,
                table_name=job.name,
                status=JobStatus.FAILED,
                error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                rows=job.table.num_rows,
                columns=job.table.num_columns,
                wait_seconds=wait_seconds,
                run_seconds=time.perf_counter() - started,
            )
        sp.annotate(status=result.status.value, rows=result.rows, llm_calls=result.llm_calls)
        if result.error:
            sp.annotate(error=result.error.splitlines()[0])
        job.finish(result)
        self._stats.record_result(result)

    def _execute(self, job: CleaningJob):
        config = job.config or self.config
        chunk_rows = job.chunk_rows if job.chunk_rows is not None else self.default_chunk_rows
        if chunk_rows and job.table.num_rows > chunk_rows:
            return clean_chunked(
                job.table,
                chunk_rows,
                llm_factory=self.llm_factory,
                config=config,
                hil_factory=self.hil_factory,
                cache_store=self.cache,
                max_workers=self.chunk_workers,
            )
        llm = cached_client(self.llm_factory(), self.cache)
        cleaner = CocoonCleaner(
            llm=llm, config=config, hil=self.hil_factory(), database=Database()
        )
        return cleaner.clean(job.table)
