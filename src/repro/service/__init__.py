"""Concurrent batch-cleaning service on top of the Cocoon pipeline.

The seed system cleans one table per synchronous call.  This package is the
scaling layer the ROADMAP's production north-star asks for:

* :mod:`repro.service.jobs` — job objects with lifecycle, timing and
  per-job LLM accounting;
* :mod:`repro.service.queue` — a priority FIFO queue with O(1) cancellation;
* :mod:`repro.service.pool` — :class:`WorkerPool`, the generic thread pool
  the cleaning service and the experiment matrix both dispatch onto;
* :mod:`repro.service.scheduler` — :class:`CleaningService`, a thread worker
  pool giving every job an isolated database/context/LLM while sharing one
  thread-safe prompt cache;
* :mod:`repro.service.chunking` — partitioned cleaning of large tables
  (column-level issues per chunk in parallel, table-level issues on the
  merged result) with a whole-table fallback;
* :mod:`repro.service.stats` — throughput / latency / cache metrics,
  rendered by :func:`repro.core.report.render_service_summary`;
* :mod:`repro.service.cli` — ``python -m repro.service`` for cleaning a
  directory of CSV files concurrently.
"""

from repro.service.chunking import ChunkedCleaningResult, ChunkMergeError, clean_chunked
from repro.service.jobs import CleaningJob, JobResult, JobStatus
from repro.service.pool import WorkerPool
from repro.service.queue import JobQueue, QueueClosed
from repro.service.scheduler import CleaningService, ServiceSaturated
from repro.service.stats import ServiceStats, StatsCollector

__all__ = [
    "CleaningService",
    "ServiceSaturated",
    "CleaningJob",
    "JobResult",
    "JobStatus",
    "JobQueue",
    "QueueClosed",
    "WorkerPool",
    "clean_chunked",
    "ChunkedCleaningResult",
    "ChunkMergeError",
    "ServiceStats",
    "StatsCollector",
]
