"""Command-line entry point: clean a directory of CSV files concurrently.

Usage::

    python -m repro.service --input-dir data/ --output-dir cleaned/ --workers 4

Every ``*.csv`` in the input directory becomes one cleaning job.  Cleaned
tables are written next to per-table SQL pipelines and HTML reports, and a
service summary (throughput, latency, cache hit rate) is printed at the end.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.report import render_service_summary, write_report
from repro.dataframe.io import write_csv
from repro.service.scheduler import CleaningService


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Clean every CSV file in a directory concurrently with Cocoon.",
    )
    parser.add_argument("--input-dir", required=True, help="Directory containing *.csv files to clean")
    parser.add_argument("--output-dir", required=True, help="Directory for cleaned CSVs and reports")
    parser.add_argument("--workers", type=int, default=4, help="Worker threads (default: 4)")
    parser.add_argument(
        "--chunk-rows",
        type=int,
        default=0,
        help="Partition tables larger than this many rows (0 = whole-table mode)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        help="Path of a persistent JSON prompt cache shared by all jobs",
    )
    parser.add_argument(
        "--flush-every",
        type=int,
        default=32,
        help="Persist the prompt cache after every N new entries (default: 32)",
    )
    parser.add_argument(
        "--no-reports",
        action="store_true",
        help="Write only cleaned CSVs, skipping the HTML/SQL reports",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    input_dir = Path(args.input_dir)
    output_dir = Path(args.output_dir)
    if args.workers < 1:
        print(f"error: --workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2
    if args.flush_every < 1:
        print(f"error: --flush-every must be >= 1, got {args.flush_every}", file=sys.stderr)
        return 2
    if not input_dir.is_dir():
        print(f"error: input directory {input_dir} does not exist", file=sys.stderr)
        return 2
    csv_paths: List[Path] = sorted(input_dir.glob("*.csv"))
    if not csv_paths:
        print(f"error: no *.csv files found in {input_dir}", file=sys.stderr)
        return 2
    output_dir.mkdir(parents=True, exist_ok=True)

    service = CleaningService(
        workers=args.workers,
        cache_path=args.cache,
        cache_flush_every=args.flush_every,
        default_chunk_rows=args.chunk_rows,
    )
    with service:
        jobs = [service.submit_csv(path) for path in csv_paths]
        results = [job.wait() for job in jobs]

        failures = 0
        for path, result in zip(csv_paths, results):
            print(result.summary())
            if not result.ok or result.cleaning_result is None:
                failures += 1
                continue
            cleaned = result.cleaning_result.cleaned_table
            write_csv(cleaned, output_dir / f"{path.stem}_cleaned.csv")
            if not args.no_reports:
                write_report(result.cleaning_result, output_dir)
        print()
        print(render_service_summary(service.stats()))
    return 1 if failures else 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m
    sys.exit(main())
