"""Service-level metrics: throughput, latency, and cache effectiveness.

The collector is shared by all worker threads.  Since ``repro.obs`` exists it
is a thin façade over a :class:`~repro.obs.metrics.MetricsRegistry`: every
finished job is folded into registry counters/histograms
(``repro_service_*``), and :meth:`StatsCollector.snapshot` reads those
metrics back into an immutable :class:`ServiceStats` suitable for reporting
(see :func:`repro.core.report.render_service_summary`).  The registry is the
same object a fronting gateway renders at ``GET /metrics`` — one sink, two
exposition shapes.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.obs.metrics import MetricsRegistry, percentile
from repro.service.jobs import JobResult, JobStatus


def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Linear-interpolated percentile (see :func:`repro.obs.metrics.percentile`).

    Historically this was nearest-rank via ``round``, which made the reported
    p50 of ``[1, 2]`` an endpoint and let banker's rounding flip p-values
    between adjacent sample counts; interpolation moves smoothly instead.
    """
    return percentile(sorted_values, fraction)


@dataclass
class ServiceStats:
    """Aggregate metrics of one service run (a snapshot, safe to keep)."""

    jobs_submitted: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    rows_cleaned: int = 0
    cells_repaired: int = 0
    rows_removed: int = 0
    llm_calls: int = 0
    chunked_jobs: int = 0
    fallback_jobs: int = 0
    # Busy wall time: submission-to-last-finish per batch, idle gaps excluded.
    wall_seconds: float = 0.0
    # Per-job latency distribution (seconds spent executing).
    run_seconds_total: float = 0.0
    run_seconds_avg: float = 0.0
    run_seconds_p50: float = 0.0
    run_seconds_max: float = 0.0
    wait_seconds_avg: float = 0.0
    # Cache effectiveness of the shared store (zeros when caching is off).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    cache_size: int = 0

    @property
    def jobs_finished(self) -> int:
        return self.jobs_succeeded + self.jobs_failed + self.jobs_cancelled

    @property
    def jobs_per_second(self) -> float:
        return self.jobs_succeeded / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def rows_per_second(self) -> float:
        return self.rows_cleaned / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup_over_sequential(self) -> float:
        """How much faster the wall clock was than summed per-job runtimes."""
        return self.run_seconds_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_succeeded": self.jobs_succeeded,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "rows_cleaned": self.rows_cleaned,
            "cells_repaired": self.cells_repaired,
            "rows_removed": self.rows_removed,
            "llm_calls": self.llm_calls,
            "chunked_jobs": self.chunked_jobs,
            "fallback_jobs": self.fallback_jobs,
            "wall_seconds": self.wall_seconds,
            "jobs_per_second": self.jobs_per_second,
            "rows_per_second": self.rows_per_second,
            "run_seconds_total": self.run_seconds_total,
            "run_seconds_avg": self.run_seconds_avg,
            "run_seconds_p50": self.run_seconds_p50,
            "run_seconds_max": self.run_seconds_max,
            "wait_seconds_avg": self.wait_seconds_avg,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_size": self.cache_size,
        }


class StatsCollector:
    """Thread-safe accumulator the scheduler folds every job result into.

    State lives in a :class:`MetricsRegistry` (``repro_service_*`` metrics) —
    pass one in to share it with a gateway's ``/metrics`` endpoint, or let
    the collector own a private registry.  The latency histograms retain
    every raw observation (``max_samples=None``) so :meth:`snapshot` reports
    the exact totals/avg/max the pre-registry list aggregation produced.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self._lock = threading.Lock()
        self.registry = registry if registry is not None else MetricsRegistry()
        self._submitted = self.registry.counter(
            "repro_service_jobs_submitted_total", help="Cleaning jobs accepted by the service"
        )
        self._finished = self.registry.counter(
            "repro_service_jobs_total",
            help="Finished cleaning jobs by terminal status",
            label_names=("status",),
        )
        self._rows = self.registry.counter(
            "repro_service_rows_cleaned_total", help="Rows in successfully cleaned tables"
        )
        self._cells = self.registry.counter(
            "repro_service_cells_repaired_total", help="Cell repairs applied by succeeded jobs"
        )
        self._removed = self.registry.counter(
            "repro_service_rows_removed_total", help="Rows removed (deduplicated) by succeeded jobs"
        )
        self._llm = self.registry.counter(
            "repro_service_llm_calls_total", help="LLM calls attributed to succeeded jobs"
        )
        self._chunked = self.registry.counter(
            "repro_service_chunked_jobs_total", help="Succeeded jobs cleaned in partitioned chunks"
        )
        self._fallback = self.registry.counter(
            "repro_service_fallback_jobs_total",
            help="Chunked jobs that fell back to whole-table cleaning",
        )
        self._run_seconds = self.registry.histogram(
            "repro_service_job_run_seconds",
            help="Per-job execution time of succeeded jobs",
            max_samples=None,
        )
        self._wait_seconds = self.registry.histogram(
            "repro_service_job_wait_seconds",
            help="Per-job queue wait time of succeeded jobs",
            max_samples=None,
        )
        # Busy wall time is accumulated per batch span: ``restart_clock`` (called
        # when a submission arrives with nothing in flight) closes the previous
        # span, so idle gaps between batches don't dilute throughput.
        self._busy_before = 0.0
        self._span_start = time.perf_counter()
        self._last_finish_at = self._span_start

    def record_submitted(self, count: int = 1) -> None:
        self._submitted.inc(count)

    def record_result(self, result: JobResult) -> None:
        self._finished.inc(status=result.status.value)
        if result.status is JobStatus.SUCCEEDED:
            self._rows.inc(result.rows)
            self._cells.inc(result.cell_repairs)
            self._removed.inc(result.removed_rows)
            self._llm.inc(result.llm_calls)
            if result.chunked:
                self._chunked.inc()
            if result.fell_back:
                self._fallback.inc()
            self._run_seconds.observe(result.run_seconds)
            self._wait_seconds.observe(result.wait_seconds)
        with self._lock:
            self._last_finish_at = time.perf_counter()

    def restart_clock(self) -> None:
        """Start a new batch span, banking the busy time of the previous one."""
        with self._lock:
            self._busy_before += max(0.0, self._last_finish_at - self._span_start)
            self._span_start = time.perf_counter()
            self._last_finish_at = self._span_start

    def snapshot(self, cache_stats: Optional[Dict[str, Union[int, float]]] = None) -> ServiceStats:
        with self._lock:
            wall = self._busy_before + max(0.0, self._last_finish_at - self._span_start)
        stats = ServiceStats(
            jobs_submitted=int(self._submitted.total()),
            jobs_succeeded=int(self._finished.value(status=JobStatus.SUCCEEDED.value)),
            jobs_failed=int(self._finished.value(status=JobStatus.FAILED.value)),
            jobs_cancelled=int(self._finished.value(status=JobStatus.CANCELLED.value)),
            rows_cleaned=int(self._rows.total()),
            cells_repaired=int(self._cells.total()),
            rows_removed=int(self._removed.total()),
            llm_calls=int(self._llm.total()),
            chunked_jobs=int(self._chunked.total()),
            fallback_jobs=int(self._fallback.total()),
            wall_seconds=wall,
        )
        run_times = self._run_seconds.samples()
        if run_times:
            ordered = sorted(run_times)
            stats.run_seconds_total = sum(run_times)
            stats.run_seconds_avg = stats.run_seconds_total / len(run_times)
            stats.run_seconds_p50 = _percentile(ordered, 0.5)
            stats.run_seconds_max = ordered[-1]
        wait_times = self._wait_seconds.samples()
        if wait_times:
            stats.wait_seconds_avg = sum(wait_times) / len(wait_times)
        if cache_stats:
            stats.cache_hits = int(cache_stats.get("hits", 0))
            stats.cache_misses = int(cache_stats.get("misses", 0))
            stats.cache_hit_rate = float(cache_stats.get("hit_rate", 0.0))
            stats.cache_size = int(cache_stats.get("size", 0))
        return stats
