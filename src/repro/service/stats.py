"""Service-level metrics: throughput, latency, and cache effectiveness.

The collector is shared by all worker threads; every finished job is folded
into running aggregates under a lock, and :meth:`StatsCollector.snapshot`
returns an immutable :class:`ServiceStats` suitable for reporting (see
:func:`repro.core.report.render_service_summary`).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.service.jobs import JobResult, JobStatus


def _percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1))))
    return sorted_values[index]


@dataclass
class ServiceStats:
    """Aggregate metrics of one service run (a snapshot, safe to keep)."""

    jobs_submitted: int = 0
    jobs_succeeded: int = 0
    jobs_failed: int = 0
    jobs_cancelled: int = 0
    rows_cleaned: int = 0
    cells_repaired: int = 0
    rows_removed: int = 0
    llm_calls: int = 0
    chunked_jobs: int = 0
    fallback_jobs: int = 0
    # Busy wall time: submission-to-last-finish per batch, idle gaps excluded.
    wall_seconds: float = 0.0
    # Per-job latency distribution (seconds spent executing).
    run_seconds_total: float = 0.0
    run_seconds_avg: float = 0.0
    run_seconds_p50: float = 0.0
    run_seconds_max: float = 0.0
    wait_seconds_avg: float = 0.0
    # Cache effectiveness of the shared store (zeros when caching is off).
    cache_hits: int = 0
    cache_misses: int = 0
    cache_hit_rate: float = 0.0
    cache_size: int = 0

    @property
    def jobs_finished(self) -> int:
        return self.jobs_succeeded + self.jobs_failed + self.jobs_cancelled

    @property
    def jobs_per_second(self) -> float:
        return self.jobs_succeeded / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def rows_per_second(self) -> float:
        return self.rows_cleaned / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup_over_sequential(self) -> float:
        """How much faster the wall clock was than summed per-job runtimes."""
        return self.run_seconds_total / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def to_dict(self) -> Dict[str, Union[int, float]]:
        return {
            "jobs_submitted": self.jobs_submitted,
            "jobs_succeeded": self.jobs_succeeded,
            "jobs_failed": self.jobs_failed,
            "jobs_cancelled": self.jobs_cancelled,
            "rows_cleaned": self.rows_cleaned,
            "cells_repaired": self.cells_repaired,
            "rows_removed": self.rows_removed,
            "llm_calls": self.llm_calls,
            "chunked_jobs": self.chunked_jobs,
            "fallback_jobs": self.fallback_jobs,
            "wall_seconds": self.wall_seconds,
            "jobs_per_second": self.jobs_per_second,
            "rows_per_second": self.rows_per_second,
            "run_seconds_total": self.run_seconds_total,
            "run_seconds_avg": self.run_seconds_avg,
            "run_seconds_p50": self.run_seconds_p50,
            "run_seconds_max": self.run_seconds_max,
            "wait_seconds_avg": self.wait_seconds_avg,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_size": self.cache_size,
        }


class StatsCollector:
    """Thread-safe accumulator the scheduler folds every job result into."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._submitted = 0
        self._results: List[JobResult] = []
        # Busy wall time is accumulated per batch span: ``restart_clock`` (called
        # when a submission arrives with nothing in flight) closes the previous
        # span, so idle gaps between batches don't dilute throughput.
        self._busy_before = 0.0
        self._span_start = time.perf_counter()
        self._last_finish_at = self._span_start

    def record_submitted(self, count: int = 1) -> None:
        with self._lock:
            self._submitted += count

    def record_result(self, result: JobResult) -> None:
        with self._lock:
            self._results.append(result)
            self._last_finish_at = time.perf_counter()

    def restart_clock(self) -> None:
        """Start a new batch span, banking the busy time of the previous one."""
        with self._lock:
            self._busy_before += max(0.0, self._last_finish_at - self._span_start)
            self._span_start = time.perf_counter()
            self._last_finish_at = self._span_start

    def snapshot(self, cache_stats: Optional[Dict[str, Union[int, float]]] = None) -> ServiceStats:
        with self._lock:
            results = list(self._results)
            submitted = self._submitted
            wall = self._busy_before + max(0.0, self._last_finish_at - self._span_start)
        stats = ServiceStats(jobs_submitted=submitted, wall_seconds=wall)
        run_times: List[float] = []
        wait_times: List[float] = []
        for result in results:
            if result.status is JobStatus.SUCCEEDED:
                stats.jobs_succeeded += 1
                stats.rows_cleaned += result.rows
                stats.cells_repaired += result.cell_repairs
                stats.rows_removed += result.removed_rows
                stats.llm_calls += result.llm_calls
                run_times.append(result.run_seconds)
                wait_times.append(result.wait_seconds)
                if result.chunked:
                    stats.chunked_jobs += 1
                if result.fell_back:
                    stats.fallback_jobs += 1
            elif result.status is JobStatus.FAILED:
                stats.jobs_failed += 1
            elif result.status is JobStatus.CANCELLED:
                stats.jobs_cancelled += 1
        if run_times:
            ordered = sorted(run_times)
            stats.run_seconds_total = sum(run_times)
            stats.run_seconds_avg = stats.run_seconds_total / len(run_times)
            stats.run_seconds_p50 = _percentile(ordered, 0.5)
            stats.run_seconds_max = ordered[-1]
        if wait_times:
            stats.wait_seconds_avg = sum(wait_times) / len(wait_times)
        if cache_stats:
            stats.cache_hits = int(cache_stats.get("hits", 0))
            stats.cache_misses = int(cache_stats.get("misses", 0))
            stats.cache_hit_rate = float(cache_stats.get("hit_rate", 0.0))
            stats.cache_size = int(cache_stats.get("size", 0))
        return stats
