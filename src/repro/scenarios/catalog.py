"""The built-in scenario catalogue.

Each entry is a :class:`~repro.scenarios.spec.ScenarioSpec` exercising one
error family (or a deliberate mix) over a registry dataset at the golden
configuration (seed 0, scale 0.05 — the same knobs ``GOLDEN_experiments``
pins).  The catalogue is what ``GOLDEN_scenarios.json`` is built from and
what the CI ``scenario-smoke`` job replays through a booted server.

Two entries matter beyond coverage:

* ``drift-mid-stream`` — a stationary prefix long enough to prime on and
  clear the drift detector's ``min_rows`` floor, then a representation
  migration (``schema_evolution``/codes) at rate 1.0.  The replay harness
  asserts this provably triggers the stream re-plan path (a
  ``stream.replan`` span) *and* that the cumulative stream output stays
  byte-identical to the whole-table batch pipeline.
* ``stationary-baseline`` — same traffic shape, no mid-stream change; the
  drift differential test requires the detector to stay silent here.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.workflow import COLUMN_LEVEL_ISSUES
from repro.scenarios.models import (
    AdversarialValueModel,
    DuplicateStormModel,
    FDViolationModel,
    KeywordColumnModel,
    LocaleMixModel,
    NullSpikeModel,
    ScenarioError,
    SchemaEvolutionModel,
    TypoModel,
    UnitDriftModel,
)
from repro.scenarios.spec import ScenarioPhase, ScenarioSpec, TrafficSpec

#: Golden configuration: every built-in uses the same seed/scale the
#: experiment corpus pins, so scenario cells regress on the same axis.
GOLDEN_SEED = 0
GOLDEN_SCALE = 0.05


def _specs() -> List[ScenarioSpec]:
    return [
        ScenarioSpec(
            name="typo-storm",
            base_dataset="hospital",
            models=[
                TypoModel(rate=0.08, columns=["HospitalName", "City", "CountyName"], min_length=4),
                TypoModel(rate=0.05, columns=["MeasureName"], min_length=6),
            ],
            description="Classic single-edit typos concentrated on name-like columns.",
        ),
        ScenarioSpec(
            name="unit-drift",
            base_dataset="beers",
            models=[
                UnitDriftModel(rate=0.15, columns=["abv"], factor=1000.0),
                TypoModel(rate=0.04, columns=["beer_name"], min_length=5),
            ],
            description="abv silently migrates from fraction to per-mille; a few typos ride along.",
        ),
        ScenarioSpec(
            name="schema-evolution",
            base_dataset="hospital",
            models=[
                SchemaEvolutionModel(rate=0.2, columns=["ProviderNumber"], mode="zero_pad", width=8),
                SchemaEvolutionModel(rate=0.25, columns=["EmergencyService"], mode="codes"),
            ],
            description="A producer migrated id width and boolean codes mid-extract.",
        ),
        ScenarioSpec(
            name="locale-mix",
            base_dataset="beers",
            models=[LocaleMixModel(rate=0.12, columns=["abv", "city"])],
            description="Decimal commas and accented vowels from a second locale.",
        ),
        ScenarioSpec(
            name="fd-chaos",
            base_dataset="hospital",
            models=[
                FDViolationModel(rate=0.3, determinant="MeasureCode", dependent="Condition"),
                FDViolationModel(rate=0.15, determinant="ProviderNumber", dependent="ZipCode"),
            ],
            description="Correlated FD violations: whole determinant groups agree on the wrong value.",
        ),
        ScenarioSpec(
            name="duplicate-storm",
            base_dataset="beers",
            models=[DuplicateStormModel(rate=0.15, near_typo_rate=0.4)],
            description="A burst of exact and near duplicates appended to the table.",
        ),
        ScenarioSpec(
            name="adversarial-values",
            base_dataset="flights",
            models=[
                AdversarialValueModel(rate=0.06, columns=["actual_departure", "actual_arrival"]),
                NullSpikeModel(rate=0.05, columns=["scheduled_departure"]),
            ],
            description="'nan'/'inf'/'Infinity', quotes and escapes — the PR 5 bug zoo.",
        ),
        ScenarioSpec(
            name="keyword-columns",
            base_dataset="hospital",
            columns=["City", "State", "Score", "Sample"],
            models=[
                KeywordColumnModel(rate=0.5),
                TypoModel(rate=0.06, min_length=4),
            ],
            description="Half the columns renamed to SQL keywords, typos on the renamed schema.",
        ),
        ScenarioSpec(
            name="dmv-flood",
            base_dataset="rayyan",
            models=[
                NullSpikeModel(rate=0.12, columns=["article_language", "journal_abbreviation"]),
                NullSpikeModel(rate=0.05, columns=["article_pagination"], as_null=True),
            ],
            description="Disguised and genuine missing values spiking across columns.",
        ),
        ScenarioSpec(
            name="drift-mid-stream",
            base_dataset="hospital",
            columns=["City", "State", "EmergencyService", "Score"],
            phases=[
                ScenarioPhase(rows=30, models=[]),
                ScenarioPhase(
                    rows=None,
                    models=[
                        SchemaEvolutionModel(rate=1.0, columns=["EmergencyService"], mode="codes")
                    ],
                ),
            ],
            traffic=TrafficSpec(batch_rows=10, prime_rows=30),
            expect_drift=True,
            batch_parity=True,
            cleaning_issues=list(COLUMN_LEVEL_ISSUES),
            description=(
                "Stationary 30-row prefix, then EmergencyService migrates yes/no -> Y/N "
                "at rate 1.0: the stream must re-plan that column and still match the "
                "batch pipeline byte-for-byte."
            ),
        ),
        ScenarioSpec(
            name="stationary-baseline",
            base_dataset="hospital",
            columns=["City", "State", "EmergencyService", "Score"],
            phases=[
                ScenarioPhase(rows=30, models=[]),
                ScenarioPhase(rows=None, models=[]),
            ],
            traffic=TrafficSpec(batch_rows=10, prime_rows=30),
            expect_drift=False,
            batch_parity=True,
            cleaning_issues=list(COLUMN_LEVEL_ISSUES),
            description="Same shape and traffic as drift-mid-stream, but nothing changes: "
            "the drift detector must stay silent and parity is exact.",
        ),
    ]


def builtin_specs() -> Dict[str, ScenarioSpec]:
    """Name -> spec for every built-in scenario (golden seed/scale applied)."""
    specs: Dict[str, ScenarioSpec] = {}
    for spec in _specs():
        spec.seed = GOLDEN_SEED
        spec.scale = GOLDEN_SCALE
        specs[spec.name] = spec
    return specs


def scenario_names() -> List[str]:
    return sorted(builtin_specs())


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a built-in scenario; unknown names fail loudly with choices."""
    specs = builtin_specs()
    if name not in specs:
        raise ScenarioError(
            f"unknown scenario {name!r}; valid scenarios: {sorted(specs)}"
        )
    return specs[name]
