"""The scenario-gated regression corpus behind ``GOLDEN_scenarios.json``.

One golden cell per built-in scenario, holding only deterministic fields:
the spec itself, corruption shape (rows/columns/cells/duplicates/renames),
the :class:`~repro.datasets.base.ErrorType` census, per-model counts, SHA-256
of the dirty and aligned-clean CSV bytes, the Cocoon scores the existing
:class:`~repro.evaluation.runner.ExperimentRunner` produces on the scenario
(minus wall-clock), and — for scenarios that declare traffic expectations —
the in-process stream statistics (minus wall-clock).

The canonical byte representation, the generic payload diff, and the
golden-file loader are the **same** helpers the experiment corpus uses
(:func:`repro.experiments.matrix.canonical_json` /
:func:`~repro.experiments.matrix.diff_golden` /
:func:`~repro.experiments.matrix.load_golden`), so both corpora regress on
identical rules: tier-1 asserts the committed file byte-for-byte, and
``python -m repro.scenarios --refresh`` is the only sanctioned way to move it.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.core.context import CleaningConfig
from repro.dataframe.io import to_csv_text
from repro.evaluation.runner import CocoonSystem, ExperimentRunner
from repro.experiments.matrix import canonical_json, diff_golden, load_golden
from repro.llm.simulated import SimulatedSemanticLLM
from repro.scenarios.catalog import builtin_specs
from repro.scenarios.spec import GeneratedScenario, generate
from repro.stream.engine import StreamingCleaner

#: Bump when the golden cell shape changes; tier-1 then fails loudly until
#: the corpus is refreshed on purpose.
SCHEMA_VERSION = 1

#: The committed corpus file, at the repo root next to GOLDEN_experiments.json.
GOLDEN_PATH = Path(__file__).resolve().parents[3] / "GOLDEN_scenarios.json"

#: Wall-clock fields stripped from every nested stats/score dict.
_NONDETERMINISTIC_KEYS = frozenset({"runtime_seconds", "seconds"})


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def _strip_timings(doc: Dict[str, Any]) -> Dict[str, Any]:
    return {key: value for key, value in doc.items() if key not in _NONDETERMINISTIC_KEYS}


def _cleaning_config(generated: GeneratedScenario) -> Optional[CleaningConfig]:
    issues = generated.spec.cleaning_issues
    return CleaningConfig(enabled_issues=list(issues)) if issues is not None else None


def _cocoon_scores(generated: GeneratedScenario) -> Dict[str, Any]:
    """Score the scenario with the existing experiment runner (Cocoon only)."""
    config = _cleaning_config(generated)
    runner = ExperimentRunner(
        systems={"Cocoon": lambda: CocoonSystem(config=config)},
        seed=generated.spec.seed,
    )
    result = runner.run_system("Cocoon", generated.dataset)
    return _strip_timings(result.to_dict())


def _stream_stats(generated: GeneratedScenario) -> Dict[str, Any]:
    """Deterministic stream statistics from an in-process replay."""
    cleaner = StreamingCleaner(
        name=generated.spec.table_name,
        llm=SimulatedSemanticLLM(),
        config=_cleaning_config(generated),
        detect_drift=True,
        prime_rows=generated.prime_rows,
    )
    drifted: List[str] = []
    for batch in generated.batches():
        drifted.extend(cleaner.process_batch(batch).drifted_columns)
    return {
        **_strip_timings(cleaner.stats.to_dict()),
        "drifted_columns": sorted(set(drifted)),
    }


def scenario_cell(generated: GeneratedScenario) -> Dict[str, Any]:
    """One scenario's deterministic golden cell."""
    spec = generated.spec
    dataset = generated.dataset
    cell: Dict[str, Any] = {
        "spec": spec.to_dict(),
        "rows": dataset.dirty.num_rows,
        "columns": dataset.dirty.column_names,
        "cells_corrupted": len(generated.cell_diff),
        "duplicate_rows": len(generated.duplicate_rows),
        "renamed_columns": dict(sorted(generated.renamed_columns.items())),
        "error_census": {
            kind.value: count for kind, count in sorted(
                dataset.error_census().items(), key=lambda item: item[0].value
            )
        },
        "model_counts": generated.model_counts,
        "dirty_sha256": _sha256(to_csv_text(dataset.dirty)),
        "clean_sha256": _sha256(to_csv_text(dataset.clean)),
        "cocoon": _cocoon_scores(generated),
    }
    # Stream stats only where the spec makes traffic promises — keeps the
    # cheap scenarios cheap and pins the drift pair's replan counters.
    if spec.expect_drift or spec.batch_parity:
        cell["stream"] = _stream_stats(generated)
    return cell


def build_payload(names: Optional[Iterable[str]] = None) -> Dict[str, Any]:
    """The full golden payload for the built-in catalogue (or a subset)."""
    specs = builtin_specs()
    selected = list(names) if names is not None else sorted(specs)
    cells: Dict[str, Any] = {}
    for name in selected:
        cells[name] = scenario_cell(generate(specs[name]))
    return {
        "schema_version": SCHEMA_VERSION,
        "config": {"seed": 0, "scale": 0.05, "scenarios": len(cells)},
        "cells": cells,
    }


def write_golden(path: Union[str, Path] = GOLDEN_PATH, payload: Optional[Dict[str, Any]] = None) -> Path:
    """Write (refresh) the committed corpus; returns the path written."""
    target = Path(path)
    target.write_text(canonical_json(payload or build_payload()), encoding="utf-8")
    return target


def check_golden(path: Union[str, Path] = GOLDEN_PATH) -> List[str]:
    """Regenerate and diff against the committed corpus (empty = clean).

    Also enforces that the committed file itself is in canonical form, so a
    hand-edit that happens to parse equal still fails the gate.
    """
    target = Path(path)
    if not target.exists():
        return [f"golden corpus missing: {target}"]
    expected = load_golden(target)
    differences = diff_golden(expected, build_payload())
    committed = target.read_text(encoding="utf-8")
    if committed != canonical_json(expected):
        differences.append(f"{target.name} is not in canonical JSON form (refresh it)")
    return differences
