"""Attribution scorecard: join cell lineage against scenario ground truth.

Scenario generation (:mod:`repro.scenarios.spec`) knows exactly which cells
it corrupted; cell lineage (:mod:`repro.obs.lineage`) knows exactly which
cells the cleaner touched and which operator touched them last.  Joining
the two answers the question the aggregate precision/recall numbers cannot:
*which operator* fixed the injected errors, which operator rewrote cells it
should have left alone, and what slipped through untouched.

Per scenario, every ground-truth corrupted cell and every lineage-changed
cell lands in exactly one bucket:

``true_fix``
    a corrupted cell the cleaner restored to the ground-truth clean value
    (strict comparison), credited to the operator that last edited it;
``false_fix``
    a cell the cleaner changed that either was never corrupted or was
    rewritten to something other than the clean value;
``missed``
    a corrupted cell with no net lineage change whose row also survived —
    nobody even tried (cells on removed rows are counted separately).

Row removals get the same treatment against the scenario's injected
duplicate rows: ``true_remove`` / ``false_remove`` / ``missed_duplicates``.

The scorecard also reconciles against the evaluation path: the
:class:`~repro.evaluation.runner.ExperimentRunner`'s CocoonSystem reports
``detected``/``repaired`` as the cleaner's canonical cell repairs, and every
one of those (on a surviving row) must be explained by a lineage record —
``unexplained_repairs`` is empty whenever the lineage contract holds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.pipeline import CocoonCleaner
from repro.core.result import CleaningResult
from repro.obs.lineage import values_strictly_differ
from repro.scenarios.catalog import get_scenario
from repro.scenarios.spec import GeneratedScenario, ScenarioSpec, generate

#: The per-operator counter keys, in reporting order.
CELL_BUCKETS = ("true_fix", "false_fix")
ROW_BUCKETS = ("true_remove", "false_remove")


def _empty_entry() -> Dict[str, int]:
    return {bucket: 0 for bucket in CELL_BUCKETS + ROW_BUCKETS}


@dataclass
class AttributionScorecard:
    """Per-operator attribution for one scenario run."""

    scenario: str
    #: operator → {true_fix, false_fix, true_remove, false_remove}.
    per_operator: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: Corrupted cells nobody touched (row survived).
    missed: int = 0
    #: Corrupted cells whose row the cleaner removed instead of repairing.
    removed_corrupted: int = 0
    #: Injected duplicate rows that survived cleaning.
    missed_duplicates: int = 0
    #: Ground-truth sizes, for rates.
    corrupted_cells: int = 0
    duplicate_rows: int = 0
    #: Reconciliation with the evaluation path (see module docstring).
    runner_detected: int = 0
    runner_repaired: int = 0
    lineage_net_cells: int = 0
    unexplained_repairs: List[Tuple[int, str]] = field(default_factory=list)

    def _bucket_total(self, bucket: str) -> int:
        return sum(entry[bucket] for entry in self.per_operator.values())

    @property
    def true_fixes(self) -> int:
        return self._bucket_total("true_fix")

    @property
    def false_fixes(self) -> int:
        return self._bucket_total("false_fix")

    @property
    def true_removes(self) -> int:
        return self._bucket_total("true_remove")

    @property
    def false_removes(self) -> int:
        return self._bucket_total("false_remove")

    @property
    def reconciled(self) -> bool:
        """Every canonical repair on a surviving row has a lineage explanation."""
        return not self.unexplained_repairs

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "per_operator": {
                op: dict(entry) for op, entry in sorted(self.per_operator.items())
            },
            "totals": {
                "true_fix": self.true_fixes,
                "false_fix": self.false_fixes,
                "missed": self.missed,
                "removed_corrupted": self.removed_corrupted,
                "true_remove": self.true_removes,
                "false_remove": self.false_removes,
                "missed_duplicates": self.missed_duplicates,
            },
            "ground_truth": {
                "corrupted_cells": self.corrupted_cells,
                "duplicate_rows": self.duplicate_rows,
            },
            "reconciliation": {
                "runner_detected": self.runner_detected,
                "runner_repaired": self.runner_repaired,
                "lineage_net_cells": self.lineage_net_cells,
                "unexplained_repairs": [list(cell) for cell in self.unexplained_repairs],
                "reconciled": self.reconciled,
            },
        }


def score_result(
    generated: GeneratedScenario, result: CleaningResult
) -> AttributionScorecard:
    """Score one finished cleaning run against its scenario's ground truth."""
    recorder = result.lineage
    if recorder is None:
        raise ValueError(
            "cleaning result carries no lineage recorder; run through "
            "CocoonCleaner (or clean_chunked) from this version of the pipeline"
        )
    card = AttributionScorecard(
        scenario=generated.spec.name,
        corrupted_cells=len(generated.cell_diff),
        duplicate_rows=len(generated.duplicate_rows),
    )

    changed = recorder.changed_cells()
    editor = recorder.last_editor()
    removed = recorder.removed_row_ids()
    card.lineage_net_cells = len(changed)

    def entry(operator: str) -> Dict[str, int]:
        return card.per_operator.setdefault(operator, _empty_entry())

    # -- cells: lineage-changed vs ground-truth corrupted -------------------------
    truth = generated.cell_diff  # (row, column) -> (clean_value, dirty_value)
    for cell, (_before, after) in changed.items():
        operator = editor[cell]
        if cell in truth:
            clean_value = truth[cell][0]
            bucket = "true_fix" if not values_strictly_differ(after, clean_value) else "false_fix"
        else:
            bucket = "false_fix"
        entry(operator)[bucket] += 1
    for cell in truth:
        if cell in changed:
            continue
        if cell[0] in removed:
            card.removed_corrupted += 1
        else:
            card.missed += 1

    # -- rows: lineage removals vs injected duplicates ----------------------------
    duplicates = set(generated.duplicate_rows)
    remover: Dict[int, str] = {
        record["row_id"]: record["operator"]
        for record in recorder.records
        if record["event"] == "remove"
    }
    for row_id, operator in remover.items():
        bucket = "true_remove" if row_id in duplicates else "false_remove"
        entry(operator)[bucket] += 1
    card.missed_duplicates = sum(1 for row in duplicates if row not in removed)

    # -- reconciliation with the evaluation path ----------------------------------
    # The ExperimentRunner's CocoonSystem reports detected/repaired straight
    # from repaired_cells(); reproduce that join here and demand that every
    # canonical repair on a surviving row carries a lineage explanation.
    repaired = result.repaired_cells()
    card.runner_detected = len(repaired)
    card.runner_repaired = len(repaired)
    card.unexplained_repairs = sorted(
        cell for cell in repaired if cell[0] not in removed and cell not in changed
    )
    return card


def score_scenario(
    spec: Union[str, ScenarioSpec], result: Optional[CleaningResult] = None
) -> AttributionScorecard:
    """Generate ``spec``, clean its dirty table (unless ``result`` is supplied
    by the caller), and score the run."""
    if isinstance(spec, str):
        spec = get_scenario(spec)
    generated = generate(spec)
    if result is None:
        result = CocoonCleaner().clean(generated.dataset.dirty)
    return score_result(generated, result)


def render_scorecard(card: AttributionScorecard) -> str:
    """Human-readable scorecard (the ``scorecard`` CLI command's output)."""
    lines = [
        f"{card.scenario}: {card.corrupted_cells} corrupted cells, "
        f"{card.duplicate_rows} duplicate rows injected"
    ]
    lines.append(
        f"  cells: {card.true_fixes} true fixes, {card.false_fixes} false fixes, "
        f"{card.missed} missed, {card.removed_corrupted} resolved by row removal"
    )
    if card.duplicate_rows or card.true_removes or card.false_removes:
        lines.append(
            f"  rows:  {card.true_removes} true removals, "
            f"{card.false_removes} false removals, "
            f"{card.missed_duplicates} duplicates kept"
        )
    if card.per_operator:
        width = max(len(op) for op in card.per_operator)
        header = f"  {'operator'.ljust(width)}  {'true':>5}  {'false':>5}  {'t-rm':>5}  {'f-rm':>5}"
        lines.append(header)
        for op in sorted(card.per_operator):
            e = card.per_operator[op]
            lines.append(
                f"  {op.ljust(width)}  {e['true_fix']:>5}  {e['false_fix']:>5}  "
                f"{e['true_remove']:>5}  {e['false_remove']:>5}"
            )
    status = "reconciled" if card.reconciled else (
        f"UNRECONCILED ({len(card.unexplained_repairs)} repairs without lineage)"
    )
    lines.append(
        f"  runner: detected={card.runner_detected} repaired={card.runner_repaired} "
        f"lineage net cells={card.lineage_net_cells} [{status}]"
    )
    return "\n".join(lines)
