"""repro.scenarios — composable error models, scenario specs, traffic replay.

The scenario engine manufactures adversarial inputs on purpose instead of
waiting for them to be found by accident:

* :mod:`repro.scenarios.models` — seeded, composable error models, each
  returning a corrupted table **plus an exact ground-truth diff**;
* :mod:`repro.scenarios.spec` — JSON-round-trippable scenario specs and the
  deterministic :func:`~repro.scenarios.spec.generate` composer whose
  output the existing :class:`~repro.evaluation.runner.ExperimentRunner`
  scores end-to-end;
* :mod:`repro.scenarios.catalog` — the built-in scenario catalogue behind
  ``GOLDEN_scenarios.json``;
* :mod:`repro.scenarios.replay` — the traffic-replay harness driving the
  HTTP gateway / stream service with scenario batches, asserting parity
  and drift behaviour;
* :mod:`repro.scenarios.corpus` — the golden-corpus build/check/refresh
  helpers, exposed through ``python -m repro.scenarios``.
"""

from repro.scenarios.attribution import (
    AttributionScorecard,
    render_scorecard,
    score_result,
    score_scenario,
)
from repro.scenarios.catalog import builtin_specs, get_scenario, scenario_names
from repro.scenarios.corpus import GOLDEN_PATH, build_payload, check_golden, write_golden
from repro.scenarios.replay import (
    ReplayMismatch,
    ReplayReport,
    replay_http,
    replay_inprocess,
    replay_scenario,
)
from repro.scenarios.models import (
    MODEL_TYPES,
    AdversarialValueModel,
    CellEdit,
    DuplicateStormModel,
    ErrorModel,
    FDViolationModel,
    KeywordColumnModel,
    LocaleMixModel,
    ModelOutcome,
    NullSpikeModel,
    ScenarioError,
    SchemaEvolutionModel,
    TypoModel,
    UnitDriftModel,
    model_from_dict,
)
from repro.scenarios.spec import (
    GeneratedScenario,
    ScenarioPhase,
    ScenarioSpec,
    TrafficSpec,
    generate,
)

__all__ = [
    "AttributionScorecard",
    "GOLDEN_PATH",
    "MODEL_TYPES",
    "ReplayMismatch",
    "ReplayReport",
    "build_payload",
    "check_golden",
    "replay_http",
    "replay_inprocess",
    "replay_scenario",
    "write_golden",
    "AdversarialValueModel",
    "CellEdit",
    "DuplicateStormModel",
    "ErrorModel",
    "FDViolationModel",
    "GeneratedScenario",
    "KeywordColumnModel",
    "LocaleMixModel",
    "ModelOutcome",
    "NullSpikeModel",
    "ScenarioError",
    "ScenarioPhase",
    "ScenarioSpec",
    "SchemaEvolutionModel",
    "TrafficSpec",
    "TypoModel",
    "UnitDriftModel",
    "builtin_specs",
    "generate",
    "get_scenario",
    "model_from_dict",
    "render_scorecard",
    "scenario_names",
    "score_result",
    "score_scenario",
]
