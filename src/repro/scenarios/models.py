"""Composable, seeded error models.

Each model is a small dataclass that transforms a clean :class:`Table` into
a corrupted table **plus an exact ground-truth diff** — the three artefacts
a regression corpus needs: *what* changed, *where*, and *from what*.  The
contract every model obeys (pinned by the hypothesis property suite in
``tests/scenarios/test_model_properties.py``):

* **Seeded determinism** — ``apply(table, rng)`` draws all randomness from
  the caller's ``random.Random``; equal seeds give byte-equal outcomes.
* **Exact diffs** — every output cell that differs from the input under
  :func:`~repro.datasets.base.strict_differs` appears in
  ``ModelOutcome.cell_edits`` (and nothing else does); appended duplicate
  rows and column renames are reported separately, never as cell edits.
* **rate=0.0 is the identity** — no edits, no rows, no renames.

Models compose: :mod:`repro.scenarios.spec` chains them left to right, each
seeing the previous model's output, with a child RNG per model derived from
the scenario seed.  The library covers the error families the roadmap calls
out — classic typos, unit/scale drift, schema evolution, locale mixes,
*correlated* FD violations (whole determinant groups agree on the wrong
value), duplicate storms, and the adversarial values that broke PR 5's SQL
layer (keyword column names, ``'nan'``/``'inf'``/``'Infinity'`` strings,
quotes and escapes).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

import random

from repro.dataframe.column import Column
from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.datasets.base import strict_differs
from repro.datasets.errors import make_typo


class ScenarioError(ValueError):
    """A scenario or model specification that cannot be applied."""


@dataclass(frozen=True)
class CellEdit:
    """One corrupted cell: where it is, what it was, what it became."""

    row: int
    column: str
    clean_value: object
    dirty_value: object


@dataclass
class ModelOutcome:
    """What one model application did to the table."""

    table: Table
    #: Cells whose value changed, addressed in the *output* table.
    cell_edits: List[CellEdit] = field(default_factory=list)
    #: Output-table indices of appended duplicate rows (always a suffix).
    duplicated_rows: List[int] = field(default_factory=list)
    #: Source row of each appended duplicate (parallel to ``duplicated_rows``).
    duplicate_sources: List[int] = field(default_factory=list)
    #: Column renames this model performed (old name -> new name).
    renamed_columns: Dict[str, str] = field(default_factory=dict)


def _scaled_count(rate: float, population: int) -> int:
    """``rate`` of ``population``, truncating but immune to float dust."""
    return int(rate * population + 1e-9)


def _non_empty(value: object) -> bool:
    return not is_null(value) and str(value).strip() != ""


def _parse_finite(value: object) -> Optional[float]:
    try:
        number = float(str(value))
    except (TypeError, ValueError):
        return None
    return number if math.isfinite(number) else None


@dataclass
class ErrorModel:
    """Base class: the rate knob plus the (de)serialisation contract."""

    name: ClassVar[str] = "abstract"
    rate: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ScenarioError(f"{self.name}: rate must be in [0, 1], got {self.rate}")

    # -- to be provided by concrete models -----------------------------------------
    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        raise NotImplementedError

    # -- JSON round-trip -----------------------------------------------------------
    def params(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def to_dict(self) -> Dict[str, Any]:
        return {"model": self.name, **self.params()}

    # -- shared helpers ------------------------------------------------------------
    def _target_columns(self, table: Table, requested: Optional[List[str]]) -> List[str]:
        if requested is None:
            return list(table.column_names)
        missing = [c for c in requested if not table.has_column(c)]
        if missing:
            raise ScenarioError(
                f"{self.name}: column(s) {missing} not in table "
                f"(has {table.column_names})"
            )
        return list(requested)

    def _pick_cells(
        self,
        table: Table,
        columns: List[str],
        rng: random.Random,
        eligible,
    ) -> List[Tuple[int, str]]:
        """Sample ``rate`` of the eligible cells, in deterministic order."""
        cells = [
            (row, column)
            for column in columns
            for row, value in enumerate(table.column(column).values)
            if eligible(value)
        ]
        count = _scaled_count(self.rate, len(cells))
        if not count:
            return []
        return sorted(rng.sample(cells, count))

    def _substitute(
        self,
        table: Table,
        chosen: List[Tuple[int, str]],
        corrupt,
    ) -> ModelOutcome:
        """Apply a per-cell corruption function; no-op edits are dropped."""
        values = {c.name: list(c.values) for c in table.columns}
        edits: List[CellEdit] = []
        for row, column in chosen:
            clean_value = values[column][row]
            dirty_value = corrupt(clean_value)
            if not strict_differs(dirty_value, clean_value):
                continue
            values[column][row] = dirty_value
            edits.append(CellEdit(row, column, clean_value, dirty_value))
        out = Table(table.name, [Column(c.name, values[c.name]) for c in table.columns])
        return ModelOutcome(table=out, cell_edits=edits)


@dataclass
class TypoModel(ErrorModel):
    """Classic single-character edits on string cells."""

    name: ClassVar[str] = "typos"
    columns: Optional[List[str]] = None
    min_length: int = 3

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        targets = self._target_columns(table, self.columns)
        chosen = self._pick_cells(
            table, targets, rng,
            lambda v: _non_empty(v) and len(str(v)) >= self.min_length,
        )
        return self._substitute(table, chosen, lambda v: make_typo(str(v), rng))


@dataclass
class UnitDriftModel(ErrorModel):
    """Numeric values silently change unit/scale (metres -> millimetres)."""

    name: ClassVar[str] = "unit_drift"
    columns: Optional[List[str]] = None
    factor: float = 1000.0

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        targets = self._target_columns(table, self.columns)
        chosen = self._pick_cells(
            table, targets, rng, lambda v: _parse_finite(v) is not None
        )

        def corrupt(value: object) -> str:
            scaled = _parse_finite(value) * self.factor  # type: ignore[operator]
            return str(int(scaled)) if float(scaled).is_integer() else str(scaled)

        return self._substitute(table, chosen, corrupt)


#: Boolean-ish surface forms the ``codes`` schema-evolution mode migrates.
_CODE_MAP = {"yes": "Y", "no": "N", "true": "T", "false": "F", "1": "Y", "0": "N"}

_SCHEMA_MODES = ("uppercase", "zero_pad", "codes", "prefixed")


@dataclass
class SchemaEvolutionModel(ErrorModel):
    """A producer migrated its value representation mid-dataset.

    ``mode`` picks the migration: ``uppercase`` (case convention change),
    ``zero_pad`` (numeric ids gain fixed width), ``codes`` (booleans become
    single-letter codes), ``prefixed`` (a version tag is prepended).
    """

    name: ClassVar[str] = "schema_evolution"
    columns: Optional[List[str]] = None
    mode: str = "uppercase"
    width: int = 6
    prefix: str = "v2:"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in _SCHEMA_MODES:
            raise ScenarioError(
                f"{self.name}: mode must be one of {_SCHEMA_MODES}, got {self.mode!r}"
            )

    def _eligible(self, value: object) -> bool:
        if not _non_empty(value):
            return False
        text = str(value)
        if self.mode == "uppercase":
            return text.upper() != text
        if self.mode == "zero_pad":
            return text.isdigit() and len(text) < self.width
        if self.mode == "codes":
            return text.strip().lower() in _CODE_MAP
        return True  # prefixed: any non-empty value

    def _corrupt(self, value: object) -> str:
        text = str(value)
        if self.mode == "uppercase":
            return text.upper()
        if self.mode == "zero_pad":
            return text.zfill(self.width)
        if self.mode == "codes":
            return _CODE_MAP[text.strip().lower()]
        return self.prefix + text

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        targets = self._target_columns(table, self.columns)
        chosen = self._pick_cells(table, targets, rng, self._eligible)
        return self._substitute(table, chosen, self._corrupt)


#: Vowels gain diacritics under the ``locale_mix`` accent branch.
_ACCENTS = str.maketrans("aeiouAEIOU", "áéíóúÁÉÍÓÚ")


@dataclass
class LocaleMixModel(ErrorModel):
    """A slice of the data arrives in another locale/encoding convention.

    Decimal numbers gain a decimal *comma*; plain text gains accented
    vowels (the mojibake-adjacent shapes a UTF-8 pipeline must survive).
    """

    name: ClassVar[str] = "locale_mix"
    columns: Optional[List[str]] = None

    @staticmethod
    def _corrupt(value: object) -> str:
        text = str(value)
        if _parse_finite(text) is not None and "." in text:
            return text.replace(".", ",")
        return text.translate(_ACCENTS)

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        chosen = self._pick_cells(
            table,
            self._target_columns(table, self.columns),
            rng,
            lambda v: _non_empty(v) and strict_differs(self._corrupt(v), v),
        )
        return self._substitute(table, chosen, self._corrupt)


@dataclass
class FDViolationModel(ErrorModel):
    """Correlated functional-dependency violations.

    ``rate`` selects a fraction of the *determinant groups*; within each
    selected group every row (or a ``rows_fraction`` of them) gets the
    **same** wrong dependent value borrowed from another group — so the
    violation is internally consistent and a naive majority vote inside the
    group cannot recover the truth.
    """

    name: ClassVar[str] = "fd_violations"
    determinant: str = ""
    dependent: str = ""
    rows_fraction: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.determinant or not self.dependent:
            raise ScenarioError(f"{self.name}: determinant and dependent are required")
        if not 0.0 < self.rows_fraction <= 1.0:
            raise ScenarioError(
                f"{self.name}: rows_fraction must be in (0, 1], got {self.rows_fraction}"
            )

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        for column in (self.determinant, self.dependent):
            if not table.has_column(column):
                raise ScenarioError(
                    f"{self.name}: column {column!r} not in table ({table.column_names})"
                )
        det_values = table.column(self.determinant).values
        dep_values = table.column(self.dependent).values
        groups: Dict[str, List[int]] = {}
        for row, value in enumerate(det_values):
            if _non_empty(value):
                groups.setdefault(str(value), []).append(row)
        distinct_deps = sorted({str(v) for v in dep_values if _non_empty(v)})
        keys = sorted(groups)
        count = _scaled_count(self.rate, len(keys))
        chosen_keys = sorted(rng.sample(keys, count)) if count else []

        values = {c.name: list(c.values) for c in table.columns}
        edits: List[CellEdit] = []
        for key in chosen_keys:
            rows = [r for r in groups[key] if _non_empty(values[self.dependent][r])]
            if not rows:
                continue
            originals = {str(values[self.dependent][r]) for r in rows}
            alternatives = [v for v in distinct_deps if v not in originals]
            if not alternatives:
                continue
            replacement = rng.choice(alternatives)
            take = max(1, _scaled_count(self.rows_fraction, len(rows)))
            group_rows = sorted(rng.sample(rows, take)) if take < len(rows) else rows
            for row in group_rows:
                clean_value = values[self.dependent][row]
                values[self.dependent][row] = replacement
                edits.append(CellEdit(row, self.dependent, clean_value, replacement))
        out = Table(table.name, [Column(c.name, values[c.name]) for c in table.columns])
        return ModelOutcome(table=out, cell_edits=edits)


@dataclass
class DuplicateStormModel(ErrorModel):
    """A burst of repeated rows, optionally with near-duplicate typos.

    ``rate`` is the number of appended duplicates as a fraction of the
    input's row count; ``near_typo_rate`` is the probability that an
    appended duplicate gets one typo'd cell (a *near* duplicate, which
    exercises fuzzy dedup instead of exact).  Duplicates are reported via
    ``duplicated_rows``/``duplicate_sources`` — they are additions, not
    cell errors — while near-duplicate typos are regular cell edits on the
    appended rows.
    """

    name: ClassVar[str] = "duplicate_storm"
    near_typo_rate: float = 0.0
    min_length: int = 3

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.near_typo_rate <= 1.0:
            raise ScenarioError(
                f"{self.name}: near_typo_rate must be in [0, 1], got {self.near_typo_rate}"
            )

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        rows = table.num_rows
        count = _scaled_count(self.rate, rows)
        if count == 0:
            return ModelOutcome(table=table.copy())
        sources = [rng.randrange(rows) for _ in range(count)]
        values = {c.name: list(c.values) for c in table.columns}
        edits: List[CellEdit] = []
        for offset, source in enumerate(sources):
            out_row = rows + offset
            for name in values:
                values[name].append(values[name][source])
            if self.near_typo_rate and rng.random() < self.near_typo_rate:
                eligible = [
                    name
                    for name in table.column_names
                    if _non_empty(values[name][out_row])
                    and len(str(values[name][out_row])) >= self.min_length
                ]
                if eligible:
                    column = rng.choice(eligible)
                    clean_value = values[column][out_row]
                    dirty_value = make_typo(str(clean_value), rng)
                    if strict_differs(dirty_value, clean_value):
                        values[column][out_row] = dirty_value
                        edits.append(CellEdit(out_row, column, clean_value, dirty_value))
        out = Table(table.name, [Column(c.name, values[c.name]) for c in table.columns])
        return ModelOutcome(
            table=out,
            cell_edits=edits,
            duplicated_rows=list(range(rows, rows + count)),
            duplicate_sources=sources,
        )


#: The value zoo that has historically broken SQL generation and comparison:
#: non-finite-looking strings, quotes, escapes, separators, overflow floats.
DEFAULT_ADVERSARIAL_TOKENS = (
    "nan",
    "NaN",
    "inf",
    "-inf",
    "Infinity",
    "1e309",
    "O'Hare",
    '"quoted"',
    "back\\slash",
    "semi;colon",
    "comma,value",
    "null",
)


@dataclass
class AdversarialValueModel(ErrorModel):
    """Replace cells with values chosen to stress parsers and comparators."""

    name: ClassVar[str] = "adversarial_values"
    columns: Optional[List[str]] = None
    tokens: List[str] = field(default_factory=lambda: list(DEFAULT_ADVERSARIAL_TOKENS))

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.tokens:
            raise ScenarioError(f"{self.name}: tokens must not be empty")

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        chosen = self._pick_cells(
            table, self._target_columns(table, self.columns), rng, _non_empty
        )
        return self._substitute(table, chosen, lambda v: rng.choice(self.tokens))


#: SQL keywords that double as plausible column names.
DEFAULT_KEYWORD_POOL = (
    "select",
    "from",
    "where",
    "order",
    "group",
    "join",
    "table",
    "key",
    "index",
    "desc",
)


@dataclass
class KeywordColumnModel(ErrorModel):
    """Rename a fraction of the columns to SQL keywords.

    Not a cell-error model: the *schema* becomes adversarial (PR 5's
    keyword-quoting bug class).  Renames are reported via
    ``renamed_columns`` and the values are untouched.
    """

    name: ClassVar[str] = "keyword_columns"
    keywords: List[str] = field(default_factory=lambda: list(DEFAULT_KEYWORD_POOL))

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.keywords:
            raise ScenarioError(f"{self.name}: keywords must not be empty")

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        names = list(table.column_names)
        count = _scaled_count(self.rate, len(names))
        chosen = sorted(rng.sample(names, count)) if count else []
        pool = [k for k in self.keywords if k not in set(names)]
        renames: Dict[str, str] = {}
        for old in chosen:
            if not pool:
                break
            renames[old] = pool.pop(rng.randrange(len(pool)))
        columns = [
            Column(renames.get(c.name, c.name), list(c.values), c.dtype)
            for c in table.columns
        ]
        return ModelOutcome(
            table=Table(table.name, columns), renamed_columns=renames
        )


@dataclass
class NullSpikeModel(ErrorModel):
    """A burst of missing values — disguised tokens or genuine NULLs."""

    name: ClassVar[str] = "null_spike"
    columns: Optional[List[str]] = None
    tokens: List[str] = field(default_factory=lambda: ["N/A", "null", "--", "unknown"])
    as_null: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.as_null and not self.tokens:
            raise ScenarioError(f"{self.name}: tokens must not be empty")

    def apply(self, table: Table, rng: random.Random) -> ModelOutcome:
        chosen = self._pick_cells(
            table, self._target_columns(table, self.columns), rng, _non_empty
        )
        if self.as_null:
            return self._substitute(table, chosen, lambda v: None)
        return self._substitute(table, chosen, lambda v: rng.choice(self.tokens))


#: Every model, keyed by its spec name.
MODEL_TYPES: Dict[str, Type[ErrorModel]] = {
    cls.name: cls
    for cls in (
        TypoModel,
        UnitDriftModel,
        SchemaEvolutionModel,
        LocaleMixModel,
        FDViolationModel,
        DuplicateStormModel,
        AdversarialValueModel,
        KeywordColumnModel,
        NullSpikeModel,
    )
}


def model_from_dict(data: Dict[str, Any]) -> ErrorModel:
    """Rebuild a model from its ``to_dict`` form; unknown names fail loudly."""
    if not isinstance(data, dict) or "model" not in data:
        raise ScenarioError(f"model spec must be a dict with a 'model' key, got {data!r}")
    params = dict(data)
    name = params.pop("model")
    if name not in MODEL_TYPES:
        raise ScenarioError(
            f"unknown error model {name!r}; valid models: {sorted(MODEL_TYPES)}"
        )
    try:
        return MODEL_TYPES[name](**params)
    except TypeError as exc:
        raise ScenarioError(f"bad parameters for model {name!r}: {exc}")
