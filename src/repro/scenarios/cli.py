"""Command-line entry point: ``python -m repro.scenarios``.

Commands::

    list                       the built-in catalogue, one line per scenario
    generate [NAME...]         generate scenarios; --out DIR writes
                               spec.json / dirty.csv / clean.csv / diff.json
                               per scenario, otherwise a summary line each
    replay  [NAME...]          replay scenarios (--mode inprocess|http) and
                               assert parity + drift expectations
    scorecard [NAME...]        clean each scenario and join its cell lineage
                               against the ground-truth diff: true-fix /
                               false-fix / missed per operator

    --golden                   regression-check GOLDEN_scenarios.json
    --golden --refresh         rewrite it from the current code (the only
                               sanctioned way to move the corpus)

``--spec PATH`` feeds a scenario spec JSON file instead of a catalogue name,
so external scenarios ride the same machinery.  Exit codes follow
``repro.experiments``: 0 success, 1 golden drift / replay mismatch, 2 bad
arguments (unknown scenarios are rejected with the valid choices listed).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.dataframe.io import to_csv_text
from repro.scenarios.attribution import render_scorecard, score_scenario
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.corpus import GOLDEN_PATH, check_golden, write_golden
from repro.scenarios.models import ScenarioError
from repro.scenarios.replay import ReplayMismatch, replay_scenario
from repro.scenarios.spec import GeneratedScenario, ScenarioSpec, generate


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.scenarios",
        description="Generate, replay, and regression-gate cleaning scenarios.",
    )
    parser.add_argument("command", nargs="?",
                        choices=["list", "generate", "replay", "scorecard"],
                        help="what to do (omit when using --golden)")
    parser.add_argument("names", nargs="*",
                        help="scenario names (default: the whole catalogue)")
    parser.add_argument("--spec", action="append", default=None, metavar="PATH",
                        help="load a scenario spec JSON file (repeatable; joins the selection)")
    parser.add_argument("--out", default=None, metavar="DIR",
                        help="with generate: write spec/dirty/clean/diff artifacts under DIR")
    parser.add_argument("--mode", choices=["inprocess", "http"], default="inprocess",
                        help="with replay: drive the engine directly or a booted HTTP gateway")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON instead of summary lines")
    parser.add_argument("--golden", action="store_true",
                        help="regression-check the committed scenario corpus (exit 1 on drift)")
    parser.add_argument("--refresh", action="store_true",
                        help="with --golden: rewrite the corpus from the current code")
    parser.add_argument("--golden-path", default=str(GOLDEN_PATH), metavar="PATH",
                        help="corpus location (default: the committed GOLDEN_scenarios.json)")
    return parser


def _selected_specs(args: argparse.Namespace) -> List[ScenarioSpec]:
    specs = [get_scenario(name) for name in args.names]
    for path in args.spec or []:
        specs.append(ScenarioSpec.from_json(Path(path).read_text(encoding="utf-8")))
    if not specs:
        specs = [get_scenario(name) for name in scenario_names()]
    return specs


def _write_artifacts(out_dir: Path, generated: GeneratedScenario) -> Path:
    target = out_dir / generated.spec.name
    target.mkdir(parents=True, exist_ok=True)
    (target / "spec.json").write_text(generated.spec.to_json() + "\n", encoding="utf-8")
    (target / "dirty.csv").write_text(to_csv_text(generated.dataset.dirty), encoding="utf-8")
    (target / "clean.csv").write_text(to_csv_text(generated.dataset.clean), encoding="utf-8")
    diff = [
        {"row": row, "column": column, "clean": clean_value, "dirty": dirty_value}
        for (row, column), (clean_value, dirty_value) in sorted(
            generated.cell_diff.items(), key=lambda item: (item[0][0], item[0][1])
        )
    ]
    (target / "diff.json").write_text(
        json.dumps(diff, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


def _cmd_generate(args: argparse.Namespace) -> int:
    out_dir = Path(args.out) if args.out else None
    summaries = []
    for spec in _selected_specs(args):
        generated = generate(spec)
        summary = {
            "scenario": spec.name,
            "rows": generated.dataset.dirty.num_rows,
            "columns": len(generated.dataset.dirty.column_names),
            "cells_corrupted": len(generated.cell_diff),
            "duplicate_rows": len(generated.duplicate_rows),
            "renamed_columns": generated.renamed_columns,
        }
        if out_dir is not None:
            summary["path"] = str(_write_artifacts(out_dir, generated))
        summaries.append(summary)
        if not args.json:
            where = f" -> {summary['path']}" if out_dir is not None else ""
            print(f"{spec.name}: {summary['rows']} rows x {summary['columns']} cols, "
                  f"{summary['cells_corrupted']} corrupted cells, "
                  f"{summary['duplicate_rows']} duplicates{where}")
    if args.json:
        print(json.dumps(summaries, indent=1, sort_keys=True))
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    reports = []
    failures = 0
    for spec in _selected_specs(args):
        try:
            report = replay_scenario(spec, mode=args.mode)
        except ReplayMismatch as exc:
            failures += 1
            print(f"FAIL {spec.name}: {exc}", file=sys.stderr)
            continue
        reports.append(report.to_dict())
        if not args.json:
            parity = [
                f"{label}={value}" for label, value in (
                    ("stream_parity", report.stream_parity),
                    ("batch_parity", report.batch_parity),
                    ("job_parity", report.job_parity),
                ) if value is not None
            ]
            print(f"ok {spec.name} [{report.mode}]: {report.batches} batches, "
                  f"{report.replans} replans" + (", " + ", ".join(parity) if parity else ""))
    if args.json:
        print(json.dumps(reports, indent=1, sort_keys=True))
    return 1 if failures else 0


def _cmd_scorecard(args: argparse.Namespace) -> int:
    cards = []
    unreconciled = 0
    for spec in _selected_specs(args):
        card = score_scenario(spec)
        cards.append(card.to_dict())
        if not card.reconciled:
            unreconciled += 1
        if not args.json:
            print(render_scorecard(card))
    if args.json:
        print(json.dumps(cards, indent=1, sort_keys=True))
    if unreconciled:
        print(f"{unreconciled} scenario(s) failed lineage reconciliation", file=sys.stderr)
        return 1
    return 0


def _cmd_golden(args: argparse.Namespace) -> int:
    path = Path(args.golden_path)
    if args.refresh:
        write_golden(path)
        print(f"golden scenario corpus refreshed: {path}")
        return 0
    differences = check_golden(path)
    if differences:
        print(f"golden scenario drift detected ({len(differences)} difference(s)):")
        for line in differences:
            print(f"  {line}")
        return 1
    print(f"golden scenario check passed: {path}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.refresh and not args.golden:
        parser.error("--refresh only makes sense together with --golden")
    if args.golden and args.command:
        parser.error("--golden runs on the whole catalogue; drop the command")
    if not args.golden and not args.command:
        parser.error("pick a command (list/generate/replay) or pass --golden")
    try:
        if args.golden:
            return _cmd_golden(args)
        if args.command == "list":
            for name in scenario_names():
                spec = get_scenario(name)
                print(f"{name}: {spec.description or spec.base_dataset}")
            return 0
        if args.command == "generate":
            return _cmd_generate(args)
        if args.command == "scorecard":
            return _cmd_scorecard(args)
        return _cmd_replay(args)
    except (ScenarioError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
