"""The traffic-replay harness: scenarios driven through the live paths.

Two modes over one report shape:

* ``inprocess`` — the scenario's micro-batches feed a
  :class:`~repro.stream.engine.StreamingCleaner` directly (fast enough for
  tier-1); span names are collected under a forced ``scenario.replay`` root
  so drift assertions ("a ``stream.replan`` span happened") work even with
  tracing globally off.
* ``http`` — a real :func:`~repro.server.http.make_server` gateway is
  booted on an ephemeral port and fed a **mixed workload**: the stream
  batches via ``POST /v1/streams/{name}/batches`` (with 429 back-off) and
  the whole dirty table as a batch job via ``POST /v1/jobs``.  The new
  ``GET /v1/streams/{name}/result`` endpoint then yields the cumulative
  stream output, which is asserted byte-identical to an in-process
  reference stream fed the same CSV-round-tripped batches; the job result
  is asserted byte-identical to the in-process pipeline; and for
  ``batch_parity`` scenarios the stream CSV must equal the job CSV — the
  streaming path and the batch path agreeing on the same bytes over HTTP.

Every replay records per-scenario metrics
(``repro_scenario_events_total{scenario,event}``) on the
:mod:`repro.obs` registry, so scenario traffic shows up on the same
Prometheus surface as everything else.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Union

from repro.core.context import CleaningConfig
from repro.core.pipeline import CocoonCleaner
from repro.dataframe.io import read_csv_text, to_csv_text
from repro.llm.simulated import SimulatedSemanticLLM
from repro.obs import get_tracer
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import get_registry as get_default_registry
from repro.scenarios.models import ScenarioError
from repro.scenarios.spec import GeneratedScenario, ScenarioSpec, generate
from repro.server.gateway import CleaningGateway
from repro.server.http import make_server
from repro.stream.engine import StreamingCleaner

#: Span names whose presence/absence the drift assertions are defined over.
REPLAN_SPAN = "stream.replan"
PRIME_SPAN = "stream.prime"


@dataclass
class ReplayReport:
    """What one scenario replay did and proved."""

    scenario: str
    mode: str
    batches: int = 0
    rows_streamed: int = 0
    primes: int = 0
    replans: int = 0
    replayed_batches: int = 0
    stream_llm_calls: int = 0
    retractions: int = 0
    drifted_columns: List[str] = field(default_factory=list)
    #: Sorted unique span names observed during the replay.
    span_names: List[str] = field(default_factory=list)
    #: HTTP stream output == in-process reference stream (http mode only).
    stream_parity: Optional[bool] = None
    #: Stream output == whole-table batch pipeline (asserted when the spec
    #: sets ``batch_parity``).
    batch_parity: Optional[bool] = None
    #: HTTP batch-job output == in-process pipeline (http mode only).
    job_parity: Optional[bool] = None
    backpressure_retries: int = 0
    seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "mode": self.mode,
            "batches": self.batches,
            "rows_streamed": self.rows_streamed,
            "primes": self.primes,
            "replans": self.replans,
            "replayed_batches": self.replayed_batches,
            "stream_llm_calls": self.stream_llm_calls,
            "retractions": self.retractions,
            "drifted_columns": self.drifted_columns,
            "span_names": self.span_names,
            "stream_parity": self.stream_parity,
            "batch_parity": self.batch_parity,
            "job_parity": self.job_parity,
            "backpressure_retries": self.backpressure_retries,
            "seconds": round(self.seconds, 6),
        }


class ReplayMismatch(AssertionError):
    """A replay parity or drift expectation did not hold."""


def _resolve(scenario: Union[ScenarioSpec, GeneratedScenario]) -> GeneratedScenario:
    if isinstance(scenario, GeneratedScenario):
        return scenario
    if isinstance(scenario, ScenarioSpec):
        return generate(scenario)
    raise ScenarioError(
        f"replay_scenario needs a ScenarioSpec or GeneratedScenario, got {type(scenario).__name__}"
    )


def _scenario_config(generated: GeneratedScenario) -> Optional[CleaningConfig]:
    if generated.spec.cleaning_issues is None:
        return None
    return CleaningConfig(enabled_issues=list(generated.spec.cleaning_issues))


def _span_names(trace_ids: List[str]) -> Set[str]:
    tracer = get_tracer()
    names: Set[str] = set()

    def walk(doc: Dict[str, Any]) -> None:
        names.add(doc["name"])
        for child in doc.get("children", ()):
            walk(child)

    for trace_id in trace_ids:
        for doc in tracer.trace_tree(trace_id):
            walk(doc)
    return names


def _count(registry: MetricsRegistry, scenario: str, event: str, delta: int = 1) -> None:
    registry.counter(
        "repro_scenario_events_total",
        help="Scenario replay events (batches, jobs, retries, replans)",
        label_names=("scenario", "event"),
    ).inc(delta, scenario=scenario, event=event)


def _check_drift_expectation(generated: GeneratedScenario, report: ReplayReport) -> None:
    """Enforce the spec's drift claim.

    ``expect_drift=True`` always demands a ``stream.replan`` span.  The
    negative claim is only enforced for specs that declared a traffic
    timeline (phases): a phase-less scenario streamed in arbitrary default
    batches makes no promise about what the drift detector sees — real data
    can drift batch-to-batch purely through row ordering.
    """
    spec = generated.spec
    saw_replan = REPLAN_SPAN in report.span_names and report.replans > 0
    if spec.expect_drift and not saw_replan:
        raise ReplayMismatch(
            f"{spec.name}: expected the stream to re-plan but it never did "
            f"(spans: {report.span_names}, replans={report.replans})"
        )
    if not spec.expect_drift and spec.phases and (
        report.replans or REPLAN_SPAN in report.span_names
    ):
        raise ReplayMismatch(
            f"{spec.name}: stationary scenario re-planned "
            f"(replans={report.replans}, drifted={report.drifted_columns})"
        )


def replay_inprocess(
    scenario: Union[ScenarioSpec, GeneratedScenario],
    metrics_registry: Optional[MetricsRegistry] = None,
    check: bool = True,
) -> ReplayReport:
    """Stream the scenario through a :class:`StreamingCleaner`, no sockets.

    Span names are collected under a forced ``scenario.replay`` root span,
    so the drift assertion works regardless of the global tracing switch.
    With ``check=True`` (default) drift/parity expectations raise
    :class:`ReplayMismatch` instead of only being reported.
    """
    generated = _resolve(scenario)
    spec = generated.spec
    registry = metrics_registry if metrics_registry is not None else get_default_registry()
    config = _scenario_config(generated)
    report = ReplayReport(scenario=spec.name, mode="inprocess")
    started = time.perf_counter()

    trace_id = f"scenario-{spec.name}"
    tracer = get_tracer()
    cleaner = StreamingCleaner(
        name=spec.table_name,
        llm=SimulatedSemanticLLM(),
        config=config,
        detect_drift=True,
        prime_rows=generated.prime_rows,
    )
    drifted: List[str] = []
    with tracer.span("scenario.replay", force=True, trace_id=trace_id, scenario=spec.name):
        for batch in generated.batches():
            result = cleaner.process_batch(batch)
            drifted.extend(result.drifted_columns)
            report.batches += 1
            report.rows_streamed += batch.num_rows
            _count(registry, spec.name, "batches")
    report.span_names = sorted(_span_names([trace_id]))
    report.primes = cleaner.stats.primes
    report.replans = cleaner.stats.replans
    report.replayed_batches = cleaner.stats.replayed_batches
    report.stream_llm_calls = cleaner.stats.llm_calls
    report.retractions = cleaner.stats.retractions
    report.drifted_columns = sorted(set(drifted))
    if report.replans:
        _count(registry, spec.name, "replans", report.replans)

    if spec.batch_parity:
        reference = CocoonCleaner(llm=SimulatedSemanticLLM(), config=config).clean(
            generated.dataset.dirty
        )
        report.batch_parity = to_csv_text(cleaner.cleaned_table()) == to_csv_text(
            reference.cleaned_table
        )
        if check and not report.batch_parity:
            raise ReplayMismatch(
                f"{spec.name}: stream output diverged from the batch pipeline"
            )
    report.seconds = time.perf_counter() - started
    if check:
        _check_drift_expectation(generated, report)
    return report


# -- the HTTP side -----------------------------------------------------------------


class _Client:
    """A tiny urllib JSON client bound to one base URL."""

    def __init__(self, base: str, timeout: float = 60.0):
        self.base = base
        self.timeout = timeout

    def call(self, path: str, payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            self.base + path,
            data=data,
            headers={"Content-Type": "application/json"} if data else {},
        )
        with urllib.request.urlopen(request, timeout=self.timeout) as response:
            return json.loads(response.read())


def replay_http(
    scenario: Union[ScenarioSpec, GeneratedScenario],
    workers: int = 2,
    stream_workers: int = 1,
    max_pending_batches: int = 2,
    check: bool = True,
    timeout: float = 120.0,
) -> ReplayReport:
    """Replay a scenario through a booted HTTP gateway (mixed workload).

    Boots :func:`make_server` on an ephemeral port, posts the scenario's
    micro-batches to the stream endpoint (backing off on 429) while the
    full dirty table runs as a batch job, then asserts:

    * **stream parity** — the served stream result equals an in-process
      reference stream fed the same CSV-round-tripped batches;
    * **job parity** — the served job result equals the in-process
      pipeline on the same CSV;
    * **batch parity** (when the spec promises it) — the stream CSV equals
      the job CSV: both HTTP paths agree byte-for-byte;
    * **drift** — ``stream.replan`` spans appear exactly when
      ``expect_drift`` says they must.
    """
    generated = _resolve(scenario)
    spec = generated.spec
    config = _scenario_config(generated)
    report = ReplayReport(scenario=spec.name, mode="http")
    started = time.perf_counter()

    tracer = get_tracer()
    tracing_before = tracer.enabled
    traces_before = set(tracer.trace_ids())
    tracer.enabled = True  # worker-thread stream spans need a root to attach to
    gateway = CleaningGateway(
        workers=workers,
        stream_workers=stream_workers,
        max_pending_batches=max_pending_batches,
        config=config,
        stream_prime_rows=generated.prime_rows,
    )
    registry = gateway.registry
    server = make_server(gateway, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = _Client(f"http://127.0.0.1:{server.port}", timeout=timeout)
    deadline = started + timeout

    def wait_until(predicate, what: str) -> None:
        while not predicate():
            if time.perf_counter() > deadline:
                raise ReplayMismatch(f"{spec.name}: timed out waiting for {what}")
            time.sleep(0.02)

    try:
        batches = generated.batches()
        dirty_csv = to_csv_text(generated.dataset.dirty)
        # The mixed workload: the batch job races the stream batches.
        job = client.call("/v1/jobs", {"csv": dirty_csv, "name": spec.table_name})
        _count(registry, spec.name, "jobs")
        for batch in batches:
            payload = {"csv": to_csv_text(batch), "name": spec.table_name}
            while True:
                try:
                    client.call(f"/v1/streams/{spec.table_name}/batches", payload)
                    break
                except urllib.error.HTTPError as error:
                    if error.code != 429:
                        raise
                    error.read()
                    report.backpressure_retries += 1
                    _count(registry, spec.name, "backpressure_retries")
                    if time.perf_counter() > deadline:
                        raise ReplayMismatch(f"{spec.name}: stuck in backpressure")
                    time.sleep(0.05)
            report.batches += 1
            report.rows_streamed += batch.num_rows
            _count(registry, spec.name, "batches")

        wait_until(
            lambda: client.call(f"/v1/jobs/{job['job_id']}")["done"], "the batch job"
        )
        job_result = client.call(f"/v1/jobs/{job['job_id']}/result")
        if job_result["status"] != "succeeded":
            raise ReplayMismatch(f"{spec.name}: batch job failed: {job_result.get('error')}")

        wait_until(
            lambda: (
                lambda s: s["completed_batches"] == s["submitted_batches"] and not s["failed"]
            )(client.call(f"/v1/streams/{spec.table_name}")),
            "the stream to drain",
        )
        stream_result = client.call(f"/v1/streams/{spec.table_name}/result")
        stats = stream_result["stats"]
        report.primes = stats["primes"]
        report.replans = stats["replans"]
        report.replayed_batches = stats["replayed_batches"]
        report.stream_llm_calls = stats["llm_calls"]
        report.retractions = stats["retractions"]

        # In-process references consume the *same* CSV round-trip the server
        # parsed, so every comparison is bytes-vs-bytes on equal inputs.
        reference_stream = StreamingCleaner(
            name=spec.table_name,
            llm=SimulatedSemanticLLM(),
            config=config,
            detect_drift=True,
            prime_rows=generated.prime_rows,
        )
        drifted: List[str] = []
        for batch in batches:
            rt = read_csv_text(to_csv_text(batch), name=spec.table_name, infer_types=False)
            drifted.extend(reference_stream.process_batch(rt).drifted_columns)
        report.drifted_columns = sorted(set(drifted))
        report.stream_parity = stream_result["csv"] == to_csv_text(
            reference_stream.cleaned_table()
        )
        reference_job = CocoonCleaner(llm=SimulatedSemanticLLM(), config=config).clean(
            read_csv_text(dirty_csv, name=spec.table_name, infer_types=False)
        )
        report.job_parity = job_result["csv"] == to_csv_text(reference_job.cleaned_table)
        if spec.batch_parity:
            report.batch_parity = stream_result["csv"] == job_result["csv"]
    finally:
        server.shutdown()
        server.server_close()
        gateway.shutdown()
        thread.join(timeout=10)
        new_traces = [t for t in get_tracer().trace_ids() if t not in traces_before]
        report.span_names = sorted(_span_names(new_traces))
        tracer.enabled = tracing_before

    report.seconds = time.perf_counter() - started
    if check:
        if not report.stream_parity:
            raise ReplayMismatch(
                f"{spec.name}: HTTP stream result diverged from the in-process reference"
            )
        if not report.job_parity:
            raise ReplayMismatch(
                f"{spec.name}: HTTP job result diverged from the in-process pipeline"
            )
        if spec.batch_parity and not report.batch_parity:
            raise ReplayMismatch(
                f"{spec.name}: stream CSV and batch-job CSV disagree over HTTP"
            )
        _check_drift_expectation(generated, report)
    return report


def replay_scenario(
    scenario: Union[ScenarioSpec, GeneratedScenario],
    mode: str = "inprocess",
    **kwargs: Any,
) -> ReplayReport:
    """Replay one scenario in the chosen mode (``inprocess`` or ``http``)."""
    if mode == "inprocess":
        return replay_inprocess(scenario, **kwargs)
    if mode == "http":
        return replay_http(scenario, **kwargs)
    raise ScenarioError(f"unknown replay mode {mode!r}; use 'inprocess' or 'http'")
