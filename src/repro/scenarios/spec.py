"""Scenario specs: composing error models over a base dataset.

A :class:`ScenarioSpec` is a JSON-round-trippable description of one
corrupted dataset: a registry base dataset, a seed, a list of whole-table
error models, and (optionally) *phases* — row windows with their own
models, which is how drift scenarios are written (a stationary prefix, then
a window where the representation changes).  :func:`generate` turns a spec
into a :class:`GeneratedScenario` deterministically:

* each model draws from a child RNG ``random.Random(f"{seed}/{i}/{name}")``
  so inserting a model never perturbs the randomness of its neighbours;
* duplicate rows are tracked by *origin*, and the ground truth is an
  **aligned clean table** (a duplicate carries its source row's clean
  values) so the cell diff stays exact even when the row count grew;
* column renames apply to dirty and aligned clean alike — an adversarial
  *schema* is not a cell error;
* the final diff is recomputed dirty-vs-aligned-clean under
  :func:`~repro.datasets.base.strict_differs`, which makes
  ``dataset.error_cells()`` agree with the generator by construction and
  the result directly scoreable by the existing
  :class:`~repro.evaluation.runner.ExperimentRunner`.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.workflow import ISSUE_ORDER
from repro.dataframe.column import Column
from repro.dataframe.table import Table
from repro.datasets import load_dataset
from repro.datasets.base import (
    BenchmarkDataset,
    ErrorType,
    InjectedError,
    strict_differs,
)
from repro.scenarios.models import (
    CellEdit,
    ErrorModel,
    ModelOutcome,
    ScenarioError,
    model_from_dict,
)

#: How each model's edits are classified in the dataset's error census.
_MODEL_ERROR_TYPES = {
    "typos": ErrorType.TYPO,
    "unit_drift": ErrorType.NUMERIC_OUTLIER,
    "schema_evolution": ErrorType.INCONSISTENCY,
    "locale_mix": ErrorType.INCONSISTENCY,
    "fd_violations": ErrorType.FD_VIOLATION,
    "duplicate_storm": ErrorType.TYPO,  # near-duplicate typo cells
    "adversarial_values": ErrorType.INCONSISTENCY,
    "keyword_columns": ErrorType.INCONSISTENCY,  # (renames only; no cells)
    "null_spike": ErrorType.DMV,
}


@dataclass
class TrafficSpec:
    """How the replay harness micro-batches a scenario's dirty table."""

    batch_rows: int = 16
    #: Priming window for the streaming path; ``None`` defaults to the end
    #: of the first phase (so drift scenarios prime on stationary data
    #: only), or 0 (prime on the first batch) when the spec has no phases.
    prime_rows: Optional[int] = None

    def __post_init__(self) -> None:
        if self.batch_rows < 1:
            raise ScenarioError(f"traffic.batch_rows must be >= 1, got {self.batch_rows}")
        if self.prime_rows is not None and self.prime_rows < 0:
            raise ScenarioError(f"traffic.prime_rows must be >= 0, got {self.prime_rows}")

    def to_dict(self) -> Dict[str, Any]:
        return {"batch_rows": self.batch_rows, "prime_rows": self.prime_rows}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TrafficSpec":
        return cls(**data)


@dataclass
class ScenarioPhase:
    """A row window with its own error models (the drift-writing primitive)."""

    #: Window size in rows; ``None`` means "the remainder of the table" and
    #: is only allowed on the last phase.
    rows: Optional[int]
    models: List[ErrorModel] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"rows": self.rows, "models": [m.to_dict() for m in self.models]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioPhase":
        return cls(
            rows=data.get("rows"),
            models=[model_from_dict(m) for m in data.get("models", [])],
        )


@dataclass
class ScenarioSpec:
    """One deterministic corrupted-dataset recipe."""

    name: str
    base_dataset: str = "hospital"
    seed: int = 0
    scale: float = 0.05
    #: Optional column subset of the base dataset's clean table.
    columns: Optional[List[str]] = None
    #: Whole-table models, applied left to right before any phase.
    models: List[ErrorModel] = field(default_factory=list)
    #: Row-window models; windows partition the table after whole-table models.
    phases: List[ScenarioPhase] = field(default_factory=list)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    #: Whether the streaming path is expected to re-plan on this scenario
    #: (asserted by the drift differential tests and the replay harness).
    expect_drift: bool = False
    #: Whether the stream's cumulative cleaned output is promised to be
    #: byte-identical to the whole-table batch pipeline under this spec's
    #: ``cleaning_issues`` (asserted by the replay harness when set; needs a
    #: priming window whose statistics agree with the whole table for every
    #: non-drifting column).
    batch_parity: bool = False
    #: Restrict the cleaning pipeline to these issues (both batch and
    #: stream sides of a replay), e.g. to the column-level issues for which
    #: stream re-plans preserve batch parity.  ``None`` = all issues.
    cleaning_issues: Optional[List[str]] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not self.name.strip():
            raise ScenarioError("scenario name must not be empty")
        if self.scale <= 0:
            raise ScenarioError(f"scale must be > 0, got {self.scale}")
        for index, phase in enumerate(self.phases):
            if phase.rows is None and index != len(self.phases) - 1:
                raise ScenarioError(
                    f"phase {index}: rows=None (remainder) is only allowed on the last phase"
                )
            if phase.rows is not None and phase.rows < 1:
                raise ScenarioError(f"phase {index}: rows must be >= 1, got {phase.rows}")
        if self.cleaning_issues is not None:
            unknown = [i for i in self.cleaning_issues if i not in ISSUE_ORDER]
            if unknown:
                raise ScenarioError(
                    f"unknown cleaning issue(s) {unknown}; valid: {list(ISSUE_ORDER)}"
                )

    # -- identity ------------------------------------------------------------------
    @property
    def table_name(self) -> str:
        """The SQL-safe table name generated tables carry."""
        return self.name.replace("-", "_")

    # -- JSON round-trip -----------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "base_dataset": self.base_dataset,
            "seed": self.seed,
            "scale": self.scale,
            "columns": self.columns,
            "models": [m.to_dict() for m in self.models],
            "phases": [p.to_dict() for p in self.phases],
            "traffic": self.traffic.to_dict(),
            "expect_drift": self.expect_drift,
            "batch_parity": self.batch_parity,
            "cleaning_issues": self.cleaning_issues,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioSpec":
        if not isinstance(data, dict):
            raise ScenarioError(f"scenario spec must be a dict, got {type(data).__name__}")
        known = dict(data)
        return cls(
            name=known.get("name", ""),
            base_dataset=known.get("base_dataset", "hospital"),
            seed=known.get("seed", 0),
            scale=known.get("scale", 0.05),
            columns=known.get("columns"),
            models=[model_from_dict(m) for m in known.get("models", [])],
            phases=[ScenarioPhase.from_dict(p) for p in known.get("phases", [])],
            traffic=TrafficSpec.from_dict(known.get("traffic", {})),
            expect_drift=known.get("expect_drift", False),
            batch_parity=known.get("batch_parity", False),
            cleaning_issues=known.get("cleaning_issues"),
            description=known.get("description", ""),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ScenarioError(f"invalid scenario JSON: {exc}")
        return cls.from_dict(data)


@dataclass
class GeneratedScenario:
    """A spec, realised: the corrupted dataset plus complete bookkeeping."""

    spec: ScenarioSpec
    #: Dirty table + aligned clean ground truth + typed injected errors —
    #: directly scoreable by :class:`~repro.evaluation.runner.ExperimentRunner`.
    dataset: BenchmarkDataset
    #: The exact composed diff: (row, column) -> (clean value, dirty value).
    cell_diff: Dict[Tuple[int, str], Tuple[object, object]] = field(default_factory=dict)
    #: Output-table indices of appended duplicate rows.
    duplicate_rows: List[int] = field(default_factory=list)
    #: Source (origin) row of each appended duplicate, parallel list.
    duplicate_sources: List[int] = field(default_factory=list)
    #: Column renames, original name -> final name (changed names only).
    renamed_columns: Dict[str, str] = field(default_factory=dict)
    #: Per-model accounting in application order.
    model_counts: List[Dict[str, Any]] = field(default_factory=list)
    #: Row windows of the phases, ``(start, end)`` over the dirty table.
    phase_bounds: List[Tuple[int, int]] = field(default_factory=list)

    # -- traffic ---------------------------------------------------------------------
    @property
    def prime_rows(self) -> int:
        """The streaming prime window this scenario calls for."""
        if self.spec.traffic.prime_rows is not None:
            return self.spec.traffic.prime_rows
        if self.phase_bounds and len(self.phase_bounds) > 1:
            return self.phase_bounds[0][1]
        return 0

    def batches(self) -> List[Table]:
        """The dirty table as micro-batches, aligned to phase boundaries.

        A batch never straddles a phase boundary, so "the drift arrives in
        batch *k*" is a well-defined statement for replay assertions.
        """
        bounds = self.phase_bounds or [(0, self.dataset.dirty.num_rows)]
        size = self.spec.traffic.batch_rows
        batches: List[Table] = []
        for start, end in bounds:
            cursor = start
            while cursor < end:
                upper = min(cursor + size, end)
                batches.append(self.dataset.dirty.take(range(cursor, upper)))
                cursor = upper
        return batches


def _child_rng(seed: int, index: int, model_name: str) -> random.Random:
    """Per-model RNG: stable under insertion/removal of sibling models."""
    return random.Random(f"{seed}/{index}/{model_name}")


def _apply_windowed(
    model: ErrorModel, table: Table, rng: random.Random, start: int, end: int
) -> ModelOutcome:
    """Apply a model to the row window [start, end) and splice the result back."""
    sub = table.take(range(start, end))
    outcome = model.apply(sub, rng)
    if outcome.duplicated_rows or outcome.renamed_columns:
        raise ScenarioError(
            f"phase model {model.name!r} may not add rows or rename columns "
            "(row-count and schema changes are whole-table concerns)"
        )
    values = {c.name: list(c.values) for c in table.columns}
    for name in values:
        values[name][start:end] = list(outcome.table.column(name).values)
    spliced = Table(table.name, [Column(c.name, values[c.name]) for c in table.columns])
    return ModelOutcome(
        table=spliced,
        cell_edits=[
            CellEdit(e.row + start, e.column, e.clean_value, e.dirty_value)
            for e in outcome.cell_edits
        ],
    )


def _phase_windows(spec: ScenarioSpec, total_rows: int) -> List[Tuple[int, int]]:
    """Resolve phase sizes against the (post-whole-table-models) row count."""
    if not spec.phases:
        return [(0, total_rows)]
    bounds: List[Tuple[int, int]] = []
    cursor = 0
    for index, phase in enumerate(spec.phases):
        if phase.rows is None:
            bounds.append((cursor, total_rows))
            cursor = total_rows
            continue
        upper = cursor + phase.rows
        if upper > total_rows:
            raise ScenarioError(
                f"phase {index} needs rows [{cursor}, {upper}) but the table has "
                f"only {total_rows} rows (base_dataset={spec.base_dataset!r}, "
                f"scale={spec.scale})"
            )
        bounds.append((cursor, upper))
        cursor = upper
    if cursor < total_rows:
        # Remainder with no models: still a phase for batching purposes.
        bounds.append((cursor, total_rows))
    return bounds


def generate(spec: ScenarioSpec) -> GeneratedScenario:
    """Deterministically realise a scenario spec into a scoreable dataset."""
    try:
        base = load_dataset(spec.base_dataset, seed=spec.seed, scale=spec.scale)
    except KeyError as exc:
        raise ScenarioError(str(exc).strip("'\""))
    clean = base.clean
    if spec.columns is not None:
        missing = [c for c in spec.columns if not clean.has_column(c)]
        if missing:
            raise ScenarioError(
                f"columns {missing} not in base dataset {spec.base_dataset!r} "
                f"(has {clean.column_names})"
            )
        clean = clean.select(spec.columns)
    clean = clean.rename(spec.table_name)

    working = clean.copy()
    origin = list(range(working.num_rows))
    rename_map = {name: name for name in working.column_names}  # original -> current
    cell_model: Dict[Tuple[int, str], str] = {}  # (row, current column) -> model name
    model_counts: List[Dict[str, Any]] = []
    model_index = 0

    def absorb(model: ErrorModel, outcome: ModelOutcome) -> None:
        nonlocal working
        working = outcome.table
        if outcome.renamed_columns:
            for original, current in list(rename_map.items()):
                if current in outcome.renamed_columns:
                    rename_map[original] = outcome.renamed_columns[current]
            cell_model.update(
                {
                    (row, outcome.renamed_columns.get(column, column)): name
                    for (row, column), name in list(cell_model.items())
                }
            )
            for row, column in [
                key for key in cell_model if key[1] in outcome.renamed_columns
            ]:
                del cell_model[(row, column)]
        for source in outcome.duplicate_sources:
            origin.append(origin[source])
        for edit in outcome.cell_edits:
            cell_model[(edit.row, edit.column)] = model.name
        model_counts.append(
            {
                "model": model.name,
                "cells": len(outcome.cell_edits),
                "rows_added": len(outcome.duplicated_rows),
                "columns_renamed": len(outcome.renamed_columns),
            }
        )

    for model in spec.models:
        rng = _child_rng(spec.seed, model_index, model.name)
        absorb(model, model.apply(working, rng))
        model_index += 1

    phase_bounds = _phase_windows(spec, working.num_rows)
    for phase, (start, end) in zip(spec.phases, phase_bounds):
        for model in phase.models:
            rng = _child_rng(spec.seed, model_index, model.name)
            absorb(model, _apply_windowed(model, working, rng, start, end))
            model_index += 1

    # The aligned clean table: duplicates inherit their origin row's clean
    # values; columns carry their final (possibly keyword) names.
    current_to_original = {current: original for original, current in rename_map.items()}
    aligned_columns = []
    for current in working.column_names:
        source = clean.column(current_to_original[current]).values
        aligned_columns.append(Column(current, [source[origin[i]] for i in range(working.num_rows)]))
    aligned_clean = Table(working.name, aligned_columns)

    # The composed ground-truth diff, recomputed from scratch: a later model
    # may have overwritten (or reverted) an earlier model's edit, and the
    # diff must describe the *final* table, not the edit history.
    cell_diff: Dict[Tuple[int, str], Tuple[object, object]] = {}
    injected: List[InjectedError] = []
    for column in working.column_names:
        dirty_values = working.column(column).values
        clean_values = aligned_clean.column(column).values
        for row, (dirty_value, clean_value) in enumerate(zip(dirty_values, clean_values)):
            if not strict_differs(dirty_value, clean_value):
                continue
            cell_diff[(row, column)] = (clean_value, dirty_value)
            responsible = cell_model.get((row, column), "")
            injected.append(
                InjectedError(
                    row=row,
                    column=column,
                    error_type=_MODEL_ERROR_TYPES.get(responsible, ErrorType.INCONSISTENCY),
                    clean_value=clean_value,
                    dirty_value=dirty_value,
                )
            )

    duplicate_rows = [i for i in range(clean.num_rows, working.num_rows)]
    dataset = BenchmarkDataset(
        name=spec.table_name,
        dirty=working,
        clean=aligned_clean,
        injected_errors=injected,
        description=spec.description or f"scenario {spec.name!r} over {spec.base_dataset}",
    )
    return GeneratedScenario(
        spec=spec,
        dataset=dataset,
        cell_diff=cell_diff,
        duplicate_rows=duplicate_rows,
        duplicate_sources=[origin[i] for i in duplicate_rows],
        renamed_columns={
            original: current for original, current in rename_map.items() if original != current
        },
        model_counts=model_counts,
        phase_bounds=phase_bounds,
    )
