"""Whole-table profile combining column profiles, FDs and duplicate stats."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.dataframe.table import Table
from repro.profiling.column_profile import ColumnProfile, profile_column
from repro.profiling.duplicates import duplicate_row_count, duplicate_row_samples
from repro.profiling.fd import FDCandidate, discover_fds


@dataclass
class TableProfile:
    """Statistical summary of a table: the context Cocoon gives to the LLM."""

    table_name: str
    row_count: int
    column_profiles: Dict[str, ColumnProfile] = field(default_factory=dict)
    fd_candidates: List[FDCandidate] = field(default_factory=list)
    duplicate_rows: int = 0
    duplicate_samples: List[dict] = field(default_factory=list)

    def column(self, name: str) -> ColumnProfile:
        return self.column_profiles[name]

    @property
    def column_names(self) -> List[str]:
        return list(self.column_profiles.keys())

    def summary_text(self) -> str:
        """Human-readable profile summary (used in reports and examples)."""
        lines = [f"Table {self.table_name}: {self.row_count} rows, {len(self.column_profiles)} columns"]
        for profile in self.column_profiles.values():
            lines.append(
                f"  - {profile.name} ({profile.dtype}): {profile.distinct_count} distinct, "
                f"{profile.null_fraction:.1%} null, unique ratio {profile.unique_ratio:.2f}"
            )
        if self.fd_candidates:
            lines.append("  Functional dependency candidates:")
            for fd in self.fd_candidates[:10]:
                lines.append(f"    * {fd}")
        lines.append(f"  Duplicate rows: {self.duplicate_rows}")
        return "\n".join(lines)


def profile_table(
    table: Table,
    max_values_per_column: int = 1000,
    fd_min_score: float = 0.9,
    discover_dependencies: bool = True,
) -> TableProfile:
    """Profile every column, discover FD candidates and count duplicates."""
    column_profiles = {
        column.name: profile_column(column, max_values=max_values_per_column)
        for column in table.columns
    }
    fd_candidates: List[FDCandidate] = []
    if discover_dependencies and table.num_rows > 0:
        fd_candidates = discover_fds(table, min_score=fd_min_score)
    return TableProfile(
        table_name=table.name,
        row_count=table.num_rows,
        column_profiles=column_profiles,
        fd_candidates=fd_candidates,
        duplicate_rows=duplicate_row_count(table),
        duplicate_samples=duplicate_row_samples(table),
    )
