"""Structural pattern statistics used by the pattern-outlier operator.

The operator asks the LLM for candidate regular expressions and then
*verifies them with SQL*; these helpers implement that verification:
how many values match each pattern, and which values match none.
"""

from __future__ import annotations

import re
from collections import Counter
from typing import List, Optional, Sequence, Tuple

from repro.dataframe.schema import is_null


def pattern_counts(values: Sequence[object], patterns: Sequence[str]) -> List[Tuple[str, int]]:
    """Count how many non-null values fully match each pattern (first match wins)."""
    compiled = []
    for pattern in patterns:
        try:
            compiled.append((pattern, re.compile(pattern)))
        except re.error:
            continue
    counts: Counter = Counter()
    for value in values:
        if is_null(value) or str(value).strip() == "":
            continue
        text = str(value)
        for pattern, regex in compiled:
            if regex.fullmatch(text):
                counts[pattern] += 1
                break
    return [(pattern, counts.get(pattern, 0)) for pattern, _ in compiled]


def match_fraction(values: Sequence[object], patterns: Sequence[str]) -> float:
    """Fraction of non-null values matching at least one pattern."""
    compiled = []
    for pattern in patterns:
        try:
            compiled.append(re.compile(pattern))
        except re.error:
            continue
    total = 0
    matched = 0
    for value in values:
        if is_null(value) or str(value).strip() == "":
            continue
        total += 1
        text = str(value)
        if any(regex.fullmatch(text) for regex in compiled):
            matched += 1
    return matched / total if total else 1.0


def non_matching_values(values: Sequence[object], pattern: str) -> List[str]:
    """Distinct non-null values that do not match ``pattern``."""
    try:
        regex = re.compile(pattern)
    except re.error:
        return []
    out: List[str] = []
    seen = set()
    for value in values:
        if is_null(value) or str(value).strip() == "":
            continue
        text = str(value)
        if regex.fullmatch(text) is None and text not in seen:
            seen.add(text)
            out.append(text)
    return out
