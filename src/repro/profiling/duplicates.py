"""Duplicate-row statistics (statistical detection for §2.1.7)."""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table


def _row_key(row: Tuple[Any, ...]) -> Tuple[str, ...]:
    return tuple("\0null" if is_null(v) else str(v) for v in row)


def duplicate_row_count(table: Table) -> int:
    """Number of rows that are exact duplicates of an earlier row."""
    counts = Counter(_row_key(row) for row in table.row_tuples())
    return sum(count - 1 for count in counts.values() if count > 1)


def duplicate_row_samples(table: Table, limit: int = 3) -> List[Dict[str, Any]]:
    """Up to ``limit`` sample rows that appear more than once."""
    counts = Counter(_row_key(row) for row in table.row_tuples())
    duplicated = {key for key, count in counts.items() if count > 1}
    samples: List[Dict[str, Any]] = []
    seen = set()
    for i, row in enumerate(table.row_tuples()):
        key = _row_key(row)
        if key in duplicated and key not in seen:
            samples.append(table.row(i))
            seen.add(key)
            if len(samples) >= limit:
                break
    return samples
