"""Duplicate-row statistics (statistical detection for §2.1.7)."""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table


def _row_key(row: Tuple[Any, ...]) -> Tuple[str, ...]:
    return tuple("\0null" if is_null(v) else str(v) for v in row)


def _row_keys(table: Table) -> List[Tuple[str, ...]]:
    """Every row's dedup key, built column-major.

    Each column vector is normalised in one comprehension and ``zip``
    transposes the normalised vectors into per-row key tuples — identical to
    mapping :func:`_row_key` over ``row_tuples()`` without materialising the
    rows first.
    """
    normalised = [
        ["\0null" if is_null(v) else str(v) for v in column.values]
        for column in table.itercolumns()
    ]
    if not normalised:
        return []
    return list(zip(*normalised))


def duplicate_row_count(table: Table) -> int:
    """Number of rows that are exact duplicates of an earlier row."""
    counts = Counter(_row_keys(table))
    return sum(count - 1 for count in counts.values() if count > 1)


def duplicate_row_samples(table: Table, limit: int = 3) -> List[Dict[str, Any]]:
    """Up to ``limit`` sample rows that appear more than once."""
    keys = _row_keys(table)
    counts = Counter(keys)
    duplicated = {key for key, count in counts.items() if count > 1}
    samples: List[Dict[str, Any]] = []
    seen = set()
    for i, key in enumerate(keys):
        if key in duplicated and key not in seen:
            samples.append(table.row(i))
            seen.add(key)
            if len(samples) >= limit:
                break
    return samples
