"""Incrementally maintained table-level statistics (FDs, duplicate rows).

The batch profilers re-scan the whole table: :func:`~repro.profiling.fd.discover_fds`
rebuilds every determinant index and :func:`~repro.profiling.duplicates.duplicate_row_count`
re-hashes every row.  The streaming layer instead folds each micro-batch into
persistent counters:

* :class:`IncrementalFDState` keeps, for every ordered column pair, the
  determinant → dependent co-occurrence counters that entropy scoring and
  violation grouping need.  :meth:`IncrementalFDState.candidates` then
  reproduces ``discover_fds`` on the union of all batches *exactly* — same
  float scores (the counters are consumed in the same first-occurrence order,
  so the float accumulation order matches), same violation tie order.
* :class:`IncrementalDuplicateState` counts exact duplicate rows across
  batches and keeps the first-occurrence sample rows, matching
  ``duplicate_row_count`` / ``duplicate_row_samples``.

Both are O(batch) per update.  Memory is proportional to the number of
distinct values (FD state: per column pair), which the registry benchmarks
keep small; callers with adversarial cardinalities should fall back to batch
profiling.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table
from repro.profiling.duplicates import _row_key
from repro.profiling.fd import FDCandidate, _entropy


class IncrementalFDState:
    """Mergeable co-occurrence counters behind single-attribute FD discovery."""

    def __init__(self, columns: Sequence[str]):
        if len(set(columns)) != len(columns):
            raise ValueError(f"Duplicate column names: {list(columns)}")
        self.columns: List[str] = list(columns)
        self.row_count = 0
        # Per column: value -> count over non-null stringified cells.
        self._value_counts: Dict[str, Counter] = {name: Counter() for name in self.columns}
        self._null_counts: Dict[str, int] = {name: 0 for name in self.columns}
        # Per ordered pair (det, dep): lhs -> Counter(rhs), plus the flat rhs
        # counter and pair total that entropy scoring reads.  Insertion order
        # of every dict mirrors first occurrence in row order, which keeps the
        # float accumulation order (and thus the scores) identical to the
        # batch discovery.
        self._groups: Dict[Tuple[str, str], Dict[str, Counter]] = {}
        self._rhs_counts: Dict[Tuple[str, str], Counter] = {}
        self._pair_totals: Dict[Tuple[str, str], int] = {}
        for det in self.columns:
            for dep in self.columns:
                if det == dep:
                    continue
                self._groups[(det, dep)] = {}
                self._rhs_counts[(det, dep)] = Counter()
                self._pair_totals[(det, dep)] = 0

    # -- ingestion ---------------------------------------------------------------
    def update(self, batch: Table) -> "IncrementalFDState":
        """Fold one micro-batch (same schema, rows in arrival order) into the state."""
        missing = [c for c in self.columns if c not in batch.column_names]
        if missing:
            raise ValueError(f"Batch is missing tracked columns {missing}")
        strings: Dict[str, List[Optional[str]]] = {}
        for name in self.columns:
            values = batch.column(name).values
            strings[name] = [None if is_null(v) else str(v) for v in values]
            counter = self._value_counts[name]
            nulls = 0
            for text in strings[name]:
                if text is None:
                    nulls += 1
                else:
                    counter[text] += 1
            self._null_counts[name] += nulls
        self.row_count += batch.num_rows
        for det in self.columns:
            det_strings = strings[det]
            for dep in self.columns:
                if dep == det:
                    continue
                dep_strings = strings[dep]
                pair = (det, dep)
                groups = self._groups[pair]
                rhs_counts = self._rhs_counts[pair]
                total = 0
                for lhs, rhs in zip(det_strings, dep_strings):
                    if lhs is None or rhs is None:
                        continue
                    total += 1
                    rhs_counts[rhs] += 1
                    group = groups.get(lhs)
                    if group is None:
                        group = groups[lhs] = Counter()
                    group[rhs] += 1
                self._pair_totals[pair] += total
        return self

    # -- read side ----------------------------------------------------------------
    def distinct_count(self, column: str) -> int:
        return len(self._value_counts[column])

    def non_null_count(self, column: str) -> int:
        return self.row_count - self._null_counts[column]

    def candidates(
        self,
        min_score: float = 0.9,
        max_determinant_distinct_ratio: float = 0.95,
    ) -> List[FDCandidate]:
        """FD candidates over everything seen so far — identical to running
        :func:`~repro.profiling.fd.discover_fds` on the concatenated batches."""
        candidates: List[FDCandidate] = []
        distinct_ratio = {}
        for name in self.columns:
            non_null = self.non_null_count(name)
            distinct_ratio[name] = self.distinct_count(name) / non_null if non_null else 0.0
        for det in self.columns:
            if distinct_ratio[det] > max_determinant_distinct_ratio:
                continue
            if self.distinct_count(det) <= 1:
                continue
            for dep in self.columns:
                if dep == det:
                    continue
                if self.distinct_count(dep) <= 1:
                    continue
                pair = (det, dep)
                total = self._pair_totals[pair]
                if total == 0:
                    score = 0.0
                else:
                    h_rhs = _entropy(list(self._rhs_counts[pair].values()))
                    if h_rhs == 0.0:
                        score = 1.0
                    else:
                        h_conditional = 0.0
                        for counter in self._groups[pair].values():
                            group_total = sum(counter.values())
                            h_conditional += (group_total / total) * _entropy(list(counter.values()))
                        score = max(0.0, 1.0 - h_conditional / h_rhs)
                if score < min_score:
                    continue
                violations = [
                    (lhs_value, counter.most_common())
                    for lhs_value, counter in self._groups[pair].items()
                    if len(counter) > 1
                ]
                violations.sort(key=lambda item: -sum(c for _, c in item[1]))
                violating_rows = sum(sum(c for _, c in rhs[1:]) for _, rhs in violations)
                candidates.append(
                    FDCandidate(
                        determinant=det,
                        dependent=dep,
                        score=score,
                        violating_groups=len(violations),
                        violating_rows=violating_rows,
                    )
                )
        candidates.sort(key=lambda c: (-c.score, c.determinant, c.dependent))
        return candidates

    def violation_groups(
        self, determinant: str, dependent: str
    ) -> List[Tuple[str, List[Tuple[str, int]]]]:
        """Violating determinant groups for one pair, mirroring
        :func:`~repro.profiling.fd.fd_violation_groups` on the union."""
        groups = self._groups[(determinant, dependent)]
        violations = [
            (lhs_value, counter.most_common())
            for lhs_value, counter in groups.items()
            if len(counter) > 1
        ]
        violations.sort(key=lambda item: -sum(c for _, c in item[1]))
        return violations


class IncrementalDuplicateState:
    """Cross-batch exact-duplicate accounting with first-occurrence samples."""

    def __init__(self) -> None:
        self.row_count = 0
        self._counts: Counter = Counter()
        # First-occurrence row (as a dict) per row key, in arrival order —
        # what duplicate_row_samples reports for keys that later duplicate.
        self._first_rows: Dict[Tuple[str, ...], Dict[str, Any]] = {}

    def update(self, batch: Table) -> "IncrementalDuplicateState":
        """Fold one micro-batch into the duplicate counters."""
        names = batch.column_names
        for row in batch.row_tuples():
            key = _row_key(row)
            self._counts[key] += 1
            if key not in self._first_rows:
                self._first_rows[key] = dict(zip(names, row))
        self.row_count += batch.num_rows
        return self

    def contains(self, row: Tuple[Any, ...]) -> bool:
        """Has an identical row been seen in any earlier batch (or this one)?"""
        return self._counts[_row_key(row)] > 0

    @property
    def duplicate_rows(self) -> int:
        """Rows that duplicate an earlier row — matches ``duplicate_row_count``."""
        return sum(count - 1 for count in self._counts.values() if count > 1)

    def samples(self, limit: int = 3) -> List[Dict[str, Any]]:
        """First-occurrence samples of duplicated rows — matches
        ``duplicate_row_samples`` on the concatenated batches."""
        out: List[Dict[str, Any]] = []
        for key, row in self._first_rows.items():
            if self._counts[key] > 1:
                out.append(dict(row))
                if len(out) >= limit:
                    break
        return out
