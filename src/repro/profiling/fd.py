"""Functional-dependency discovery and scoring.

Following Baran (and the paper's §2.1.6), only FDs with a single attribute
on each side are considered.  Candidate FDs are scored with the conditional
entropy of the dependent given the determinant: an FD that holds exactly has
conditional entropy 0, so the score ``1 - H(rhs | lhs) / H(rhs)`` is 1.0 for
exact dependencies and decreases as violations grow.

:func:`discover_fds` makes a single stringification pass over the table and
shares one non-null value index per determinant across all dependents, then
derives the entropy score and the violation groups for each pair from one
joint pass — the naive per-pair re-materialisation it replaces is kept as
:func:`discover_fds_baseline` for parity tests and benchmarks.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.dataframe.schema import is_null
from repro.dataframe.table import Table


@dataclass
class FDCandidate:
    """A candidate functional dependency ``determinant -> dependent``."""

    determinant: str
    dependent: str
    score: float
    violating_groups: int
    violating_rows: int

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.determinant} -> {self.dependent} (score={self.score:.3f})"


def _entropy(counts: Sequence[int]) -> float:
    total = sum(counts)
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in counts:
        if count == 0:
            continue
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def fd_entropy_score(table: Table, determinant: str, dependent: str) -> float:
    """Score ``determinant -> dependent`` in [0, 1]; 1.0 means the FD holds exactly."""
    lhs = table.column(determinant).values
    rhs = table.column(dependent).values
    pairs = [
        (str(l), str(r))
        for l, r in zip(lhs, rhs)
        if not is_null(l) and not is_null(r)
    ]
    if not pairs:
        return 0.0
    rhs_counts = Counter(r for _, r in pairs)
    h_rhs = _entropy(list(rhs_counts.values()))
    if h_rhs == 0.0:
        return 1.0
    groups: Dict[str, Counter] = defaultdict(Counter)
    for l, r in pairs:
        groups[l][r] += 1
    total = len(pairs)
    h_conditional = 0.0
    for counter in groups.values():
        group_total = sum(counter.values())
        h_conditional += (group_total / total) * _entropy(list(counter.values()))
    return max(0.0, 1.0 - h_conditional / h_rhs)


def fd_violation_groups(
    table: Table, determinant: str, dependent: str
) -> List[Tuple[str, List[Tuple[str, int]]]]:
    """Groups of determinant values whose dependent values disagree.

    Each entry is ``(lhs_value, [(rhs_value, count), ...])`` with at least two
    distinct dependent values, sorted by descending disagreement size.
    """
    lhs = table.column(determinant).values
    rhs = table.column(dependent).values
    groups: Dict[str, Counter] = defaultdict(Counter)
    for l, r in zip(lhs, rhs):
        if is_null(l) or is_null(r):
            continue
        groups[str(l)][str(r)] += 1
    violations = []
    for lhs_value, counter in groups.items():
        if len(counter) > 1:
            violations.append((lhs_value, counter.most_common()))
    violations.sort(key=lambda item: -sum(c for _, c in item[1]))
    return violations


def discover_fds(
    table: Table,
    min_score: float = 0.9,
    max_determinant_distinct_ratio: float = 0.95,
    columns: Sequence[str] = (),
) -> List[FDCandidate]:
    """Discover single-attribute FD candidates whose entropy score exceeds ``min_score``.

    Determinants that are (nearly) unique are skipped — a key column trivially
    determines everything and offers no cleaning signal.  Dependents with a
    single distinct value are skipped for the symmetric reason.

    Each column is stringified exactly once, each determinant's non-null
    ``(row, value)`` index is built exactly once and shared across every
    dependent, and the entropy score and violation groups of a pair come out
    of one joint pass over that index — candidates are identical (to the
    bit, including float scores and tie order) to the quadratic
    re-materialising :func:`discover_fds_baseline` this replaces.
    """
    names = list(columns) if columns else table.column_names
    num_rows = table.num_rows
    # One stringification pass per column; None marks a NULL cell.
    col_strings: Dict[str, List] = {}
    distinct_ratio = {}
    distinct_count = {}
    for name in names:
        values = table.column(name).values
        strings = [None if is_null(v) else str(v) for v in values]
        col_strings[name] = strings
        non_null_count = num_rows - strings.count(None)
        distinct = len(set(strings)) - (1 if non_null_count < num_rows else 0)
        distinct_count[name] = distinct
        distinct_ratio[name] = distinct / non_null_count if non_null_count else 0.0
    candidates: List[FDCandidate] = []
    for determinant in names:
        if distinct_ratio[determinant] > max_determinant_distinct_ratio:
            continue
        if distinct_count[determinant] <= 1:
            continue
        det_strings = col_strings[determinant]
        # Shared per-determinant index: non-null cells in row order.
        det_cells = [(i, value) for i, value in enumerate(det_strings) if value is not None]
        for dependent in names:
            if dependent == determinant:
                continue
            if distinct_count[dependent] <= 1:
                continue
            dep_strings = col_strings[dependent]
            # Joint pass: determinant groups and dependent-value counts at once.
            rhs_counts: Counter = Counter()
            groups: Dict[str, Counter] = {}
            total = 0
            for i, lhs_value in det_cells:
                rhs_value = dep_strings[i]
                if rhs_value is None:
                    continue
                total += 1
                rhs_counts[rhs_value] += 1
                group = groups.get(lhs_value)
                if group is None:
                    group = groups[lhs_value] = Counter()
                group[rhs_value] += 1
            if total == 0:
                score = 0.0
            else:
                h_rhs = _entropy(list(rhs_counts.values()))
                if h_rhs == 0.0:
                    score = 1.0
                else:
                    h_conditional = 0.0
                    for counter in groups.values():
                        group_total = sum(counter.values())
                        h_conditional += (group_total / total) * _entropy(list(counter.values()))
                    score = max(0.0, 1.0 - h_conditional / h_rhs)
            if score < min_score:
                continue
            violations = [
                (lhs_value, counter.most_common())
                for lhs_value, counter in groups.items()
                if len(counter) > 1
            ]
            violations.sort(key=lambda item: -sum(c for _, c in item[1]))
            violating_rows = sum(
                sum(c for _, c in rhs[1:]) for _, rhs in violations
            )
            candidates.append(
                FDCandidate(
                    determinant=determinant,
                    dependent=dependent,
                    score=score,
                    violating_groups=len(violations),
                    violating_rows=violating_rows,
                )
            )
    candidates.sort(key=lambda c: (-c.score, c.determinant, c.dependent))
    return candidates


def discover_fds_baseline(
    table: Table,
    min_score: float = 0.9,
    max_determinant_distinct_ratio: float = 0.95,
    columns: Sequence[str] = (),
) -> List[FDCandidate]:
    """The original O(k²) re-materialising discovery loop.

    Calls :func:`fd_entropy_score` and :func:`fd_violation_groups` per column
    pair, re-reading and re-stringifying the table each time.  Kept as the
    reference implementation: ``tests/profiling/test_fd_parity.py`` pins
    :func:`discover_fds` to its exact output and ``benchmarks/bench_fd.py``
    measures the single-pass rewrite against it.
    """
    names = list(columns) if columns else table.column_names
    candidates: List[FDCandidate] = []
    distinct_ratio = {}
    distinct_count = {}
    for name in names:
        column = table.column(name)
        non_null = column.non_null()
        distinct = len(set(str(v) for v in non_null))
        distinct_count[name] = distinct
        distinct_ratio[name] = distinct / len(non_null) if non_null else 0.0
    for determinant in names:
        if distinct_ratio[determinant] > max_determinant_distinct_ratio:
            continue
        if distinct_count[determinant] <= 1:
            continue
        for dependent in names:
            if dependent == determinant:
                continue
            if distinct_count[dependent] <= 1:
                continue
            score = fd_entropy_score(table, determinant, dependent)
            if score < min_score:
                continue
            violations = fd_violation_groups(table, determinant, dependent)
            violating_rows = sum(
                sum(c for _, c in rhs[1:]) for _, rhs in violations
            )
            candidates.append(
                FDCandidate(
                    determinant=determinant,
                    dependent=dependent,
                    score=score,
                    violating_groups=len(violations),
                    violating_rows=violating_rows,
                )
            )
    candidates.sort(key=lambda c: (-c.score, c.determinant, c.dependent))
    return candidates
