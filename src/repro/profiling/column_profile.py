"""Per-column statistical profile."""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.dataframe.column import Column
from repro.dataframe.schema import ColumnType, is_null


@dataclass
class ColumnProfile:
    """Statistical summary of one column, used as LLM prompt context."""

    name: str
    dtype: ColumnType
    row_count: int
    null_count: int
    distinct_count: int
    unique_ratio: float
    top_values: List[Tuple[str, int]] = field(default_factory=list)
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    mean: Optional[float] = None
    avg_length: Optional[float] = None

    @property
    def null_fraction(self) -> float:
        return self.null_count / self.row_count if self.row_count else 0.0

    @property
    def is_numeric(self) -> bool:
        return self.dtype.is_numeric

    def frequent_values(self, limit: int) -> List[Tuple[str, int]]:
        """The ``limit`` most frequent values (the paper samples 1000 by default)."""
        return self.top_values[:limit]


def profile_column(column: Column, max_values: int = 1000) -> ColumnProfile:
    """Compute the statistical profile of a column.

    ``max_values`` bounds how many distinct values are retained (ordered by
    frequency), mirroring the sampling the paper applies before prompting.

    The column's value vector is walked **once**: null count, the non-null
    values and the frequency counter all come out of the same pass (the
    profiler used to re-scan the vector five times per column).  The derived
    statistics are unchanged: the counter keys are exactly the distinct
    non-null strings, so ``unique_ratio`` and ``distinct_count`` fall out of
    ``len(counts)`` instead of extra set-building passes.
    """
    counts: Counter = Counter()
    non_null: List[Any] = []
    null_count = 0
    for value in column.values:
        if is_null(value):
            null_count += 1
        else:
            non_null.append(value)
            counts[str(value)] += 1
    top = counts.most_common(max_values)
    numeric = [v for v in non_null if isinstance(v, (int, float)) and not isinstance(v, bool)]
    minimum: Optional[Any] = None
    maximum: Optional[Any] = None
    mean: Optional[float] = None
    if numeric:
        minimum = min(numeric)
        maximum = max(numeric)
        # fsum: the correctly-rounded true sum, so the mean is independent of
        # accumulation order — the property MergeableColumnProfile relies on.
        mean = math.fsum(float(v) for v in numeric) / len(numeric)
    elif non_null:
        try:
            as_strings = [str(v) for v in non_null]
            minimum = min(as_strings)
            maximum = max(as_strings)
        except TypeError:  # pragma: no cover - mixed uncomparable values
            minimum = maximum = None
    avg_length = None
    if non_null:
        avg_length = sum(len(str(v)) for v in non_null) / len(non_null)
    return ColumnProfile(
        name=column.name,
        dtype=column.dtype,
        row_count=len(column),
        null_count=null_count,
        distinct_count=len(counts) + (1 if null_count else 0),
        unique_ratio=(len(counts) / len(non_null)) if non_null else 0.0,
        top_values=[(value, count) for value, count in top],
        minimum=minimum,
        maximum=maximum,
        mean=mean,
        avg_length=avg_length,
    )
