"""Incrementally mergeable column profiles for the streaming layer.

:func:`~repro.profiling.column_profile.profile_column` summarises a whole
column in one pass.  A streaming system cannot afford that: every micro-batch
would re-read all rows seen so far.  :class:`MergeableColumnProfile` keeps the
same summary as a set of *mergeable* accumulators — value counts, null count,
exact numeric sum, min/max, total string length — so a batch costs O(batch)
and the profile of a union of batches is the merge of their profiles.

The defining property, pinned by hypothesis tests
(``tests/property/test_mergeable_profiles.py``): for any split of a column
into ordered batches, updating one profile batch-by-batch — or merging
independently built per-batch profiles in order — yields *exactly* the
profile ``profile_column`` computes on the whole column, including the
tie-break order of ``top_values`` and the last bit of the float ``mean``
(the batch path uses ``math.fsum``, the correctly-rounded true sum, and the
mergeable path accumulates an exact :class:`fractions.Fraction`, so both
sides land on the same float).

Order matters only where the batch profile is itself order-sensitive:
``top_values`` breaks frequency ties by first occurrence, so batches must be
applied in row order — which a stream does naturally.
"""

from __future__ import annotations

from collections import Counter
from fractions import Fraction
from typing import Any, Iterable, Optional, Union

from repro.dataframe.column import Column
from repro.dataframe.schema import ColumnType, is_null
from repro.profiling.column_profile import ColumnProfile


class MergeableColumnProfile:
    """Streaming accumulator equivalent to batch :func:`profile_column`."""

    __slots__ = (
        "name",
        "dtype",
        "row_count",
        "null_count",
        "counts",
        "_numeric_count",
        "_numeric_sum",
        "_numeric_min",
        "_numeric_max",
        "_string_min",
        "_string_max",
        "_length_sum",
    )

    def __init__(self, name: str, dtype: ColumnType = ColumnType.VARCHAR):
        self.name = name
        self.dtype = dtype
        self.row_count = 0
        self.null_count = 0
        # str(value) -> occurrences, in first-occurrence order (drives the
        # most_common tie-break exactly like Column.value_counts()).
        self.counts: Counter = Counter()
        self._numeric_count = 0
        self._numeric_sum = Fraction(0)
        self._numeric_min: Optional[Any] = None
        self._numeric_max: Optional[Any] = None
        self._string_min: Optional[str] = None
        self._string_max: Optional[str] = None
        self._length_sum = 0

    # -- ingestion -------------------------------------------------------------
    def update(self, batch: Union[Column, Iterable[Any]]) -> "MergeableColumnProfile":
        """Fold one batch of values (a Column or any iterable) into the profile."""
        if isinstance(batch, Column):
            if batch.name != self.name:
                raise ValueError(
                    f"Cannot update profile of column {self.name!r} with column {batch.name!r}"
                )
            values: Iterable[Any] = batch.values
        else:
            values = batch
        for value in values:
            self.row_count += 1
            if is_null(value):
                self.null_count += 1
                continue
            text = str(value)
            self.counts[text] += 1
            self._length_sum += len(text)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                self._numeric_count += 1
                self._numeric_sum += Fraction(float(value))
                if self._numeric_min is None or value < self._numeric_min:
                    self._numeric_min = value
                if self._numeric_max is None or value > self._numeric_max:
                    self._numeric_max = value
            if self._string_min is None or text < self._string_min:
                self._string_min = text
            if self._string_max is None or text > self._string_max:
                self._string_max = text
        return self

    # -- merging ----------------------------------------------------------------
    def merge(self, other: "MergeableColumnProfile") -> "MergeableColumnProfile":
        """Return a new profile covering this profile's rows followed by ``other``'s.

        ``self`` is treated as the earlier partition, so first-occurrence
        tie-breaks (top values, equal minima) resolve to ``self`` — exactly
        what a single pass over the concatenated rows would do.
        """
        if other.name != self.name:
            raise ValueError(f"Cannot merge profiles of {self.name!r} and {other.name!r}")
        merged = MergeableColumnProfile(self.name, self.dtype)
        merged.row_count = self.row_count + other.row_count
        merged.null_count = self.null_count + other.null_count
        merged.counts = self.counts + other.counts
        merged._numeric_count = self._numeric_count + other._numeric_count
        merged._numeric_sum = self._numeric_sum + other._numeric_sum
        merged._numeric_min = _merge_min(self._numeric_min, other._numeric_min)
        merged._numeric_max = _merge_max(self._numeric_max, other._numeric_max)
        merged._string_min = _merge_min(self._string_min, other._string_min)
        merged._string_max = _merge_max(self._string_max, other._string_max)
        merged._length_sum = self._length_sum + other._length_sum
        return merged

    # -- finalisation -------------------------------------------------------------
    @property
    def non_null_count(self) -> int:
        return self.row_count - self.null_count

    @property
    def distinct_count(self) -> int:
        return len(self.counts) + (1 if self.null_count else 0)

    def profile(self, max_values: int = 1000) -> ColumnProfile:
        """Materialise the :class:`ColumnProfile` of everything seen so far."""
        non_null = self.non_null_count
        minimum: Optional[Any] = None
        maximum: Optional[Any] = None
        mean: Optional[float] = None
        if self._numeric_count:
            minimum = self._numeric_min
            maximum = self._numeric_max
            # float(Fraction) rounds the exact sum once — the same value
            # math.fsum produces in the batch profile.
            mean = float(self._numeric_sum) / self._numeric_count
        elif non_null:
            minimum = self._string_min
            maximum = self._string_max
        avg_length = self._length_sum / non_null if non_null else None
        return ColumnProfile(
            name=self.name,
            dtype=self.dtype,
            row_count=self.row_count,
            null_count=self.null_count,
            distinct_count=self.distinct_count,
            unique_ratio=len(self.counts) / non_null if non_null else 0.0,
            top_values=list(self.counts.most_common(max_values)),
            minimum=minimum,
            maximum=maximum,
            mean=mean,
            avg_length=avg_length,
        )

    @classmethod
    def of(cls, column: Column) -> "MergeableColumnProfile":
        """Profile a whole column in one go (convenience for tests and drift)."""
        return cls(column.name, column.dtype).update(column)

    def __repr__(self) -> str:  # pragma: no cover - display helper
        return (
            f"MergeableColumnProfile({self.name!r}, rows={self.row_count}, "
            f"distinct={self.distinct_count})"
        )


def _merge_min(a: Optional[Any], b: Optional[Any]) -> Optional[Any]:
    if a is None:
        return b
    if b is None:
        return a
    return a if a <= b else b


def _merge_max(a: Optional[Any], b: Optional[Any]) -> Optional[Any]:
    if a is None:
        return b
    if b is None:
        return a
    return a if a >= b else b
