"""Statistical profiling of tables.

Cocoon builds on the authors' earlier table-profiling work: traditional
statistical methods summarise each column (value distribution, missing
percentage, min/max, unique ratio, structural patterns) and the whole table
(candidate functional dependencies scored by entropy, duplicate rows).
These summaries are what make LLM prompting feasible — the raw data never
fits in a prompt, the profile does.
"""

from repro.profiling.column_profile import ColumnProfile, profile_column
from repro.profiling.table_profile import TableProfile, profile_table
from repro.profiling.fd import (
    FDCandidate,
    discover_fds,
    discover_fds_baseline,
    fd_entropy_score,
    fd_violation_groups,
)
from repro.profiling.duplicates import duplicate_row_count, duplicate_row_samples
from repro.profiling.incremental import IncrementalDuplicateState, IncrementalFDState
from repro.profiling.mergeable import MergeableColumnProfile
from repro.profiling.patterns import pattern_counts, match_fraction

__all__ = [
    "IncrementalDuplicateState",
    "IncrementalFDState",
    "MergeableColumnProfile",
    "ColumnProfile",
    "profile_column",
    "TableProfile",
    "profile_table",
    "FDCandidate",
    "discover_fds",
    "discover_fds_baseline",
    "fd_entropy_score",
    "fd_violation_groups",
    "duplicate_row_count",
    "duplicate_row_samples",
    "pattern_counts",
    "match_fraction",
]
