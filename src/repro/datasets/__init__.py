"""Benchmark datasets.

The paper evaluates on five standard dirty-data benchmarks: Hospital and
Flights (HoloClean), Beers (Raha), Rayyan and Movies (Magellan).  The
original CSV files are not redistributable here, so this package generates
synthetic equivalents: for each benchmark a *clean* ground-truth table is
built from realistic domain vocabulary, then an error injector introduces
exactly the error classes the original benchmark is known for (typos,
functional-dependency violations, inconsistent representations, disguised
missing values, value misplacements, numeric outliers), recording the
cell-level ground truth.  Scale and error mix follow the paper's Table 2.
"""

from repro.datasets.base import BenchmarkDataset, InjectedError, ErrorType
from repro.datasets.registry import load_dataset, dataset_names, DATASET_BUILDERS

__all__ = [
    "BenchmarkDataset",
    "InjectedError",
    "ErrorType",
    "load_dataset",
    "dataset_names",
    "DATASET_BUILDERS",
]
