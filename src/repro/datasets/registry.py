"""Dataset registry: name → builder."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.datasets.base import BenchmarkDataset
from repro.datasets.beers import build_beers
from repro.datasets.flights import build_flights
from repro.datasets.hospital import build_hospital
from repro.datasets.movies import build_movies
from repro.datasets.rayyan import build_rayyan

# Paper-scale row counts for each benchmark.
_PAPER_ROWS: Dict[str, int] = {
    "hospital": 1000,
    "flights": 300,     # flights, not rows: 300 flights × 8 sources = 2400 rows
    "beers": 2410,
    "rayyan": 1000,
    "movies": 7390,
}

DATASET_BUILDERS: Dict[str, Callable[..., BenchmarkDataset]] = {
    "hospital": build_hospital,
    "flights": build_flights,
    "beers": build_beers,
    "rayyan": build_rayyan,
    "movies": build_movies,
}


def dataset_names() -> List[str]:
    """Names of the five benchmarks, in the paper's presentation order."""
    return ["hospital", "flights", "beers", "rayyan", "movies"]


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> BenchmarkDataset:
    """Build a benchmark by name.

    ``scale`` shrinks the dataset proportionally (error rates scale with it),
    which keeps unit tests and quick experiments fast; ``scale=1.0`` is the
    paper-scale dataset.
    """
    key = name.lower()
    if key not in DATASET_BUILDERS:
        raise KeyError(f"Unknown dataset {name!r}; available: {dataset_names()}")
    size = max(20, int(_PAPER_ROWS[key] * scale))
    if key == "flights":
        size = max(10, int(_PAPER_ROWS[key] * scale))
        return build_flights(flight_count=size, seed=seed)
    return DATASET_BUILDERS[key](size, seed=seed)
