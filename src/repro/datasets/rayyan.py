"""The Rayyan benchmark (systematic-review bibliography records).

Real-world bibliographic data with many typos, redundant language
representations (the paper's running example: ``"English"`` vs ``"eng"``),
inconsistent date formats, disguised missing values, and value misplacements
(e.g. a journal name recorded in the pagination column).
"""

from __future__ import annotations

import random
from typing import List

from repro.dataframe.table import Table
from repro.datasets.base import BenchmarkDataset
from repro.datasets.common import FIRST_NAMES, SURNAMES, build_extended_clean, place_dmv_tokens
from repro.datasets.errors import ErrorInjector

COLUMNS = [
    "article_id", "article_title", "journal_title", "article_language", "journal_issn",
    "article_pagination", "authors_list", "article_jvolumn", "article_jissue",
    "article_jcreated_at", "journal_abbreviation",
]

_LANGUAGES = [("eng", 0.72), ("fre", 0.08), ("ger", 0.07), ("spa", 0.05), ("chi", 0.04), ("por", 0.04)]
_LANGUAGE_VARIANTS = {
    "eng": ["English"],
    "fre": ["French"],
    "ger": ["German"],
    "spa": ["Spanish"],
    "chi": ["Chinese"],
    "por": ["Portuguese"],
}
_TOPICS = ["randomized controlled trial", "systematic review", "cohort study", "case report",
           "meta analysis", "clinical trial", "cross sectional study", "qualitative study"]
_SUBJECTS = ["diabetes", "hypertension", "asthma", "depression", "obesity", "stroke",
             "pneumonia", "arthritis", "migraine", "anemia"]
_JOURNALS = [
    "Journal of Clinical Medicine", "The Lancet", "British Medical Journal",
    "Annals of Internal Medicine", "Journal of Epidemiology", "Pediatrics Review",
    "Cardiology Today", "Journal of Public Health", "Respiratory Medicine",
    "Clinical Nutrition Journal", "Journal of Mental Health", "Oncology Reports",
]


def _weighted_language(rng: random.Random) -> str:
    roll = rng.random()
    cumulative = 0.0
    for language, weight in _LANGUAGES:
        cumulative += weight
        if roll <= cumulative:
            return language
    return "eng"


def _build_clean(rows: int, seed: int) -> Table:
    rng = random.Random(seed)
    journal_info = {
        journal: {
            "issn": f"{rng.randrange(1000, 9999)}-{rng.randrange(1000, 9999)}",
            "abbreviation": "".join(word[0].upper() for word in journal.split()[:3]),
        }
        for journal in _JOURNALS
    }
    table_rows: List[List[str]] = []
    for i in range(rows):
        journal = rng.choice(_JOURNALS)
        info = journal_info[journal]
        title = f"A {rng.choice(_TOPICS)} of {rng.choice(_SUBJECTS)} in {rng.choice(_SUBJECTS)} patients"
        first_page = rng.randrange(1, 900)
        authors = "; ".join(
            f"{rng.choice(SURNAMES)}, {rng.choice(FIRST_NAMES)[0]}." for _ in range(rng.randrange(1, 4))
        )
        created = f"{rng.randrange(1, 13):02d}/{rng.randrange(1, 29):02d}/{rng.randrange(1998, 2016)}"
        table_rows.append(
            [
                str(100000 + i), title, journal, _weighted_language(rng), info["issn"],
                f"{first_page}-{first_page + rng.randrange(4, 20)}", authors,
                str(rng.randrange(1, 60)), str(rng.randrange(1, 13)), created, info["abbreviation"],
            ]
        )
    return Table.from_rows("rayyan", COLUMNS, table_rows)


def build_rayyan(rows: int = 1000, seed: int = 0) -> BenchmarkDataset:
    """Generate the Rayyan benchmark (default 1000 × 11)."""
    clean = _build_clean(rows, seed)
    rng = random.Random(seed + 1)
    dmv_cells = []
    dmv_cells += place_dmv_tokens(clean, "article_jissue", fraction=0.08, rng=rng)
    dmv_cells += place_dmv_tokens(clean, "article_pagination", fraction=0.05, rng=rng, tokens=("N/A", "-", "--"))

    injector = ErrorInjector(clean, seed=seed + 2)
    scale = rows / 1000
    # The running example: language names written out instead of ISO codes.
    injector.inject_inconsistency("article_language", int(95 * scale), _LANGUAGE_VARIANTS)
    # Typos in journal titles and abbreviations (frequent categorical values → fixable).
    injector.inject_typos("journal_title", int(80 * scale))
    injector.inject_typos("journal_abbreviation", int(30 * scale), min_length=3)
    # Typos in article titles (near-unique free text → realistically unfixable).
    injector.inject_typos("article_title", int(25 * scale))
    # Date-format inconsistencies in the created-at column.
    date_variants = {}
    for value in set(clean.column("article_jcreated_at").values):
        month, day, year = str(value).split("/")
        date_variants[str(value)] = [f"{year}-{month}-{day}"]
    injector.inject_inconsistency("article_jcreated_at", int(60 * scale), date_variants)
    # FD violations journal_title → issn / abbreviation.
    injector.inject_fd_violations("journal_title", "journal_issn", int(30 * scale))
    injector.inject_fd_violations("journal_title", "journal_abbreviation", int(18 * scale))
    # Value misplacements (journal names in the pagination column, etc.).
    injector.inject_misplacement("journal_title", "article_pagination", int(15 * scale))
    injector.inject_misplacement("article_language", "article_jissue", int(10 * scale))

    dirty = injector.build_dirty("rayyan")
    type_cast_columns = {"article_jvolumn": "INTEGER", "article_jissue": "INTEGER"}
    dataset = BenchmarkDataset(
        name="rayyan",
        dirty=dirty,
        clean=clean,
        injected_errors=injector.errors,
        type_cast_columns=type_cast_columns,
        dmv_cells=dmv_cells,
        description="Bibliographic records with language-code and format inconsistencies",
    )
    dataset.extended_clean = build_extended_clean(clean, type_cast_columns, dmv_cells)
    return dataset
